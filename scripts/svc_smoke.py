"""CI smoke for the experiment service (`repro.svc`).

Real processes, real sockets, tiny work: start the server, start two
workers, push one fig2 cell through the queue, resubmit it (must dedup
to the stored result with zero extra simulation), scrape /metrics, and
shut everything down cleanly.  Exits nonzero on the first broken
expectation.

    PYTHONPATH=src python scripts/svc_smoke.py [--scale 0.002]
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.obs.metrics import parse_prometheus_text  # noqa: E402
from repro.svc import ServiceClient  # noqa: E402

FIG2_CELL = "repro.experiments.fig2:_cell_throughput"


def wait_for(predicate, timeout, what):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="svc-smoke-")
    db = os.path.join(tmp, "svc.db")
    cache = os.path.join(tmp, "cache")
    port_file = os.path.join(tmp, "port")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    procs = []

    def spawn(*argv):
        proc = subprocess.Popen([sys.executable, "-m", "repro.svc",
                                 *argv], env=env)
        procs.append(proc)
        return proc

    try:
        server = spawn("serve", "--db", db, "--port", "0",
                       "--port-file", port_file, "--reaper-interval", "1")
        wait_for(lambda: os.path.exists(port_file), 30.0, "server port")
        port = open(port_file, encoding="utf-8").read().strip()
        base = f"http://127.0.0.1:{port}"
        client = ServiceClient(base)
        wait_for(lambda: client.healthz()["ok"], 30.0, "healthz")
        print(f"server up on {base}")

        workers = [spawn("worker", "--server", base, "--cache-dir", cache,
                         "--poll", "0.1") for _ in range(2)]
        wait_for(lambda: len(client.workers()) == 2, 30.0,
                 "both workers to register")
        print("2 workers registered")

        job = client.submit_cell(FIG2_CELL, scale=args.scale, nprocs=4,
                                 size=65536)
        assert not job.get("dedup"), "fresh submission misreported dedup"
        final = client.wait([job["id"]], timeout=args.timeout)[0]
        assert final["state"] == "done", f"job failed: {final.get('error')}"
        assert not final["cached"], "first run should simulate, not hit"
        value = client.result(final["key"])
        print(f"fig2 cell simulated: {value:.1f} MiB/s "
              f"(worker {final['worker']})")

        again = client.submit_cell(FIG2_CELL, scale=args.scale, nprocs=4,
                                   size=65536)
        assert again["dedup"], "resubmission did not dedup"
        assert again["state"] == "done", "dedup job not born done"
        assert again["cached"], "dedup job not marked cached"
        assert client.result(again["key"]) == value
        print("resubmission deduped to the stored result")

        types, samples = parse_prometheus_text(client.metrics_text())
        for family in ("svc_jobs", "svc_results", "svc_workers_alive",
                       "svc_submissions_total", "svc_dedup_hits_total",
                       "svc_claim_latency_seconds"):
            assert family in types, f"/metrics missing {family}"
        assert samples[("svc_jobs", (("state", "done"),))] == 2
        assert samples[("svc_dedup_hits_total", ())] == 1
        assert samples[("svc_workers_alive", ())] == 2
        print("/metrics scrape OK "
              f"({len(samples)} samples, {len(types)} families)")

        for proc in workers:
            proc.send_signal(signal.SIGTERM)
        for proc in workers:
            assert proc.wait(timeout=60) == 0, "worker exited nonzero"
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=60) == 0, "server exited nonzero"
        print("clean shutdown: 2 workers + server exited 0")
        print("SVC SMOKE PASS")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
    return 1


if __name__ == "__main__":
    sys.exit(main())
