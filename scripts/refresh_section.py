#!/usr/bin/env python3
"""Refresh a single experiment's section in EXPERIMENTS.md in place.

Usage:  python scripts/refresh_section.py <name> [scale]

Reruns the named experiment (with the same trimmed kwargs the full
generator uses) and replaces only its fenced code block, leaving the
commentary untouched.
"""

import re
import sys

# generate_experiments_md reads sys.argv at import time; hide our args.
_argv, sys.argv = sys.argv[1:], sys.argv[:1]
sys.path.insert(0, "scripts")
from generate_experiments_md import PLAN, SCALE as DEFAULT_SCALE  # noqa: E402

from repro.experiments import get  # noqa: E402


def main() -> int:
    name = _argv[0]
    scale = float(_argv[1]) if len(_argv) > 1 else DEFAULT_SCALE
    kwargs = {}
    for plan_name, plan_kwargs, _commentary in PLAN:
        if plan_name == name:
            kwargs = plan_kwargs
            break
    result = get(name)(scale=scale, **kwargs)

    text = open("EXPERIMENTS.md").read()
    pattern = re.compile(rf"(## {re.escape(name)}\n\n```\n).*?(\n```)",
                         re.DOTALL)
    if not pattern.search(text):
        raise SystemExit(f"section {name!r} not found in EXPERIMENTS.md")
    text = pattern.sub(lambda m: m.group(1) + str(result) + m.group(2),
                       text, count=1)
    open("EXPERIMENTS.md", "w").write(text)
    print(f"refreshed section {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
