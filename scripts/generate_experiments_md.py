#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every experiment and record the
paper-vs-measured comparison.

Runs at a documented scale (default 1/160 of the paper's 10 GB working
set) with process grids trimmed to keep the whole pass to minutes.  The
commentary blocks are static (they describe the comparison targets);
the tables are live output.

Usage:  python scripts/generate_experiments_md.py [scale]
"""

import sys
import time

from repro.experiments import get

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 160

#: (experiment, kwargs, commentary) — commentary states the paper's
#: numbers and how our measurement compares.
PLAN = [
    ("table1", {},
     "Targets matched within sampling noise by construction, and verified\n"
     "by an independent classifier: the synthetic traces stand in for the\n"
     "non-redistributable Sandia originals."),
    ("table2", {"requests": 2000},
     "SSD corners and HDD sequential corners reproduce the paper exactly.\n"
     "HDD random corners are documented deviations: the paper quotes\n"
     "deep-queue spec-sheet numbers (15/5 MB/s), our model reports QD1\n"
     "per-request positioning (see DESIGN.md section 6)."),
    ("fig2a", {"procs": (16, 64, 128)},
     "Paper (16 procs): 64K=159.6, 65K=77.4 (-52%), 74K=88.1 (-45%).\n"
     "We reproduce the aligned level (~170-200) and the ~45-55% unaligned\n"
     "drop; the decline with process count is milder in our model."),
    ("fig2b", {"procs": (16, 64, 128)},
     "Paper (512 procs): +0K=116.2, +1K=102.1 (-12%), +10K=81.8 (-30%).\n"
     "Offsets degrade throughput at every process count.  In our model\n"
     "the +1K and +10K offsets land within noise of each other at the\n"
     "trimmed grid's process counts; the paper's +1K/+10K separation\n"
     "appears at 512 processes, which the trimmed grid omits (run fig2b\n"
     "with procs=(512,) to include it)."),
    ("fig2cde", {},
     "Paper: (c) 72% of dispatches at 128 sectors and 18% at 256;\n"
     "(d) collapses into many small sizes; (e) dominant sizes 80/176\n"
     "sectors. Our aligned case concentrates at 128/256 sectors and the\n"
     "unaligned cases collapse the same way."),
    ("fig3", {"ks": (1, 2, 3, 4, 5, 6, 7)},
     "Paper: throughput grows more slowly with server count when the\n"
     "1 KB fragment lands on the busy extra server; barriers amplify the\n"
     "loss. Same shape here: positive loss at every k, larger with\n"
     "barriers at high k."),
    ("fig4", {},
     "Paper write gains: 33K +105%, 65K +183%, 129K +171%; offsets +1K/+10K\n"
     "recover to near-aligned; +0K unchanged; SSD shares 19/10/4%.\n"
     "We reproduce the 33K and offset gains (+100-170%) and the SSD shares\n"
     "almost exactly; 65K/129K gains are smaller (+30-60%) because ~42% of\n"
     "65K requests shed no sub-20K fragment (consistent with the paper's\n"
     "own Fig 13 threshold sensitivity)."),
    ("fig5", {},
     "Paper: with iBridge serving the 10K fragments, 128- and 256-sector\n"
     "dispatches predominate again. Same here (fraction >= 128 sectors\n"
     "dominates; compare fig2cde case e)."),
    ("fig6", {"procs": (16, 64, 128)},
     "Paper: +154% average across 16-512 procs, ~10% of data on SSDs.\n"
     "We see consistent gains that grow with concurrency (small at 16\n"
     "procs where the system is latency- not disk-bound in our model)."),
    ("fig7", {"servers": (2, 4, 6, 8)},
     "Paper: all series rise with server count; iBridge nearly closes the\n"
     "unaligned gap, more so for writes. Same monotone series and gap\n"
     "closing here (partial, per the fig4 note)."),
    ("fig8", {},
     "Paper: +169% average for writes, +48% for reads, parity at 64K;\n"
     "SSD shares 19/10/4%. Same ordering here: writes gain more than\n"
     "reads, zero change at 64K, shares match."),
    ("fig9", {"procs": (9, 16, 64), "steps": 4},
     "Paper: execution times reduced 45/55/61/59% (9/16/64/100 procs),\n"
     "I/O share of execution drops from 58% to 4%. Our compute time is\n"
     "calibrated to the 58% stock I/O share; reductions land in the same\n"
     "45-60% band."),
    ("fig10", {"procs": (9, 16), "steps": 4},
     "Paper: iBridge beats even the all-SSD system (log-structured writes\n"
     "avoid the SSD random-write penalty). At our scale the execution-time\n"
     "margin is compute-masked (iBridge ties ssd-only within ~1%), so the\n"
     "table also shows the per-request SSD setup cost: in-place random\n"
     "writes pay ~0.1 ms/op, the iBridge log pays ~0."),
    ("fig11", {"steps": 4},
     "Paper: I/O time grows ~linearly as SSD capacity shrinks; 12x I/O\n"
     "time at 0 GB but only 2.2x total execution. Same monotone growth\n"
     "with a 3-6x I/O-time spread at our scale, execution growing much\n"
     "less than I/O."),
    ("table3", {"requests": 600},
     "Paper: service times reduced 13.9/18.7/25.9/29.8%; CTH gains more\n"
     "(most random requests); S3D's mean is ~2x the others.  We reproduce\n"
     "every trace improving, CTH improving most, and S3D having the\n"
     "largest absolute times.  S3D's *reduction* undershoots the paper:\n"
     "its very large striped requests are transfer-gated in our model,\n"
     "so its small fragments rarely sit on a request's critical path."),
    ("fig12", {"steps": 6},
     "Paper: dynamic partitioning = 84 MB/s aggregate, +53% over stock,\n"
     "+13%/+5% over static 1:1/1:2.  We reproduce the large win of any\n"
     "iBridge variant over stock and dynamic >= the best static split;\n"
     "the paper's 5-13% static-vs-dynamic differentiation is below our\n"
     "model's noise at this scale (the SSD partition rarely reaches the\n"
     "pressure point where the split binds)."),
    ("fig13", {},
     "Paper: throughput +56% from 10K to 40K threshold; SSD usage grows\n"
     "3% -> 42%; 20K default trades ~21% throughput for ~76% less SSD\n"
     "traffic. Same monotone curves; our usage column tracks the paper's\n"
     "almost exactly (2-3% at 10K to ~38-42% at 40K)."),
    ("ablation", {},
     "Not a paper artifact: isolates the reproduction's mechanisms\n"
     "(return-policy form, Eq. 3 sibling term, cross-process merging)."),
    ("collective", {},
     "Extension: two-phase collective I/O (the middleware remedy the\n"
     "paper's related work discusses) vs iBridge for the same unaligned\n"
     "pattern. Collective buffering re-aligns requests outright; iBridge\n"
     "matters where collective I/O is not in use."),
    ("degraded", {},
     "Extension: one aging disk gates every striped request. Under the\n"
     "literal Eq. 1 policy, Eq. 3's striping-magnification term is what\n"
     "pushes the gating fragments over the admission threshold."),
]

HEADER = """# EXPERIMENTS — paper vs measured

Generated by `scripts/generate_experiments_md.py` at scale {scale}
({mib:.0f} MiB working set vs the paper's 10 GB; process grids trimmed
to keep the pass to minutes — the CLI reproduces any experiment at any
scale: `ibridge-experiment <name> --scale S`).

Absolute MB/s are not comparable to the authors' testbed; each section
states the paper's reported numbers/trends and how the measured shape
compares.  See DESIGN.md for the substitution and calibration record.
"""


def main():
    parts = [HEADER.format(scale=f"{SCALE:.5f}", mib=10 * 1024 * SCALE)]
    t_all = time.time()
    for name, kwargs, commentary in PLAN:
        t0 = time.time()
        result = get(name)(scale=SCALE, **kwargs)
        elapsed = time.time() - t0
        parts.append(f"## {name}\n")
        parts.append("```")
        parts.append(str(result))
        parts.append("```")
        parts.append(f"\n{commentary}\n")
        print(f"[{name} done in {elapsed:.1f}s]", flush=True)
    parts.append(f"\n_Total generation time: {time.time() - t_all:.0f}s "
                 f"wall._\n")
    with open("EXPERIMENTS.md", "w") as fh:
        fh.write("\n".join(parts))
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
