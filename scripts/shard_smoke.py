"""CI smoke for the partitioned-horizon parallel engine.

One fig2-style unaligned cell, four ways:

1. serial (the classic engine),
2. ``shards=1`` through ``run_sharded_workload`` — digest must equal
   serial **exactly** (the bit-identity contract),
3. two 2-shard process-mode runs under the strict auditor — digests
   must equal each other (self-determinism), verdict must be clean,
   and the cross-shard conservation ledger must balance,
4. a request-population cross-check: the sharded run completes the
   same requests and moves the same bytes as the serial run.

``--profile-out PATH`` additionally writes the 2-shard run's barrier
profile (``result.extra["shard_profile"]``) as JSON and prints the
per-shard busy/idle/wait analyzer table — the input ``python -m
repro.obs.report --shard-profile`` renders.

Exits nonzero on the first broken expectation.

    PYTHONPATH=src python scripts/shard_smoke.py [--scale 0.002]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.config import ClusterConfig  # noqa: E402
from repro.experiments.common import file_bytes  # noqa: E402
from repro.pfs.cluster import Cluster  # noqa: E402
from repro.sim.parallel import (format_shard_profile, run_digest,  # noqa: E402
                                run_sharded_workload)
from repro.units import KiB  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402
from repro.workloads.mpi_io_test import MpiIoTest  # noqa: E402


def check(ok: bool, what: str) -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        raise SystemExit(1)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="write the 2-shard barrier profile as JSON")
    args = parser.parse_args()

    nprocs, request = 16, 65 * KiB
    size = file_bytes(args.scale, nprocs=nprocs, request_size=request)
    make = lambda: MpiIoTest(nprocs=nprocs, request_size=request,
                             file_size=size)
    base = ClusterConfig(num_servers=8, client_jitter=0.0)
    print(f"cell: {nprocs} ranks x {request} B unaligned, "
          f"{size // 1024} KiB file, 8 servers")

    serial = run_workload(Cluster(base), make())
    serial_digest = run_digest(serial)
    print(f"serial digest          {serial_digest}")

    one = run_sharded_workload(base.with_shards(1), make())
    print(f"shards=1 digest        {run_digest(one)}")
    check(run_digest(one) == serial_digest,
          "shards=1 is bit-identical to the serial engine")

    sharded_cfg = base.with_shards(2, shard_mode="process").with_audit()
    first = run_sharded_workload(sharded_cfg, make())
    second = run_sharded_workload(sharded_cfg, make())
    d1, d2 = run_digest(first), run_digest(second)
    print(f"2-shard digest (run 1) {d1}")
    print(f"2-shard digest (run 2) {d2}")
    check(d1 == d2, "2-shard runs are deterministic (strict audit on)")
    check(bool(first.audit_verdict["ok"]),
          f"strict audit verdict clean ({first.audit_verdict})")
    check(first.extra.get("xshard_conserved") == 1.0,
          "cross-shard byte-conservation ledger balances")

    check(len(first.requests) == len(serial.requests),
          f"request count matches serial ({len(first.requests)})")
    key = lambda r: (r.rank, r.offset, r.nbytes, r.op)
    check(sorted(map(key, first.requests))
          == sorted(map(key, serial.requests)),
          "request population (rank, offset, nbytes, op) matches serial")
    check(sum(r.nbytes for r in first.requests)
          == sum(r.nbytes for r in serial.requests),
          "total bytes match serial")
    print(f"windows={first.extra['shard_windows']:.0f}, "
          f"serial makespan {serial.makespan:.6f}s vs "
          f"2-shard {first.makespan:.6f}s")

    profile = first.extra.get("shard_profile")
    check(isinstance(profile, dict) and profile.get("windows"),
          "barrier profile recorded in result.extra['shard_profile']")
    print(format_shard_profile(profile))
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            json.dump(profile, fh)
        print(f"barrier profile written to {args.profile_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
