"""CI smoke for the partitioned-horizon parallel engine.

One fig2-style unaligned cell, four ways:

1. serial (the classic engine),
2. ``shards=1`` through ``run_sharded_workload`` — digest must equal
   serial **exactly** (the bit-identity contract),
3. two 2-shard process-mode runs under the strict auditor — digests
   must equal each other (self-determinism), verdict must be clean,
   and the cross-shard conservation ledger must balance,
4. a request-population cross-check: the sharded run completes the
   same requests and moves the same bytes as the serial run.

``--profile-out PATH`` additionally writes the 2-shard run's barrier
profile (``result.extra["shard_profile"]``) as JSON and prints the
per-shard busy/idle/wait analyzer table — the input ``python -m
repro.obs.report --shard-profile`` renders.

``--fault-plan`` switches to the faulted variant of the same contract:
the cell runs under a two-window device fail-slow plan (one window per
shard's territory), still under the strict auditor — serial vs
``shards=1`` must stay bit-identical, two 2-shard process-mode runs
must agree, and the merged injector records must equal the serial
record stream modulo shard tags.

Exits nonzero on the first broken expectation.

    PYTHONPATH=src python scripts/shard_smoke.py [--scale 0.002]
    PYTHONPATH=src python scripts/shard_smoke.py --fault-plan
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.config import ClusterConfig  # noqa: E402
from repro.experiments.common import file_bytes  # noqa: E402
from repro.pfs.cluster import Cluster  # noqa: E402
from repro.sim.parallel import (format_shard_profile, run_digest,  # noqa: E402
                                run_sharded_workload)
from repro.units import KiB  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402
from repro.workloads.mpi_io_test import MpiIoTest  # noqa: E402


def check(ok: bool, what: str) -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {what}")
    if not ok:
        raise SystemExit(1)


def fault_mode(args) -> int:
    """The faulted variant: same cell, device fail-slow windows."""
    from repro.faults.plan import FaultPlan, fail_slow

    nprocs, request = 16, 65 * KiB
    size = file_bytes(args.scale, nprocs=nprocs, request_size=request)
    make = lambda: MpiIoTest(nprocs=nprocs, request_size=request,
                             file_size=size)
    # One window in each 2-shard territory (servers 0 and 3 of 8 map to
    # shards 0 and 1), opening early enough to bite the small CI cell.
    plan = FaultPlan(name="smoke-fail-slow", events=[
        fail_slow(0, 6.0, start=0.001, duration=0.01),
        fail_slow(3, 4.0, start=0.002, duration=0.01),
    ])
    plan.validate()
    base = ClusterConfig(num_servers=8, client_jitter=0.0)
    print(f"cell: {nprocs} ranks x {request} B unaligned, "
          f"{size // 1024} KiB file, 8 servers, plan {plan.name!r} "
          f"({len(plan)} windows)")

    serial = run_workload(Cluster(base, fault_plan=plan), make())
    serial_digest = run_digest(serial)
    print(f"serial faulted digest  {serial_digest}")
    check(len(serial.fault_events) == 2 * len(plan),
          "serial run logged begin+end for every window")

    one = run_sharded_workload(base.with_shards(1), make(), fault_plan=plan)
    print(f"shards=1 digest        {run_digest(one)}")
    check(run_digest(one) == serial_digest,
          "faulted shards=1 is bit-identical to the serial engine")

    sharded_cfg = base.with_shards(2, shard_mode="process").with_audit()
    first = run_sharded_workload(sharded_cfg, make(), fault_plan=plan)
    second = run_sharded_workload(sharded_cfg, make(), fault_plan=plan)
    d1, d2 = run_digest(first), run_digest(second)
    print(f"2-shard digest (run 1) {d1}")
    print(f"2-shard digest (run 2) {d2}")
    check(d1 == d2,
          "faulted 2-shard runs are deterministic (strict audit on)")
    check(bool(first.audit_verdict["ok"]),
          f"strict audit verdict clean ({first.audit_verdict})")
    check(first.extra.get("xshard_conserved") == 1.0,
          "cross-shard byte-conservation ledger balances")

    stripped = [{k: v for k, v in e.items() if k != "shard"}
                for e in first.fault_events]
    check(stripped == serial.fault_events,
          "merged injector records equal serial modulo shard tags")
    check(all(e["shard"] == e["event"]["server"] % 2
              for e in first.fault_events),
          "each record was driven by the shard owning its server")
    check(first.recovery is not None and serial.recovery is not None
          and first.recovery["timeouts"] == serial.recovery["timeouts"],
          "merged recovery ledger matches serial")
    check(sum(r.nbytes for r in first.requests)
          == sum(r.nbytes for r in serial.requests),
          "total bytes match serial")
    print(f"windows={first.extra['shard_windows']:.0f}, "
          f"serial makespan {serial.makespan:.6f}s vs "
          f"2-shard {first.makespan:.6f}s")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="write the 2-shard barrier profile as JSON")
    parser.add_argument("--fault-plan", action="store_true",
                        help="run the faulted variant (device fail-slow "
                             "windows under the strict auditor)")
    args = parser.parse_args()
    if args.fault_plan:
        return fault_mode(args)

    nprocs, request = 16, 65 * KiB
    size = file_bytes(args.scale, nprocs=nprocs, request_size=request)
    make = lambda: MpiIoTest(nprocs=nprocs, request_size=request,
                             file_size=size)
    base = ClusterConfig(num_servers=8, client_jitter=0.0)
    print(f"cell: {nprocs} ranks x {request} B unaligned, "
          f"{size // 1024} KiB file, 8 servers")

    serial = run_workload(Cluster(base), make())
    serial_digest = run_digest(serial)
    print(f"serial digest          {serial_digest}")

    one = run_sharded_workload(base.with_shards(1), make())
    print(f"shards=1 digest        {run_digest(one)}")
    check(run_digest(one) == serial_digest,
          "shards=1 is bit-identical to the serial engine")

    sharded_cfg = base.with_shards(2, shard_mode="process").with_audit()
    first = run_sharded_workload(sharded_cfg, make())
    second = run_sharded_workload(sharded_cfg, make())
    d1, d2 = run_digest(first), run_digest(second)
    print(f"2-shard digest (run 1) {d1}")
    print(f"2-shard digest (run 2) {d2}")
    check(d1 == d2, "2-shard runs are deterministic (strict audit on)")
    check(bool(first.audit_verdict["ok"]),
          f"strict audit verdict clean ({first.audit_verdict})")
    check(first.extra.get("xshard_conserved") == 1.0,
          "cross-shard byte-conservation ledger balances")

    check(len(first.requests) == len(serial.requests),
          f"request count matches serial ({len(first.requests)})")
    key = lambda r: (r.rank, r.offset, r.nbytes, r.op)
    check(sorted(map(key, first.requests))
          == sorted(map(key, serial.requests)),
          "request population (rank, offset, nbytes, op) matches serial")
    check(sum(r.nbytes for r in first.requests)
          == sum(r.nbytes for r in serial.requests),
          "total bytes match serial")
    print(f"windows={first.extra['shard_windows']:.0f}, "
          f"serial makespan {serial.makespan:.6f}s vs "
          f"2-shard {first.makespan:.6f}s")

    profile = first.extra.get("shard_profile")
    check(isinstance(profile, dict) and profile.get("windows"),
          "barrier profile recorded in result.extra['shard_profile']")
    print(format_shard_profile(profile))
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            json.dump(profile, fh)
        print(f"barrier profile written to {args.profile_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
