"""Bench: regenerate Fig 4 (mpi-io-test, stock vs iBridge)."""

from conftest import run_once

from repro.devices import Op
from repro.experiments import get


def test_fig4_writes(benchmark, bench_scale):
    res = run_once(benchmark, get("fig4"), scale=bench_scale, nprocs=32,
                   op=Op.WRITE)
    assert res.get("33KiB/write", "gain") > 60
    assert res.get("+10KiB/write", "gain") > 60
    assert abs(res.get("+0KiB/write", "gain")) < 3


def test_fig4_reads(benchmark, bench_scale):
    res = run_once(benchmark, get("fig4"), scale=bench_scale, nprocs=32,
                   op=Op.READ)
    assert res.get("33KiB/read", "gain") > 10
    assert res.get("65KiB/read", "gain") > 10
    assert res.get("+10KiB/read", "gain") > 40
    assert abs(res.get("+0KiB/read", "gain")) < 3
