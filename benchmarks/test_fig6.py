"""Bench: regenerate Fig 6 (scalability with process count)."""

from conftest import run_once

from repro.experiments import get


def test_fig6_process_scaling(benchmark, bench_scale):
    res = run_once(benchmark, get("fig6"), scale=bench_scale,
                   procs=(16, 64, 128))
    for np_ in (64, 128):
        assert res.get(f"{np_}/read", "gain") > 15
        assert res.get(f"{np_}/write", "gain") > 15
    assert res.get("mean", "mean_gain") > 15
