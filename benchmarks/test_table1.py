"""Bench: regenerate Table I (trace classification)."""

from conftest import run_once

from repro.experiments import get


def test_table1(benchmark, bench_scale):
    res = run_once(benchmark, get("table1"), scale=bench_scale)
    # The synthesized mix reproduces the paper's totals within noise.
    assert abs(res.get("S3D", "unaligned") - 62.8) < 4.0
    assert abs(res.get("CTH", "random") - 30.1) < 3.0
