"""Bench: regenerate Fig 5 (dispatch sizes with iBridge)."""

from conftest import run_once

from repro.experiments import get


def test_fig5_large_dispatches_restored(benchmark, bench_scale):
    res = run_once(benchmark, get("fig5"), scale=bench_scale, nprocs=32)
    assert res.get("fraction >= 128 sectors", "frac_big") > 0.4
    assert res.get("mean sectors", "mean_sectors") > 100
