"""Bench: regenerate Fig 12 (heterogeneous mix, partitioning policies)."""

from conftest import run_once

from repro.experiments import get


def test_fig12_heterogeneous_partitioning(benchmark, bench_scale):
    res = run_once(benchmark, get("fig12"), scale=bench_scale, nprocs=16,
                   steps=4)
    stock = res.get("stock", "aggregate")
    dynamic = res.get("dynamic", "aggregate")
    assert dynamic > stock
    # Dynamic partitioning is competitive with the better static split.
    best_static = max(res.get("static 1:1", "aggregate"),
                      res.get("static 1:2", "aggregate"))
    assert dynamic >= 0.9 * best_static
