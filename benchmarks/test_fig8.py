"""Bench: regenerate Fig 8 (ior-mpi-io, stock vs iBridge)."""

from conftest import run_once

from repro.devices import Op
from repro.experiments import get


def test_fig8_ior_writes(benchmark, bench_scale):
    res = run_once(benchmark, get("fig8"), scale=bench_scale, nprocs=32,
                   sizes_kib=(33, 64, 65, 129), op=Op.WRITE)
    assert res.get("33KiB/write", "gain") > 50
    assert res.get("65KiB/write", "gain") > 15
    assert abs(res.get("64KiB/write", "gain")) < 5


def test_fig8_ior_reads(benchmark, bench_scale):
    res = run_once(benchmark, get("fig8"), scale=bench_scale, nprocs=32,
                   sizes_kib=(33, 65), op=Op.READ)
    assert res.get("33KiB/read", "gain") > 20
    assert res.get("65KiB/read", "gain") > 10
