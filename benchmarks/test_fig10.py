"""Bench: regenerate Fig 10 (disk-only / SSD-only / iBridge)."""

from conftest import run_once

from repro.experiments import get


def test_fig10_storage_configurations(benchmark, bench_scale):
    res = run_once(benchmark, get("fig10"), scale=bench_scale,
                   procs=(16, 64), steps=4)
    for np_ in (16, 64):
        assert res.get(np_, "ssd") < res.get(np_, "disk")
        assert res.get(np_, "ibridge") <= res.get(np_, "ssd") * 1.02
        assert res.get(np_, "ib_setup") < res.get(np_, "ssd_setup")
