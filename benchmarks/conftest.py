"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure at a reduced scale
(``BENCH_SCALE`` of the paper's 10 GB working set, overridable via the
``REPRO_BENCH_SCALE`` environment variable) and prints the same
rows/series the paper reports, so the bench output doubles as the
reproduction record.  pytest-benchmark measures a single round: the
quantity of interest is the experiment's *result*, the wall time is
informational.
"""

import os

import pytest

#: Fraction of the paper's working set each bench simulates.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 1 / 320))


@pytest.fixture
def bench_scale():
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result)
    return result
