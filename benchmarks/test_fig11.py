"""Bench: regenerate Fig 11 (BTIO I/O time vs SSD capacity)."""

from conftest import run_once

from repro.experiments import get


def test_fig11_capacity_sweep(benchmark, bench_scale):
    res = run_once(benchmark, get("fig11"), scale=bench_scale, nprocs=16,
                   steps=4, fractions=(1.2, 0.6, 0.3, 0.0))
    times = [res.get(f"{f:.2f}", "io_time") for f in (1.2, 0.6, 0.3, 0.0)]
    # I/O time grows monotonically as the SSD shrinks, sharply at zero.
    assert times == sorted(times)
    assert times[-1] > 3 * times[0]
