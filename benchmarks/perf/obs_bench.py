"""Observability overhead micro-benchmark: tracing on vs off.

Runs the same unaligned mpi-io-test cell three ways — obs disabled
(the default every experiment runs with), spans only, and spans +
metrics sampler — and reports wall seconds plus the relative overhead.
The disabled case is the one that matters for the perf baseline: every
instrumented site must cost one attribute load and a ``None`` test, so
its wall time must track the pre-observability engine numbers
(``BASELINE.json``, checked by the micro suite).
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.config import ClusterConfig
from repro.devices.base import Op
from repro.pfs.cluster import Cluster
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


def _run_once(obs_cfg: ClusterConfig, nprocs: int, file_size: int) -> float:
    workload = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                         file_size=file_size, op=Op.WRITE)
    cluster = Cluster(obs_cfg)
    start = time.perf_counter()
    run_workload(cluster, workload)
    elapsed = time.perf_counter() - start
    cluster.shutdown()
    return elapsed


def _best(cfg: ClusterConfig, nprocs: int, file_size: int,
          repeats: int) -> float:
    return min(_run_once(cfg, nprocs, file_size) for _ in range(repeats))


def run_all(quick: bool = False) -> Dict[str, Any]:
    nprocs = 8 if quick else 16
    file_size = (4 if quick else 16) * MiB
    repeats = 2 if quick else 3
    base = ClusterConfig(num_servers=4, client_jitter=0.0)

    off = _best(base, nprocs, file_size, repeats)
    trace_only = _best(base.with_obs(metrics=False), nprocs, file_size,
                       repeats)
    full = _best(base.with_obs(), nprocs, file_size, repeats)
    return {
        "obs_off": {"seconds": off},
        "obs_trace": {"seconds": trace_only,
                      "overhead_pct": (trace_only / off - 1.0) * 100.0},
        "obs_full": {"seconds": full,
                     "overhead_pct": (full / off - 1.0) * 100.0},
    }
