"""Observability overhead micro-benchmark: tracing on vs off.

Runs the same unaligned mpi-io-test cell five ways — obs disabled
(the default every experiment runs with), spans only, spans with
1-in-4 trace sampling (the always-on configuration the ≤5% overhead
target applies to), spans + metrics sampler, and the full stack plus
the continuous timeline recorder at its default cadence — and reports
wall seconds plus the relative overhead.  The disabled case is the one
that matters for the perf baseline: every instrumented site must cost
one attribute load and a ``None`` test, so its wall time must track
the pre-observability engine numbers (``BASELINE.json``, checked by
the micro suite).  The ``obs_timeline`` tier bounds the marginal cost
of the timeline ticker over ``obs_full`` (its regression gate lives in
``run.py``).

Methodology: tiers are **interleaved** round-robin and each overhead
is the *median of per-round ratios* against the obs-off run of the
same round.  Back-to-back tiers with min-of-N, the previous scheme,
let host drift between tiers masquerade as (or hide) tracing cost;
pairing within a round cancels it.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict

from repro.config import ClusterConfig
from repro.devices.base import Op
from repro.pfs.cluster import Cluster
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


def _run_once(obs_cfg: ClusterConfig, nprocs: int, file_size: int) -> float:
    workload = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                         file_size=file_size, op=Op.WRITE)
    cluster = Cluster(obs_cfg)
    start = time.perf_counter()
    run_workload(cluster, workload)
    elapsed = time.perf_counter() - start
    cluster.shutdown()
    return elapsed


def run_all(quick: bool = False) -> Dict[str, Any]:
    nprocs = 8 if quick else 16
    file_size = (4 if quick else 16) * MiB
    rounds = 3 if quick else 7
    base = ClusterConfig(num_servers=4, client_jitter=0.0)
    tiers = {
        "obs_off": base,
        "obs_trace": base.with_obs(metrics=False),
        "obs_sampled": base.with_obs(metrics=False, trace_sample_n=4),
        "obs_full": base.with_obs(),
        "obs_timeline": base.with_obs(timeline_dt=0.05),
    }

    times: Dict[str, list] = {name: [] for name in tiers}
    for _ in range(rounds):
        for name, cfg in tiers.items():
            times[name].append(_run_once(cfg, nprocs, file_size))

    report: Dict[str, Any] = {
        "obs_off": {"seconds": min(times["obs_off"])}
    }
    for name in ("obs_trace", "obs_sampled", "obs_full", "obs_timeline"):
        ratios = [times[name][i] / times["obs_off"][i]
                  for i in range(rounds)]
        report[name] = {
            "seconds": min(times[name]),
            "overhead_pct": (statistics.median(ratios) - 1.0) * 100.0,
        }
    report["obs_sampled"]["sample_n"] = 4
    report["obs_timeline"]["timeline_dt"] = 0.05
    return report
