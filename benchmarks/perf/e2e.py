"""One mid-size end-to-end simulation, timed.

A single iBridge-on cluster serving 64 unaligned 65 KiB readers — the
canonical shape of almost every figure cell — run once at a mid-size
scale.  This catches regressions the micro-benchmarks miss (scheduler
select, device models, RPC fan-out) because it exercises the whole
stack, not just the event engine.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.devices.base import Op
from repro.experiments.common import base_config, file_bytes, measure, scaled_ibridge
from repro.units import KiB
from repro.workloads.mpi_io_test import MpiIoTest


def bench_e2e(scale: float = 0.00625, nprocs: int = 64,
              size_kib: int = 65, repeats: int = 3) -> Dict[str, Any]:
    """Time one full cluster run; returns wall time and sim stats."""
    size = size_kib * KiB
    best = float("inf")
    result = None
    for _ in range(repeats):
        cfg = scaled_ibridge(base_config(), scale)
        wl = MpiIoTest(nprocs=nprocs, request_size=size,
                       file_size=file_bytes(scale, nprocs, size), op=Op.READ)
        start = time.perf_counter()
        result, _cluster = measure(cfg, wl)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return {
        "scale": scale,
        "nprocs": nprocs,
        "size_kib": size_kib,
        "seconds": best,
        "throughput_mib_s": result.throughput_mib_s,
        "requests": len(result.requests),
    }


def run_all(quick: bool = False) -> Dict[str, Any]:
    if quick:
        return {"midsize": bench_e2e(scale=0.001, nprocs=16)}
    return {"midsize": bench_e2e()}
