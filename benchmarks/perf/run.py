"""Run the perf suite and write ``BENCH_<date>.json`` at the repo root.

The JSON embeds the committed pre-optimization baseline
(``benchmarks/perf/BASELINE.json``, measured on the same class of host
before the engine fast paths landed) and a ratio table against it, so
one file answers "how fast is the simulator today and how does that
compare to where it started".

::

    PYTHONPATH=src python -m benchmarks.perf.run              # full
    PYTHONPATH=src python -m benchmarks.perf.run --quick      # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run --out /tmp   # elsewhere
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Optional

from . import e2e, fig2_bench, gc_bench, microbench, obs_bench, shard_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BASELINE.json")


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO_ROOT, capture_output=True, text=True,
                             timeout=10)
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def load_baseline() -> Optional[Dict[str, Any]]:
    try:
        with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _ratios(current: Dict[str, Any],
            baseline: Dict[str, Any]) -> Dict[str, float]:
    """current/baseline speedups for every shared rate & time metric."""
    out: Dict[str, float] = {}
    cur_micro = current.get("micro", {})
    for name, base in baseline.get("micro", {}).items():
        cur = cur_micro.get(name)
        if cur and base.get("ops_per_s"):
            out[f"micro.{name}.speedup"] = cur["ops_per_s"] / base["ops_per_s"]
    base_e2e = baseline.get("e2e", {}).get("midsize", {})
    cur_e2e = current.get("e2e", {}).get("midsize", {})
    if base_e2e.get("seconds") and cur_e2e.get("seconds"):
        out["e2e.midsize.speedup"] = base_e2e["seconds"] / cur_e2e["seconds"]
    base_fig2 = baseline.get("fig2", {}).get("serial_seconds")
    cur_fig2 = current.get("fig2", {}).get("fig2_sweep", {})
    if base_fig2 and cur_fig2.get("serial_seconds"):
        out["fig2.serial.speedup"] = base_fig2 / cur_fig2["serial_seconds"]
    if base_fig2 and cur_fig2.get("parallel_seconds"):
        out["fig2.parallel_vs_baseline.speedup"] = \
            base_fig2 / cur_fig2["parallel_seconds"]
    return out


def run_suite(quick: bool = False, jobs: int = 4,
              skip_fig2: bool = False) -> Dict[str, Any]:
    report: Dict[str, Any] = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "commit": _git_commit(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "quick": quick,
            "jobs": jobs,
        }
    }
    print("== micro: engine events/sec ==", flush=True)
    report["micro"] = microbench.run_all(quick=quick)
    for name, row in report["micro"].items():
        print(f"  {name:22s} {row['ops_per_s']:>12,.0f} ops/s "
              f"({row['seconds']:.3f}s best)")
    print("== e2e: mid-size cluster run ==", flush=True)
    report["e2e"] = e2e.run_all(quick=quick)
    row = report["e2e"]["midsize"]
    print(f"  midsize (scale={row['scale']}, nprocs={row['nprocs']}) "
          f"{row['seconds']:.2f}s wall, {row['throughput_mib_s']:.1f} MiB/s sim")
    print("== obs: tracing overhead (off / spans / spans+metrics) ==",
          flush=True)
    report["obs"] = obs_bench.run_all(quick=quick)
    print(f"  off {report['obs']['obs_off']['seconds']:.2f}s, "
          f"spans {report['obs']['obs_trace']['seconds']:.2f}s "
          f"(+{report['obs']['obs_trace']['overhead_pct']:.1f}%), "
          f"sampled 1-in-{report['obs']['obs_sampled']['sample_n']} "
          f"{report['obs']['obs_sampled']['seconds']:.2f}s "
          f"(+{report['obs']['obs_sampled']['overhead_pct']:.1f}%), "
          f"spans+metrics {report['obs']['obs_full']['seconds']:.2f}s "
          f"(+{report['obs']['obs_full']['overhead_pct']:.1f}%), "
          f"+timeline@{report['obs']['obs_timeline']['timeline_dt']:g}s "
          f"{report['obs']['obs_timeline']['seconds']:.2f}s "
          f"(+{report['obs']['obs_timeline']['overhead_pct']:.1f}%)")
    print("== gc: FTL/GC model overhead (off vs on) ==", flush=True)
    report["gc"] = gc_bench.run_all(quick=quick)
    gc_on = report["gc"]["ftl_on"]
    print(f"  ftl off {report['gc']['ftl_off']['seconds']:.2f}s, "
          f"ftl on {gc_on['seconds']:.2f}s "
          f"(+{gc_on['overhead_pct']:.1f}%), "
          f"WA {gc_on['write_amplification']:.2f}, "
          f"erases {gc_on['erases']:.0f}")
    print("== shards: partitioned-horizon engine (span slab + scaling) ==",
          flush=True)
    report["shards"] = shard_bench.run_all(quick=quick)
    span_row = report["shards"]["span_alloc"]
    print(f"  span alloc: unsampled {span_row['unsampled_ops_per_s']:>11,.0f}"
          f" ops/s, 1-in-{span_row['sample_n']} sampled "
          f"{span_row['sampled_ops_per_s']:>11,.0f} ops/s "
          f"({span_row['sampled_speedup']:.2f}x)")
    scale_row = report["shards"]["shard_scaling"]
    print(f"  scaling ({scale_row['requests']} reqs, "
          f"{scale_row['cpu_count']} CPUs): "
          f"serial {scale_row['serial_seconds']:.2f}s, "
          f"2 shards {scale_row['shard2_seconds']:.2f}s "
          f"({scale_row['shard2_speedup']:.2f}x), "
          f"4 shards {scale_row['shard4_seconds']:.2f}s "
          f"({scale_row['shard4_speedup']:.2f}x), "
          f"identical={scale_row['requests_identical']}")
    if not skip_fig2:
        print("== fig2: full sweep, serial vs pool ==", flush=True)
        report["fig2"] = fig2_bench.run_all(quick=quick, jobs=jobs)
        row = report["fig2"]["fig2_sweep"]
        print(f"  serial {row['serial_seconds']:.2f}s, "
              f"jobs={row['jobs']} {row['parallel_seconds']:.2f}s, "
              f"speedup {row['speedup']:.2f}x, "
              f"identical={row['values_identical']}")
        cache_row = report["fig2"]["cache_warm_vs_cold"]
        print(f"  cache: cold {cache_row['cold_seconds']:.2f}s "
              f"({cache_row['cold_executed']} executed), warm "
              f"{cache_row['warm_seconds']:.4f}s "
              f"({cache_row['warm_executed']} executed)")

    baseline = load_baseline()
    if baseline is not None:
        report["baseline"] = baseline
        if quick:
            # Quick runs shrink problem sizes; ratios against the
            # full-size baseline would be meaningless.
            print("(skipping baseline comparison: --quick sizes are not "
                  "comparable)")
        else:
            report["vs_baseline"] = _ratios(report, baseline)
            if report["vs_baseline"]:
                print("== vs committed baseline ==")
                for key, ratio in sorted(report["vs_baseline"].items()):
                    print(f"  {key:40s} {ratio:.2f}x")
    return report


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.run",
        description="Time the simulator and write BENCH_<date>.json.")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes (CI smoke; numbers not comparable "
                             "to full runs)")
    parser.add_argument("--jobs", "-j", type=int, default=4,
                        help="pool width for the fig2 sweep (default 4)")
    parser.add_argument("--skip-fig2", action="store_true",
                        help="micro + e2e only")
    parser.add_argument("--out", default=REPO_ROOT, metavar="DIR",
                        help="directory for BENCH_<date>.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, jobs=args.jobs,
                       skip_fig2=args.skip_fig2)
    # Failures in the correctness cross-checks make the bench run fail:
    # a speedup that changes results is a bug, not a win.
    fig2_row = report.get("fig2", {}).get("fig2_sweep")
    if fig2_row is not None and not fig2_row["values_identical"]:
        print("FAIL: serial and parallel fig2 values differ", file=sys.stderr)
        return 1
    scale_row = report.get("shards", {}).get("shard_scaling")
    if scale_row is not None and not scale_row["requests_identical"]:
        print("FAIL: sharded runs moved different requests/bytes than "
              "serial", file=sys.stderr)
        return 1
    # Speedup is a hardware claim: only enforce it where the hardware
    # exists (quick sizes are coordination-dominated; small CI hosts
    # timeshare the shard workers).
    if (scale_row is not None and not args.quick
            and (scale_row["cpu_count"] or 1) >= 4
            and scale_row["shard4_speedup"] < 1.8):
        print(f"FAIL: 4-shard speedup {scale_row['shard4_speedup']:.2f}x "
              f"< 1.8x on a {scale_row['cpu_count']}-CPU host",
              file=sys.stderr)
        return 1
    # The timeline ticker rides the obs_full stack; its *marginal* cost
    # over obs_full must stay small (quick sizes are too noisy for a
    # percentage-point gate).
    obs_row = report.get("obs", {})
    if (not args.quick and obs_row
            and obs_row["obs_timeline"]["overhead_pct"]
            - obs_row["obs_full"]["overhead_pct"] > 10.0):
        print(f"FAIL: timeline recorder adds "
              f"{obs_row['obs_timeline']['overhead_pct'] - obs_row['obs_full']['overhead_pct']:.1f}% "
              f"over the spans+metrics tier (> 10% budget)",
              file=sys.stderr)
        return 1

    name = f"BENCH_{time.strftime('%Y%m%d')}.json"
    path = os.path.join(args.out, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
