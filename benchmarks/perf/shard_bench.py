"""Partitioned-horizon engine benchmarks: shard scaling + span slab.

Two tiers:

* ``span_alloc`` — the observability hot path in isolation: spans
  started/finished per second with ``sample_n=1`` (every span retained,
  every span allocated) vs ``sample_n=4`` (1-in-4 traces retained;
  dropped spans recycle through the tracer's freelist).  This is the
  micro-measurable form of the Span-slab satellite: the sampled rate
  should beat the unsampled one because three quarters of the spans
  never allocate a dict and reuse slab objects.

* ``shard_scaling`` — one fig2-style cluster at several shard counts
  (serial / 2 / 4, ``shard_mode="process"``), wall-clock each, plus a
  correctness cross-check that every shard count moves exactly the
  serial run's requests and bytes.  Speedup expectations only hold on
  hosts with enough cores — the suite records ``cpu_count`` and the
  gate in ``run.py`` skips the assertion on small hosts (CI boxes are
  often 1-2 vCPUs).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.config import ClusterConfig
from repro.obs.span import Tracer
from repro.sim.parallel import run_sharded_workload
from repro.units import KiB, MiB
from repro.workloads.mpi_io_test import MpiIoTest


# ------------------------------------------------------------------ micro
def _span_rate(sample_n: int, spans: int) -> float:
    """Spans started+finished per second through one Tracer."""
    # Cap retention well below the span count so the retained path
    # (append + sink) and the recycled path both run at steady state.
    tracer = Tracer(max_spans=spans, sample_n=sample_n)
    start = time.perf_counter()
    t = 0.0
    for trace_id in range(spans):
        span = tracer.start("bench", "rpc", trace_id, t)
        tracer.finish(span, t)
        t += 1e-6
    elapsed = time.perf_counter() - start
    return spans / elapsed if elapsed > 0 else 0.0


def span_alloc_bench(quick: bool = False) -> Dict[str, Any]:
    spans = 50_000 if quick else 200_000
    repeats = 2 if quick else 3
    unsampled = max(_span_rate(1, spans) for _ in range(repeats))
    sampled = max(_span_rate(4, spans) for _ in range(repeats))
    return {
        "spans": spans,
        "unsampled_ops_per_s": unsampled,
        "sampled_ops_per_s": sampled,
        "sample_n": 4,
        "sampled_speedup": sampled / unsampled if unsampled else 0.0,
    }


# ---------------------------------------------------------------- scaling
def _scaling_workload(quick: bool) -> MpiIoTest:
    # ~4x the fig2 cell size in the full tier: big enough that the
    # per-window coordination cost amortizes over real event work.
    file_size = (8 if quick else 64) * MiB
    return MpiIoTest(nprocs=8, request_size=65 * KiB, file_size=file_size)


def _timed_run(cfg: ClusterConfig, quick: bool):
    workload = _scaling_workload(quick)
    start = time.perf_counter()
    result = run_sharded_workload(cfg, workload)
    elapsed = time.perf_counter() - start
    return elapsed, result


def shard_scaling_bench(quick: bool = False) -> Dict[str, Any]:
    base = ClusterConfig(num_servers=8, client_jitter=0.0)
    serial_s, serial = _timed_run(base, quick)
    row: Dict[str, Any] = {
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "requests": len(serial.requests),
        "requests_identical": True,
    }
    serial_bytes = sum(r.nbytes for r in serial.requests)
    for shards in (2, 4):
        cfg = base.with_shards(shards, shard_mode="process")
        elapsed, result = _timed_run(cfg, quick)
        row[f"shard{shards}_seconds"] = elapsed
        row[f"shard{shards}_speedup"] = (serial_s / elapsed
                                         if elapsed > 0 else 0.0)
        row[f"shard{shards}_windows"] = result.extra.get("shard_windows")
        if (len(result.requests) != len(serial.requests)
                or sum(r.nbytes for r in result.requests) != serial_bytes):
            row["requests_identical"] = False
    return row


def run_all(quick: bool = False) -> Dict[str, Any]:
    return {
        "span_alloc": span_alloc_bench(quick=quick),
        "shard_scaling": shard_scaling_bench(quick=quick),
    }
