"""Engine micro-benchmarks: events/sec through the hot paths.

Each benchmark builds a fresh :class:`~repro.sim.Environment`, drives a
synthetic event pattern that isolates one engine hot path, and reports
a rate (operations per second, best of ``repeats`` runs).  The patterns
mirror what real workloads do millions of times per experiment:

* ``timeout_trampoline`` — the process/timeout round-trip that
  dominates every device-service loop.
* ``process_spawn`` — Process bootstrap cost (one per client request,
  per queue runner, per RPC).
* ``event_chain`` — event succeed + single-callback dispatch, the
  common case the run loop fast-paths.
* ``queue_snapshot`` — the audit/debug heap inspection with ``limit``
  (must not sort the whole heap).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

from repro.sim import Environment


def _rate(op_count: int, fn: Callable[[], None], repeats: int = 3) -> Dict[str, Any]:
    """Best-of-``repeats`` wall time for ``fn``; returns ops/sec."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return {"ops": op_count, "seconds": best, "ops_per_s": op_count / best}


def bench_timeout_trampoline(nprocs: int = 100, iters: int = 2000,
                             repeats: int = 3) -> Dict[str, Any]:
    """N processes each yielding ``iters`` timeouts — the core loop."""
    def run() -> None:
        env = Environment()

        def worker(env: Environment) -> Any:
            for _ in range(iters):
                yield env.timeout(0.001)

        for _ in range(nprocs):
            env.process(worker(env))
        env.run()

    return _rate(nprocs * iters, run, repeats)


def bench_process_spawn(count: int = 50_000, repeats: int = 3) -> Dict[str, Any]:
    """Spawn ``count`` trivial processes: bootstrap + first resume cost."""
    def run() -> None:
        env = Environment()

        def noop(env: Environment) -> Any:
            return
            yield  # pragma: no cover - makes noop a generator

        for _ in range(count):
            env.process(noop(env))
        env.run()

    return _rate(count, run, repeats)


def bench_event_chain(count: int = 100_000, repeats: int = 3) -> Dict[str, Any]:
    """Succeed-then-wait on ``count`` events: single-callback fast path."""
    def run() -> None:
        env = Environment()

        def chain(env: Environment) -> Any:
            for _ in range(count):
                ev = env.event()
                ev.succeed(None)
                yield ev

        env.process(chain(env))
        env.run()

    return _rate(count, run, repeats)


def bench_queue_snapshot(depth: int = 10_000, limit: int = 10,
                         calls: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """``queue_snapshot(limit)`` against a deep heap.

    Deadlines are scrambled (deterministically) so the heap's list
    order is not already sorted — pushing monotone deadlines leaves the
    backing list fully ordered, which lets a full ``sorted()`` degenerate
    to O(n) and makes the benchmark unrepresentative of a real stall
    dump's mixed-deadline queue.
    """
    env = Environment()
    for i in range(depth):
        env.timeout(float((i * 7919) % (depth + 7)))

    def run() -> None:
        for _ in range(calls):
            env.queue_snapshot(limit=limit)

    return _rate(calls, run, repeats)


def run_all(quick: bool = False) -> Dict[str, Dict[str, Any]]:
    """Run the micro suite; ``quick`` shrinks sizes for CI smoke runs."""
    shrink = 10 if quick else 1
    return {
        "timeout_trampoline": bench_timeout_trampoline(
            nprocs=100 // shrink or 10, iters=2000 // shrink),
        "process_spawn": bench_process_spawn(count=50_000 // shrink),
        "event_chain": bench_event_chain(count=100_000 // shrink),
        "queue_snapshot": bench_queue_snapshot(
            depth=10_000 // shrink, calls=1000 // shrink),
    }
