"""FTL/GC model overhead micro-benchmark: FTL on vs off.

Runs the same unaligned mpi-io-test write cell twice — the plain
Table II SSD (``ftl_enabled=False``, the default every paper figure
runs with) and the page-mapped FTL with garbage collection active —
and reports wall seconds plus the relative overhead.  The drive is
sized so the FTL run genuinely wraps and collects (the report records
erases and write amplification so a silently-idle FTL is visible):
this is the cost of the GC model *working*, not of a dormant branch.
The off case must stay at the pre-FTL numbers — the model hangs off
``service_extra`` behind one ``ftl is None`` test.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Tuple

from repro.config import ClusterConfig
from repro.devices.base import Op
from repro.pfs.cluster import Cluster
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


def _config(ftl: bool, file_size: int) -> ClusterConfig:
    # Mirrors experiments/gc.py: the drive is sized so warm traffic
    # wraps the FTL, and the 48 KiB threshold admits the 32 KiB tail
    # fragment every 96 KiB request leaves on a 64 KiB stripe.
    partition = max(MiB, (file_size // 24 // MiB) * MiB)
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0)
    cfg = cfg.with_ibridge(ssd_partition=partition,
                           fragment_threshold=48 * KiB)
    ssd = dataclasses.replace(cfg.ssd, capacity=2 * partition + 2 * MiB)
    if ftl:
        ssd = dataclasses.replace(
            ssd, ftl_enabled=True, ftl_over_provision=0.25,
            gc_low_watermark=0.30, gc_high_watermark=0.55,
            gc_mode="pause")
    return cfg.replace(ssd=ssd)


def _run_once(cfg: ClusterConfig, nprocs: int,
              file_size: int) -> Tuple[float, Dict[str, float]]:
    workload = MpiIoTest(nprocs=nprocs, request_size=96 * KiB,
                         file_size=file_size, op=Op.WRITE)
    cluster = Cluster(cfg)
    start = time.perf_counter()
    # Two warm passes (timed — both variants run the same three passes)
    # push the small drive into steady-state collection pressure, so
    # the FTL run is measured with GC actually working.
    run_workload(cluster, workload, warm_runs=2)
    elapsed = time.perf_counter() - start
    ftls = [s.ssd.ftl for s in cluster.servers if s.ssd.ftl is not None]
    stats = {
        "erases": float(sum(f.erases for f in ftls)),
        "write_amplification": (sum(f.write_amplification for f in ftls)
                                / len(ftls) if ftls else 1.0),
    }
    cluster.shutdown()
    return elapsed, stats


def _best(cfg: ClusterConfig, nprocs: int, file_size: int,
          repeats: int) -> Tuple[float, Dict[str, float]]:
    runs = [_run_once(cfg, nprocs, file_size) for _ in range(repeats)]
    best = min(seconds for seconds, _ in runs)
    return best, runs[-1][1]


def run_all(quick: bool = False) -> Dict[str, Any]:
    # Sized so the FTL run collects even at the quick sizes (below
    # ~16 MiB the per-drive log traffic never wraps the drive and the
    # "overhead" would be that of a dormant FTL).
    nprocs = 8 if quick else 16
    file_size = (16 if quick else 32) * MiB
    repeats = 2 if quick else 3

    off, _ = _best(_config(False, file_size), nprocs, file_size, repeats)
    on, stats = _best(_config(True, file_size), nprocs, file_size, repeats)
    return {
        "ftl_off": {"seconds": off},
        "ftl_on": {"seconds": on,
                   "overhead_pct": (on / off - 1.0) * 100.0,
                   "erases": stats["erases"],
                   "write_amplification": stats["write_amplification"]},
    }
