"""The full fig2 sweep, timed serially and through the worker pool.

This is the headline wall-clock number: the whole motivation-study
matrix (fig2a + fig2b + fig2cde) at a given scale, once with
``jobs=1`` and once with ``jobs=N``, both with the cache disabled so
every cell simulates.  The two runs must produce bit-identical
``ExperimentResult.values`` — the speedup is reported alongside the
equality check so a perf win can never silently buy a correctness
loss.

On a single-CPU host the pool cannot beat the serial run (workers
time-slice one core and pay fork + pickle overhead); the JSON records
``cpu_count`` so readers can interpret the ratio honestly.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.experiments import fig2
from repro.experiments.runner import cell, run_cells, set_sweep_defaults


def _timed_run(scale: float, jobs: int) -> Dict[str, Any]:
    """Run the whole fig2 matrix (same shape as ``fig2.run``)."""
    set_sweep_defaults(jobs=jobs, cache=False)
    try:
        start = time.perf_counter()
        subs = [fig2.run_fig2a(scale, procs=(16, 64)),
                fig2.run_fig2b(scale, procs=(16, 64)),
                fig2.run_fig2cde(scale)]
        elapsed = time.perf_counter() - start
    finally:
        set_sweep_defaults()  # restore: in-process, uncached
    values = {(sub.name,) + k: v for sub in subs
              for k, v in sub.values.items()}
    return {"seconds": elapsed, "values": values}


def bench_fig2(scale: float = 0.00625, jobs: int = 4) -> Dict[str, Any]:
    serial = _timed_run(scale, jobs=1)
    parallel = _timed_run(scale, jobs=jobs)
    identical = serial["values"] == parallel["values"]
    return {
        "scale": scale,
        "jobs": jobs,
        "serial_seconds": serial["seconds"],
        "parallel_seconds": parallel["seconds"],
        "speedup": serial["seconds"] / parallel["seconds"],
        "values_identical": identical,
    }


def bench_cache(scale: float = 0.002,
                cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Cold-then-warm cache timing on a tiny fig2a matrix."""
    import shutil
    import tempfile

    tmp = cache_dir or tempfile.mkdtemp(prefix="ibridge-bench-cache-")
    try:
        from repro.units import KiB
        cells = [cell("repro.experiments.fig2:_cell_throughput",
                      scale=scale, nprocs=np_, size=65 * KiB)
                 for np_ in (4, 8, 16)]
        start = time.perf_counter()
        cold = run_cells(cells, jobs=1, cache=True, cache_dir=tmp)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_cells(cells, jobs=1, cache=True, cache_dir=tmp)
        warm_s = time.perf_counter() - start
        return {
            "cells": len(cells),
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "cold_executed": cold.executed,
            "warm_executed": warm.executed,
            "values_identical": cold.results == warm.results,
        }
    finally:
        if cache_dir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def run_all(quick: bool = False, jobs: int = 4) -> Dict[str, Any]:
    scale = 0.001 if quick else 0.00625
    return {
        "fig2_sweep": bench_fig2(scale=scale, jobs=jobs),
        "cache_warm_vs_cold": bench_cache(scale=0.001 if quick else 0.002),
    }
