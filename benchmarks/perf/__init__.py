"""Wall-clock performance suite (events/sec, e2e runs, fig2 sweep).

Unlike the ``benchmarks/test_*`` accuracy benchmarks (which compare
simulated numbers against the paper), this package measures how fast
the simulator itself runs, and records the results as ``BENCH_<date>.json``
at the repo root so the perf trajectory has data points.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run            # full suite
    PYTHONPATH=src python -m benchmarks.perf.run --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.compare A.json B.json
"""
