"""Compare two ``BENCH_*.json`` files: before/after table.

::

    PYTHONPATH=src python -m benchmarks.perf.compare BEFORE.json AFTER.json

Prints a ratio per shared metric (after/before for rates, before/after
for wall times — both read as "bigger is better for AFTER").  Exits
non-zero if any shared metric regressed by more than ``--tolerance``
(default 20%), so the script can gate a perf-sensitive change locally;
CI deliberately does not wall-clock-gate (shared runners are noisy).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterator, Optional, Tuple


def _metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, float, bool]]:
    """Yield (name, value, bigger_is_better) for every timed metric."""
    for name, row in report.get("micro", {}).items():
        yield f"micro.{name}.ops_per_s", row["ops_per_s"], True
    e2e = report.get("e2e", {}).get("midsize")
    if e2e:
        yield "e2e.midsize.seconds", e2e["seconds"], False
    fig2 = report.get("fig2", {}).get("fig2_sweep")
    if fig2:
        yield "fig2.serial_seconds", fig2["serial_seconds"], False
        yield "fig2.parallel_seconds", fig2["parallel_seconds"], False
    # Baseline-style flat reports (benchmarks/perf/BASELINE.json).
    if "serial_seconds" in report.get("fig2", {}):
        yield "fig2.serial_seconds", report["fig2"]["serial_seconds"], False


def compare(before: Dict[str, Any], after: Dict[str, Any],
            tolerance: float = 0.2) -> Tuple[int, str]:
    b = dict((name, (val, big)) for name, val, big in _metrics(before))
    lines = []
    worst: Optional[Tuple[str, float]] = None
    if bool(before.get("meta", {}).get("quick")) \
            != bool(after.get("meta", {}).get("quick")):
        lines.append("warning: comparing a --quick run against a full run; "
                     "sizes differ, ratios are not meaningful")
    for name, after_val, bigger_better in _metrics(after):
        if name not in b:
            continue
        before_val, _ = b[name]
        if not before_val or not after_val:
            continue
        gain = (after_val / before_val) if bigger_better \
            else (before_val / after_val)
        lines.append(f"  {name:34s} {before_val:>14,.2f} -> "
                     f"{after_val:>14,.2f}   {gain:.2f}x")
        if worst is None or gain < worst[1]:
            worst = (name, gain)
    if not lines:
        return 1, "no shared metrics between the two reports"
    text = "\n".join(lines)
    if worst is not None and worst[1] < 1.0 - tolerance:
        text += (f"\nREGRESSION: {worst[0]} is {worst[1]:.2f}x "
                 f"(worse than the {tolerance:.0%} tolerance)")
        return 1, text
    return 0, text


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.compare",
        description="Before/after comparison of two BENCH_*.json reports.")
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional slowdown before exiting "
                             "non-zero (default 0.2)")
    args = parser.parse_args(argv)
    with open(args.before, "r", encoding="utf-8") as fh:
        before = json.load(fh)
    with open(args.after, "r", encoding="utf-8") as fh:
        after = json.load(fh)
    code, text = compare(before, after, tolerance=args.tolerance)
    print(f"{args.before} -> {args.after}")
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
