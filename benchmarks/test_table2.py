"""Bench: regenerate Table II (device corner bandwidths)."""

from conftest import run_once

from repro.experiments import get


def test_table2(benchmark, bench_scale):
    res = run_once(benchmark, get("table2"), scale=bench_scale)
    assert abs(res.get("ssd/sequential_read", "mib_s") - 160) < 5
    assert abs(res.get("ssd/random_write", "mib_s") - 30) < 2
    assert abs(res.get("hdd/sequential_write", "mib_s") - 80) < 3
