"""Bench: extension experiment — collective I/O vs iBridge."""

from conftest import run_once

from repro.experiments import get


def test_collective_vs_ibridge(benchmark, bench_scale):
    res = run_once(benchmark, get("collective"), scale=bench_scale,
                   nprocs=32)
    stock = res.get("stock, independent", "throughput")
    # Both remedies beat the stock independent-I/O baseline.
    assert res.get("iBridge, independent", "throughput") > stock
    assert res.get("stock, collective", "throughput") > stock
    # With collective buffering there are no fragments left for iBridge.
    assert res.get("iBridge, collective", "ssd_pct") < 2.0
