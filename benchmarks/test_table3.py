"""Bench: regenerate Table III (trace-replay service times)."""

from conftest import run_once

from repro.experiments import get


def test_table3_trace_replay(benchmark, bench_scale):
    res = run_once(benchmark, get("table3"), scale=bench_scale, requests=400)
    for app in ("ALEGRA-2744", "ALEGRA-5832", "CTH", "S3D"):
        assert res.get(app, "reduction") > 0
    # S3D's much larger requests give it the largest service times.
    assert res.get("S3D", "stock_ms") > res.get("CTH", "stock_ms")
