"""Bench: degraded-disk extension (Eq. 3 sibling term at work)."""

from conftest import run_once

from repro.experiments import get


def test_degraded_disk_eq3(benchmark, bench_scale):
    res = run_once(benchmark, get("degraded"), scale=bench_scale, nprocs=32)
    assert (res.get("iBridge literal, Eq.3 on", "slow_redirects")
            > res.get("iBridge literal, Eq.3 off", "slow_redirects"))
    assert (res.get("iBridge efficiency-policy", "throughput")
            > res.get("stock", "throughput"))
