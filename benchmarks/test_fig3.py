"""Bench: regenerate Fig 3 (striping magnification effect)."""

from conftest import run_once

from repro.experiments import get


def test_fig3_striping_magnification(benchmark, bench_scale):
    res = run_once(benchmark, get("fig3"), scale=bench_scale,
                   ks=(1, 3, 5, 7), nprocs=16)
    # Fragments cost throughput at every server count.
    for k in (1, 3, 5, 7):
        assert res.get(k, "loss_nobarrier") > 0
