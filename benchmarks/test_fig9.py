"""Bench: regenerate Fig 9 (BTIO execution times)."""

from conftest import run_once

from repro.experiments import get


def test_fig9_btio_execution_times(benchmark, bench_scale):
    # 64/100-proc BTIO points are left to the CLI (`ibridge-experiment
    # fig9`): millions of tiny-request events make them minutes-long.
    res = run_once(benchmark, get("fig9"), scale=bench_scale,
                   procs=(9, 16), steps=3)
    # Paper: 45-61% execution-time reductions.
    for np_ in (9, 16):
        assert res.get(np_, "reduction") > 30
