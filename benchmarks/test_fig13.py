"""Bench: regenerate Fig 13 (request-size threshold sweep)."""

from conftest import run_once

from repro.experiments import get


def test_fig13_threshold_sweep(benchmark, bench_scale):
    res = run_once(benchmark, get("fig13"), scale=bench_scale, nprocs=32,
                   thresholds_kib=(10, 20, 30, 40))
    tps = [res.get(f"{t}KiB", "throughput") for t in (10, 20, 30, 40)]
    usage = [res.get(f"{t}KiB", "ssd_pct") for t in (10, 20, 30, 40)]
    assert tps == sorted(tps)
    assert usage == sorted(usage)
    # Paper: SSD usage grows from ~3% to ~42% across the sweep.
    assert usage[0] < 5
    assert usage[-1] > 25
