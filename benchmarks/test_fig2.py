"""Bench: regenerate Fig 2 (unaligned-access effects on the stock system)."""

from conftest import run_once

from repro.experiments import get


def test_fig2a_pattern2(benchmark, bench_scale):
    res = run_once(benchmark, get("fig2a"), scale=bench_scale,
                   sizes_kib=(64, 65, 74, 94), procs=(16, 64))
    # Unaligned sizes lose to the aligned reference at both proc counts.
    for np_ in (16, 64):
        assert res.get(np_, "s65") < 0.75 * res.get(np_, "s64")
        assert res.get(np_, "s94") < res.get(np_, "s64")


def test_fig2b_pattern3(benchmark, bench_scale):
    res = run_once(benchmark, get("fig2b"), scale=bench_scale,
                   offsets_kib=(0, 1, 10), procs=(16, 64))
    for np_ in (16, 64):
        assert res.get(np_, "off10") < 0.8 * res.get(np_, "off0")


def test_fig2cde_dispatch_sizes(benchmark, bench_scale):
    res = run_once(benchmark, get("fig2cde"), scale=bench_scale, nprocs=32)
    # Aligned access dispatches mostly >=64KiB; unaligned collapses.
    assert res.get("c: 64KiB aligned", "frac_big") > 0.5
    assert (res.get("d: 65KiB", "mean_sectors")
            < res.get("c: 64KiB aligned", "mean_sectors"))
