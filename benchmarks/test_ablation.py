"""Bench: design-choice ablations (DESIGN.md §5)."""

from conftest import run_once

from repro.experiments import get


def test_ablations(benchmark, bench_scale):
    res = run_once(benchmark, get("ablation"), scale=bench_scale, nprocs=32)
    assert (res.get("iBridge (default)", "throughput")
            > res.get("stock", "throughput"))
    assert (res.get("stock, per-stream merge only", "throughput")
            < res.get("stock", "throughput"))
