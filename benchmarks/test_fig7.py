"""Bench: regenerate Fig 7 (scalability with data-server count)."""

from conftest import run_once

from repro.devices import Op
from repro.experiments import get


def test_fig7_server_scaling(benchmark, bench_scale):
    res = run_once(benchmark, get("fig7"), scale=bench_scale, nprocs=32,
                   servers=(2, 4, 8), op=Op.WRITE)
    # All three series rise with server count.
    for key in ("aligned", "stock", "ibridge"):
        assert res.get("8/write", key) > res.get("2/write", key)
    # iBridge beats the stock system at every server count.
    for ns in (2, 4, 8):
        assert res.get(f"{ns}/write", "ibridge") > res.get(f"{ns}/write", "stock")
