"""Tests for the striping layout (global ↔ server-local mapping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pfs.layout import StripeLayout
from repro.units import KiB

UNIT = 64 * KiB


def test_server_of_round_robin():
    layout = StripeLayout(UNIT, 8)
    for stripe in range(20):
        assert layout.server_of(stripe * UNIT) == stripe % 8


def test_local_offset_packs_stripes():
    layout = StripeLayout(UNIT, 8)
    # Stripe 8 is server 0's second stripe: local offset one unit.
    assert layout.local_offset(8 * UNIT) == UNIT
    assert layout.local_offset(8 * UNIT + 100) == UNIT + 100


def test_aligned_predicate():
    layout = StripeLayout(UNIT, 8)
    assert layout.is_aligned(0, UNIT)
    assert layout.is_aligned(UNIT * 3, UNIT * 2)
    assert not layout.is_aligned(1, UNIT)
    assert not layout.is_aligned(0, UNIT + 1)


def test_split_single_stripe():
    layout = StripeLayout(UNIT, 8)
    pieces = layout.split(0, UNIT)
    assert len(pieces) == 1
    assert pieces[0].server == 0
    assert pieces[0].nbytes == UNIT


def test_split_unaligned_65k_produces_two_pieces():
    layout = StripeLayout(UNIT, 8)
    pieces = layout.split(65 * KiB, 65 * KiB)  # request 1 of Pattern II
    assert len(pieces) == 2
    assert sum(p.nbytes for p in pieces) == 65 * KiB
    sizes = sorted(p.nbytes for p in pieces)
    assert sizes == [2 * KiB, 63 * KiB]


def test_split_offset_request_spans_two_servers():
    layout = StripeLayout(UNIT, 8)
    pieces = layout.split(10 * KiB, UNIT)  # Pattern III, +10KB
    assert len(pieces) == 2
    assert {p.server for p in pieces} == {0, 1}
    assert sorted(p.nbytes for p in pieces) == [10 * KiB, 54 * KiB]


def test_split_large_request_coalesces_same_server_stripes():
    layout = StripeLayout(UNIT, 2)
    # 4 stripes over 2 servers: each server gets 2 local-contiguous units.
    pieces = layout.split(0, 4 * UNIT)
    assert len(pieces) == 2
    assert all(p.nbytes == 2 * UNIT for p in pieces)


def test_split_rejects_bad_args():
    layout = StripeLayout(UNIT, 8)
    with pytest.raises(ConfigError):
        layout.split(0, 0)
    with pytest.raises(ConfigError):
        layout.split(-1, UNIT)
    with pytest.raises(ConfigError):
        StripeLayout(0, 8)
    with pytest.raises(ConfigError):
        StripeLayout(UNIT, 0)


def test_total_local_bytes():
    layout = StripeLayout(UNIT, 4)
    size = 10 * UNIT + 100  # 10 full stripes + 100 bytes
    shares = [layout.total_local_bytes(s, size) for s in range(4)]
    assert sum(shares) == size
    # Stripes 0,4,8 on server 0; 1,5,9 on 1; 2,6 + tail on 2; 3,7 on 3.
    assert shares == [3 * UNIT, 3 * UNIT, 2 * UNIT + 100, 2 * UNIT]


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10_000_000), st.integers(1, 1_000_000),
       st.integers(1, 12))
def test_property_split_partitions_request(offset, size, nservers):
    """Pieces exactly cover the request with correct address mapping."""
    layout = StripeLayout(UNIT, nservers)
    pieces = layout.split(offset, size)
    assert sum(p.nbytes for p in pieces) == size
    # Every piece's global range maps back to its server/local offset.
    for p in pieces:
        assert layout.server_of(p.global_offset) == p.server
        assert layout.local_offset(p.global_offset) == p.local_offset
    # Global offsets are unique and ordered coverage.
    covered = sorted((p.global_offset, p.global_offset + 0) for p in pieces)
    assert len({c[0] for c in covered}) == len(pieces)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 4_000_000), st.integers(1, 12))
def test_property_local_shares_sum_to_file(size, nservers):
    layout = StripeLayout(UNIT, nservers)
    assert sum(layout.total_local_bytes(s, size)
               for s in range(nservers)) == size
