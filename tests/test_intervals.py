"""Unit + property tests for the IntervalMap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.util.intervals import IntervalMap


def test_set_and_get_exact():
    m = IntervalMap()
    m.set(10, 20, "a")
    assert m.get(10, 20) == [(10, 20, "a", 0)]
    assert m.total_bytes == 10


def test_get_clipped_with_delta():
    m = IntervalMap()
    m.set(0, 100, 1000)  # value is a base LBN
    pieces = m.get(30, 60)
    assert pieces == [(30, 60, 1000, 30)]


def test_set_overwrites_overlap():
    m = IntervalMap()
    m.set(0, 100, "a")
    m.set(40, 60, "b")
    assert m.covered_bytes(0, 100) == 100
    assert [v for _s, _e, v, _d in m.get(0, 100)] == ["a", "b", "a"]


def test_delete_middle_splits():
    m = IntervalMap()
    m.set(0, 100, 0)
    removed = m.delete(40, 60)
    assert removed == 20
    assert m.gaps(0, 100) == [(40, 60)]
    # Integer values shift so lbn arithmetic stays consistent.
    assert m.get(60, 100) == [(60, 100, 60, 0)]


def test_delete_left_and_right_edges():
    m = IntervalMap()
    m.set(10, 30, 0)
    m.delete(0, 15)
    assert m.items() == [(15, 30, 5)]
    m.delete(25, 40)
    assert m.items() == [(15, 25, 5)]


def test_delete_disjoint_is_noop():
    m = IntervalMap()
    m.set(10, 20, "a")
    assert m.delete(30, 40) == 0
    assert len(m) == 1


def test_gaps_and_coverage():
    m = IntervalMap()
    m.set(10, 20, "a")
    m.set(30, 40, "b")
    assert m.gaps(0, 50) == [(0, 10), (20, 30), (40, 50)]
    assert m.covered_bytes(0, 50) == 20
    assert not m.is_covered(10, 40)
    assert m.is_covered(10, 20)


def test_value_at():
    m = IntervalMap()
    m.set(10, 20, "a")
    assert m.value_at(15) == "a"
    assert m.value_at(25) is None


def test_coalesce_contiguous_lbns():
    def lbn_merge(left, right):
        ls, le, lv = left
        if lv + (le - ls) == right[2]:
            return lv
        return None

    m = IntervalMap(coalesce=lbn_merge)
    m.set(0, 10, 100)
    m.set(10, 20, 110)  # device-contiguous: merges
    assert m.items() == [(0, 20, 100)]
    m.set(20, 30, 500)  # not contiguous: stays separate
    assert len(m) == 2


def test_invalid_interval_rejected():
    m = IntervalMap()
    with pytest.raises(StorageError):
        m.set(10, 10, "x")
    with pytest.raises(StorageError):
        m.set(-1, 5, "x")
    with pytest.raises(StorageError):
        m.get(5, 5)


def test_clear():
    m = IntervalMap()
    m.set(0, 10, "a")
    m.clear()
    assert len(m) == 0
    assert m.total_bytes == 0


# ---------------------------------------------------------------- properties
ops = st.lists(
    st.tuples(st.sampled_from(["set", "delete"]),
              st.integers(0, 200), st.integers(1, 50)),
    max_size=40)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_property_intervals_sorted_disjoint(op_list):
    """After any op sequence, intervals stay sorted and non-overlapping."""
    m = IntervalMap()
    for kind, start, length in op_list:
        if kind == "set":
            m.set(start, start + length, start)
        else:
            m.delete(start, start + length)
        items = m.items()
        for (s1, e1, _), (s2, e2, _) in zip(items, items[1:]):
            assert s1 < e1 <= s2 < e2
        assert m.total_bytes == sum(e - s for s, e, _ in items)


@settings(max_examples=200, deadline=None)
@given(ops, st.integers(0, 250), st.integers(1, 60))
def test_property_gaps_partition_range(op_list, qstart, qlen):
    """get() pieces and gaps() exactly partition any query range."""
    m = IntervalMap()
    for kind, start, length in op_list:
        if kind == "set":
            m.set(start, start + length, 0)
        else:
            m.delete(start, start + length)
    qend = qstart + qlen
    covered = [(s, e) for s, e, _v, _d in m.get(qstart, qend)]
    gaps = m.gaps(qstart, qend)
    segments = sorted(covered + gaps)
    cursor = qstart
    for s, e in segments:
        assert s == cursor
        cursor = e
    assert cursor == qend


@settings(max_examples=150, deadline=None)
@given(ops)
def test_property_mirror_model(op_list):
    """IntervalMap agrees with a naive per-byte dictionary model."""
    m = IntervalMap()
    model = {}
    for i, (kind, start, length) in enumerate(op_list):
        if kind == "set":
            m.set(start, start + length, ("v", i))
            for b in range(start, start + length):
                model[b] = ("v", i)
        else:
            m.delete(start, start + length)
            for b in range(start, start + length):
                model.pop(b, None)
    for b in range(0, 260):
        got = m.value_at(b)
        assert got == model.get(b)
