"""Tests for trace file serialization."""

import pytest

from repro.devices import Op
from repro.errors import WorkloadError
from repro.workloads.tracefile import (dumps_trace, load_trace, loads_trace,
                                       save_trace)
from repro.workloads.traces import TraceRecord, synthesize_trace


def test_roundtrip_string():
    records = [TraceRecord(Op.READ, 0, 4096),
               TraceRecord(Op.WRITE, 65536, 1024)]
    assert loads_trace(dumps_trace(records)) == records


def test_roundtrip_file(tmp_path):
    records = synthesize_trace("CTH", requests=50)
    path = tmp_path / "cth.trace"
    save_trace(records, path)
    assert load_trace(path) == records


def test_comments_and_blank_lines_skipped():
    text = "# header\n\nread,0,4096\n  \nwrite,10,20\n"
    records = loads_trace(text)
    assert len(records) == 2
    assert records[1].op is Op.WRITE


def test_bad_op_rejected():
    with pytest.raises(WorkloadError, match="unknown op"):
        loads_trace("frobnicate,0,4096\n")


def test_bad_field_count_rejected():
    with pytest.raises(WorkloadError, match="expected"):
        loads_trace("read,0\n")


def test_non_integer_rejected():
    with pytest.raises(WorkloadError, match="non-integer"):
        loads_trace("read,zero,4096\n")


def test_invalid_geometry_rejected():
    with pytest.raises(WorkloadError, match="invalid geometry"):
        loads_trace("read,-1,4096\n")
    with pytest.raises(WorkloadError, match="invalid geometry"):
        loads_trace("read,0,0\n")


def test_empty_trace_rejected():
    with pytest.raises(WorkloadError, match="no records"):
        loads_trace("# nothing here\n")


def test_missing_file_rejected(tmp_path):
    with pytest.raises(WorkloadError, match="not found"):
        load_trace(tmp_path / "nope.trace")


def test_loaded_trace_is_replayable(tmp_path):
    from repro.config import ClusterConfig
    from repro.pfs import Cluster
    from repro.units import MiB
    from repro.workloads import TraceReplay, run_workload

    records = synthesize_trace("ALEGRA-2744", requests=20, span=16 * MiB)
    path = tmp_path / "a.trace"
    save_trace(records, path)
    wl = TraceReplay(load_trace(path), span=16 * MiB)
    res = run_workload(Cluster(ClusterConfig(num_servers=2)), wl)
    assert len(res.requests) == 20
