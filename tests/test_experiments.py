"""Shape tests for the per-figure experiments at small scale.

These assert the *qualitative* reproduction targets (who wins, in which
direction) rather than absolute numbers, so they stay robust across
model recalibration.  Heavier experiments use reduced parameter grids.
"""

import pytest

from repro.experiments import EXPERIMENTS, get

SMALL = 1 / 320  # 32 MiB working set


def test_registry_covers_every_paper_artifact():
    needed = {"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5",
              "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
              "fig13"}
    assert needed <= set(EXPERIMENTS)


def test_get_unknown_raises_with_listing():
    with pytest.raises(KeyError, match="fig4"):
        get("nope")


def test_table1_matches_paper_mix():
    res = get("table1")(requests=3000)
    for app, (pu, pr) in __import__(
            "repro.experiments.table1", fromlist=["PAPER_TABLE1"]
    ).PAPER_TABLE1.items():
        assert res.get(app, "unaligned") == pytest.approx(pu, abs=3.0)
        assert res.get(app, "random") == pytest.approx(pr, abs=2.5)


def test_table2_ssd_corners_match():
    res = get("table2")(requests=400)
    assert res.get("ssd/sequential_read", "mib_s") == pytest.approx(160, rel=0.03)
    assert res.get("ssd/random_write", "mib_s") == pytest.approx(30, rel=0.06)
    assert res.get("hdd/sequential_read", "mib_s") == pytest.approx(85, rel=0.03)


def test_fig2a_unaligned_slower_than_aligned():
    res = get("fig2a")(scale=SMALL, sizes_kib=(64, 65), procs=(16,))
    assert res.get(16, "s65") < 0.75 * res.get(16, "s64")


def test_fig2b_offsets_degrade_throughput():
    res = get("fig2b")(scale=SMALL, offsets_kib=(0, 10), procs=(16,))
    assert res.get(16, "off10") < 0.75 * res.get(16, "off0")


def test_fig2cde_fragment_sizes_appear():
    res = get("fig2cde")(scale=SMALL, nprocs=16)
    aligned_big = res.get("c: 64KiB aligned", "frac_big")
    unaligned_big = res.get("d: 65KiB", "frac_big")
    assert aligned_big > 0.5
    assert unaligned_big < aligned_big


def test_fig4_ibridge_beats_stock_for_unaligned():
    from repro.devices import Op
    res = get("fig4")(scale=SMALL, nprocs=16, op=Op.WRITE)
    assert res.get("65KiB/write", "gain") > 20
    assert res.get("+10KiB/write", "gain") > 50
    # Aligned access: iBridge changes nothing.
    assert res.get("+0KiB/write", "gain") == pytest.approx(0.0, abs=2.0)


def test_fig5_ibridge_restores_large_dispatches():
    # Needs enough concurrency for readahead rounding to engage.
    res = get("fig5")(scale=SMALL, nprocs=64)
    assert res.get("fraction >= 128 sectors", "frac_big") > 0.3
    assert res.get("mean sectors", "mean_sectors") > 100


def test_fig6_gains_for_both_ops():
    res = get("fig6")(scale=SMALL, procs=(16,))
    assert res.get("16/read", "gain") > 5
    assert res.get("16/write", "gain") > 25


def test_fig7_gap_grows_and_ibridge_closes_it():
    from repro.devices import Op
    res = get("fig7")(scale=SMALL, nprocs=16, servers=(2, 8), op=Op.WRITE)
    # Throughput rises with server count in every series.
    assert res.get("8/write", "aligned") > res.get("2/write", "aligned")
    assert res.get("8/write", "ibridge") > res.get("2/write", "ibridge")
    # iBridge recovers a meaningful part of the gap at 8 servers.
    assert res.get("8/write", "closed") > 15


def test_fig8_ior_gains():
    from repro.devices import Op
    res = get("fig8")(scale=SMALL, nprocs=16, sizes_kib=(64, 65),
                      op=Op.WRITE)
    assert res.get("65KiB/write", "gain") > 20
    assert abs(res.get("64KiB/write", "gain")) < 5


def test_fig9_btio_execution_time_reduced():
    res = get("fig9")(scale=SMALL, procs=(9, 16), steps=4)
    for np_ in (9, 16):
        assert res.get(np_, "reduction") > 25


def test_fig10_ibridge_beats_ssd_only():
    res = get("fig10")(scale=SMALL, procs=(16,), steps=4)
    # Execution times: disk-only is far worse; iBridge at least matches
    # the all-SSD system (at small scale the margin is compute-masked).
    assert res.get(16, "ssd") < 0.7 * res.get(16, "disk")
    assert res.get(16, "ibridge") <= res.get(16, "ssd") * 1.02
    # The mechanism: the log removes the SSD's per-command setup cost
    # that in-place random writes pay (seq vs random SSD write gap).
    # (iBridge's residual setups come from writeback *reads* of the log,
    # not from its writes, so the comparison is conservative.)
    assert res.get(16, "ib_setup") < 0.5 * res.get(16, "ssd_setup")


def test_fig11_io_time_grows_as_capacity_shrinks():
    res = get("fig11")(scale=SMALL, nprocs=16, steps=4,
                       fractions=(1.2, 0.3, 0.0))
    io_full = res.get("1.20", "io_time")
    io_mid = res.get("0.30", "io_time")
    io_none = res.get("0.00", "io_time")
    assert io_full < io_mid < io_none
    assert io_none / io_full > 3


def test_table3_service_times_reduced():
    res = get("table3")(scale=SMALL, requests=200)
    for app in ("ALEGRA-2744", "CTH", "S3D"):
        assert res.get(app, "reduction") > 0
    # S3D's requests are much larger -> much larger service times.
    assert res.get("S3D", "stock_ms") > 1.5 * res.get("CTH", "stock_ms")


def test_fig12_dynamic_beats_stock():
    res = get("fig12")(scale=SMALL, nprocs=16, steps=4)
    assert res.get("dynamic", "aggregate") > res.get("stock", "aggregate")
    assert res.get("dynamic", "aggregate") >= 0.9 * max(
        res.get("static 1:1", "aggregate"), res.get("static 1:2", "aggregate"))


def test_fig13_threshold_monotonicity():
    res = get("fig13")(scale=SMALL, nprocs=16, thresholds_kib=(10, 20, 40))
    tps = [res.get(f"{t}KiB", "throughput") for t in (10, 20, 40)]
    usage = [res.get(f"{t}KiB", "ssd_pct") for t in (10, 20, 40)]
    assert tps == sorted(tps)
    assert usage == sorted(usage)
    assert usage[-1] > 3 * usage[0]


def test_fig3_fragments_reduce_throughput():
    res = get("fig3")(scale=SMALL, ks=(2, 6), nprocs=8)
    assert res.get(2, "loss_nobarrier") > 0
    assert res.get(6, "loss_barrier") > 0


def test_collective_extension_shapes():
    res = get("collective")(scale=SMALL, nprocs=16)
    stock = res.get("stock, independent", "throughput")
    assert res.get("stock, collective", "throughput") > stock
    assert res.get("iBridge, independent", "throughput") > stock
    assert res.get("iBridge, collective", "ssd_pct") < 2.0


def test_ablation_policies_and_merging():
    res = get("ablation")(scale=SMALL, nprocs=16)
    # The literal policy admits at most as much as the normalized one
    # (it relies on noise to go positive; see the experiment's notes).
    assert (res.get("return policy: literal Eq.1", "ssd_pct")
            <= res.get("iBridge (default)", "ssd_pct") + 0.5)
    # Removing cross-process merging devastates the stock system.
    assert (res.get("stock, per-stream merge only", "throughput")
            < 0.7 * res.get("stock", "throughput"))
    # Every iBridge variant beats stock on warm unaligned reads.
    assert (res.get("iBridge (default)", "throughput")
            > res.get("stock", "throughput"))


def test_gc_extension_ledger_and_determinism():
    """The GC study engages the FTL at small scale (erases happen, the
    WA ledger balances under the strict auditor) and a repeated cell is
    bit-identical — the fixed-seed replay contract."""
    res = get("gc")(scale=SMALL, nprocs=8)
    assert [r[0] for r in res.rows] == ["ftl off", "unsync", "sync",
                                       "stagger"]
    assert res.get("ftl off", "wa") == 1.0
    assert res.get("ftl off", "gc_stall") == 0.0
    for policy in ("unsync", "sync", "stagger"):
        assert res.get(policy, "erases") > 0
        assert res.get(policy, "wa") >= 1.0
        assert res.get(policy, "throughput") > 0
    from repro.experiments.gc import _cell
    assert _cell(SMALL, 8, "unsync") == _cell(SMALL, 8, "unsync")
