"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, PriorityStore, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    env.run()
    assert r1.processed and r2.processed
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_wakes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, hold):
        req = res.request()
        yield req
        order.append(("got", name, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, "a", 2.0))
    env.process(user(env, "b", 1.0))
    env.run()
    assert order == [("got", "a", 0.0), ("got", "b", 2.0)]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(user(env))
    env.run()
    assert res.count == 0


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiting = res.request()
    res.release(waiting)  # cancel from wait queue
    assert res.queue_length == 0
    res.release(held)
    env.run()
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_release_unknown_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    other = Resource(env, capacity=1).request()
    with pytest.raises(SimulationError):
        res.release(other)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(env):
        for i in range(3):
            yield env.timeout(1.0)
            store.put(i)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_ready_item_immediately():
    env = Environment()
    store = Store(env)
    store.put("x")
    ev = store.get()
    assert ev.triggered
    env.run()
    assert ev.value == "x"


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_priority_store_pops_minimum():
    env = Environment()
    ps = PriorityStore(env)
    for item in [(3, "c"), (1, "a"), (2, "b")]:
        ps.put(item)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield ps.get()
            got.append(item[1])

    env.process(consumer(env))
    env.run()
    assert got == ["a", "b", "c"]


def test_priority_store_waiter_gets_minimum_of_future_puts():
    env = Environment()
    ps = PriorityStore(env)
    got = []

    def consumer(env):
        item = yield ps.get()
        got.append(item)

    env.process(consumer(env))
    env.run()
    ps.put((5, "later"))
    env.run()
    assert got == [(5, "later")]
