"""Unit tests for the blktrace-style dispatch tracer."""

import pytest

from repro.block import BlockTracer
from repro.devices import Op
from repro.units import KiB, SECTOR


def fill(tracer):
    tracer.record(0.0, Op.READ, 0, 64 * KiB, merged=1)
    tracer.record(0.1, Op.READ, 64 * KiB, 64 * KiB, merged=2)
    tracer.record(0.2, Op.READ, 0, 4 * KiB, merged=1)
    tracer.record(0.3, Op.WRITE, 0, 8 * KiB, merged=1)


def test_histogram_in_sectors():
    tracer = BlockTracer()
    fill(tracer)
    hist = tracer.size_histogram(Op.READ)
    assert hist == {8: 1, 128: 2}


def test_distribution_sums_to_one():
    tracer = BlockTracer()
    fill(tracer)
    dist = tracer.size_distribution()
    assert sum(dist.values()) == pytest.approx(1.0)


def test_top_sizes_ordering():
    tracer = BlockTracer()
    fill(tracer)
    top = tracer.top_sizes(n=1, op=Op.READ)
    assert top[0][0] == 128


def test_fraction_at_least():
    tracer = BlockTracer()
    fill(tracer)
    assert tracer.fraction_at_least(128, Op.READ) == pytest.approx(2 / 3)
    assert tracer.fraction_at_least(1000) == 0.0


def test_mean_size_and_merged_fraction():
    tracer = BlockTracer()
    fill(tracer)
    assert tracer.mean_size_sectors(Op.WRITE) == 16
    assert tracer.merged_fraction() == pytest.approx(0.25)


def test_disabled_tracer_records_nothing():
    tracer = BlockTracer(enabled=False)
    fill(tracer)
    assert len(tracer) == 0
    assert tracer.size_distribution() == {}
    assert tracer.mean_size_sectors() == 0.0
    assert tracer.merged_fraction() == 0.0


def test_clear():
    tracer = BlockTracer()
    fill(tracer)
    tracer.clear()
    assert len(tracer) == 0


def test_record_fields():
    tracer = BlockTracer()
    tracer.record(1.5, Op.WRITE, 512, 1000, merged=3)
    (rec,) = tracer.records
    assert rec.time == 1.5
    assert rec.sectors == -(-1000 // SECTOR)
    assert rec.merged == 3
