"""Focused tests for the metadata server's T-value exchange."""

import pytest

from repro.config import ClusterConfig
from repro.pfs import Cluster
from repro.units import KiB, MiB


def busy_cluster(report_period=0.05):
    cfg = ClusterConfig(num_servers=3, client_jitter=0.0).with_ibridge(
        ssd_partition=8 * MiB, report_period=report_period)
    cluster = Cluster(cfg)
    return cluster


def generate_traffic(cluster, seconds=0.5):
    handle = cluster.create_file(8 * MiB)
    client = cluster.client(0)

    def traffic(env):
        i = 0
        while env.now < seconds:
            yield client.read(handle, (i % 64) * 64 * KiB, 64 * KiB, rank=0)
            i += 1

    proc = cluster.env.process(traffic(cluster.env))
    cluster.env.run(until=proc)


def test_mds_collects_current_t_values():
    cluster = busy_cluster()
    generate_traffic(cluster)
    for server in cluster.servers:
        assert cluster.mds.current_t(server.id) is not None


def test_mds_unknown_server_is_none():
    cluster = busy_cluster()
    assert cluster.mds.current_t(99) is None


def test_broadcast_periodicity():
    cluster = busy_cluster(report_period=0.1)
    generate_traffic(cluster, seconds=0.65)
    # ~6 periods elapsed: the broadcast count should be in that range.
    assert 3 <= cluster.mds.broadcasts <= 8


def test_no_exchange_daemon_without_ibridge():
    cluster = Cluster(ClusterConfig(num_servers=2, client_jitter=0.0))
    handle = cluster.create_file(1 * MiB)
    client = cluster.client(0)
    done = client.read(handle, 0, 64 * KiB, rank=0)
    cluster.env.run(until=done)
    cluster.env.run(until=cluster.env.now + 2.0)
    assert cluster.mds.broadcasts == 0


def test_broadcast_values_track_server_t():
    cluster = busy_cluster(report_period=0.05)
    generate_traffic(cluster)
    server = cluster.servers[0]
    # The MDS's stored report should match a recently reported T value
    # to within EWMA drift since the last period.
    reported = cluster.mds.current_t(0)
    assert reported == pytest.approx(server.t_value, rel=2.0)
