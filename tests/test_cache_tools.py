"""Result-cache maintenance: size/age parsing, stats, LRU prune, CLI."""

import os
import time

import pytest

from repro.experiments.cache_tools import (cache_stats, parse_age,
                                           parse_size, prune_cache)
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import ResultCache


# ---------------------------------------------------------------- parsing
@pytest.mark.parametrize("text,expected", [
    ("1024", 1024),
    ("4k", 4 * 1024),
    ("500M", 500 * 1024 ** 2),
    ("2G", 2 * 1024 ** 3),
    ("1.5g", int(1.5 * 1024 ** 3)),
    ("10KB", 10 * 1024),
])
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text,expected", [
    ("90", 90.0),
    ("45s", 45.0),
    ("5m", 300.0),
    ("12h", 12 * 3600.0),
    ("7d", 7 * 86400.0),
    ("2w", 14 * 86400.0),
])
def test_parse_age(text, expected):
    assert parse_age(text) == expected


@pytest.mark.parametrize("bad", ["", "lots", "5x", "-3M"])
def test_parse_rejections(bad):
    with pytest.raises(ValueError):
        parse_size(bad)
    with pytest.raises(ValueError):
        parse_age(bad)


# ------------------------------------------------------------------ setup
def _fill(tmp_path, ages):
    """A cache with one entry per (name, age-seconds); returns its dir."""
    directory = str(tmp_path / "cache")
    cache = ResultCache(directory)
    now = time.time()
    for name, age in ages.items():
        cache.put(name, {"payload": name * 50})
    # pin mtimes so LRU order is deterministic
    for name, age in ages.items():
        path = os.path.join(directory, name[:2], f"{name}.pkl")
        os.utime(path, (now - age, now - age))
    return directory, now


def test_stats_counts_entries(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 10.0, "bb22": 100.0})
    stats = cache_stats(directory, clock=lambda: now)
    assert stats.files == 2
    assert stats.bytes > 0
    assert stats.oldest_age == pytest.approx(100.0)
    assert stats.newest_age == pytest.approx(10.0)


def test_stats_on_missing_dir_is_empty(tmp_path):
    stats = cache_stats(str(tmp_path / "nope"))
    assert stats.files == 0 and stats.bytes == 0


def test_prune_by_age(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 10.0, "bb22": 500.0,
                                      "cc33": 900.0})
    report = prune_cache(directory, max_age=600.0, clock=lambda: now)
    assert report.removed_files == 1
    assert report.kept_files == 2
    assert not os.path.exists(os.path.join(directory, "cc", "cc33.pkl"))
    assert os.path.exists(os.path.join(directory, "aa", "aa11.pkl"))


def test_prune_by_bytes_evicts_lru_first(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 10.0, "bb22": 500.0,
                                      "cc33": 900.0})
    entry_bytes = os.path.getsize(
        os.path.join(directory, "aa", "aa11.pkl"))
    # room for two entries: the oldest-touched one (cc33) must go
    report = prune_cache(directory, max_bytes=2 * entry_bytes + 1,
                         clock=lambda: now)
    assert report.removed_files == 1
    assert [os.path.basename(p) for p in report.removed] == ["cc33.pkl"]
    assert os.path.exists(os.path.join(directory, "aa", "aa11.pkl"))
    assert os.path.exists(os.path.join(directory, "bb", "bb22.pkl"))


def test_prune_dry_run_removes_nothing(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 900.0})
    report = prune_cache(directory, max_age=100.0, dry_run=True,
                         clock=lambda: now)
    assert report.removed_files == 1
    assert os.path.exists(os.path.join(directory, "aa", "aa11.pkl"))


def test_prune_drops_empty_shards_and_survivors_still_hit(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 900.0, "bb22": 10.0})
    prune_cache(directory, max_age=100.0, clock=lambda: now)
    assert not os.path.isdir(os.path.join(directory, "aa"))
    hit, value = ResultCache(directory).get("bb22")
    assert hit and value == {"payload": "bb22" * 50}


def test_prune_requires_a_limit(tmp_path):
    with pytest.raises(ValueError, match="max-bytes"):
        prune_cache(str(tmp_path))


def test_get_touches_mtime_for_lru(tmp_path):
    directory, now = _fill(tmp_path, {"aa11": 900.0})
    path = os.path.join(directory, "aa", "aa11.pkl")
    before = os.path.getmtime(path)
    hit, _ = ResultCache(directory).get("aa11")
    assert hit
    assert os.path.getmtime(path) > before


# -------------------------------------------------------------------- CLI
def test_cache_cli_stats_and_prune(tmp_path, capsys):
    directory, _now = _fill(tmp_path, {"aa11": 10.0, "bb22": 900.0})
    assert cli_main(["cache", "--cache-dir", directory, "stats"]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out

    assert cli_main(["cache", "--cache-dir", directory, "prune",
                     "--max-age", "100s"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 entry" in out
    assert cache_stats(directory).files == 1


def test_cache_cli_prune_needs_a_limit(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["cache", "--cache-dir", str(tmp_path), "prune"])
