"""Tests for experiment-result export."""

import csv
import io
import json

import pytest

from repro.analysis.export import result_to_csv, result_to_json, save_result
from repro.experiments.common import ExperimentResult


def make_result():
    res = ExperimentResult(name="x", title="Title", headers=["k", "v"])
    res.add_row(["a", 1.5], metric=1.5)
    res.add_row(["b", 2.5], metric=2.5)
    res.notes.append("a note")
    return res


def test_csv_roundtrip():
    text = result_to_csv(make_result())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["k", "v"]
    assert rows[1] == ["a", "1.5"]
    assert len(rows) == 3


def test_json_contains_everything():
    payload = json.loads(result_to_json(make_result()))
    assert payload["name"] == "x"
    assert payload["headers"] == ["k", "v"]
    assert payload["rows"] == [["a", 1.5], ["b", 2.5]]
    assert payload["values"]["a/metric"] == 1.5
    assert payload["notes"] == ["a note"]


def test_save_by_suffix(tmp_path):
    res = make_result()
    save_result(res, tmp_path / "out.csv")
    save_result(res, tmp_path / "out.json")
    assert (tmp_path / "out.csv").read_text().startswith("k,v")
    assert json.loads((tmp_path / "out.json").read_text())["name"] == "x"
    with pytest.raises(ValueError):
        save_result(res, tmp_path / "out.xlsx")


def test_export_real_experiment(tmp_path):
    from repro.experiments import get
    res = get("table2")(requests=200)
    save_result(res, tmp_path / "table2.json")
    payload = json.loads((tmp_path / "table2.json").read_text())
    assert any("ssd" in "".join(map(str, row)) for row in payload["rows"])
