"""Continuous telemetry: the sim-time series recorder and run reports.

Covers the `repro.obs.timeline` recorder (sampling, rate differencing,
ring-buffer retention, marks), the JSONL/CSV exports and their
validators (`repro.obs.validate --timeline/--metrics`), the Perfetto
counter-track round trip, the summary/sparkline helpers, the run-report
CLI (`python -m repro.obs.report`), and the end-to-end wiring through a
real cluster run with `ObsConfig.timeline_dt` on.
"""

import json
import math

import pytest

from repro.config import ClusterConfig
from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import (CUMULATIVE_SERIES, KNOWN_SERIES,
                                TimelineRecorder, load_timeline_jsonl,
                                series_key, sparkline, summarize_series)
from repro.obs.validate import (validate_metrics_rows,
                                validate_timeline_rows)
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


def _registry():
    reg = MetricsRegistry()
    box = {"depth": 0.0}
    reg.gauge("queue_depth", lambda: box["depth"], server=0, dev="hdd0")
    counter = reg.counter("ibridge_admissions", server=0)
    return reg, box, counter


# ------------------------------------------------------------- recorder
def test_sampling_records_gauges_and_defers_rates():
    reg, box, counter = _registry()
    rec = TimelineRecorder(reg, dt=0.5)
    box["depth"] = 3.0
    counter.inc(10)
    rec.sample(0.0)
    # First tick: the gauge row only — no previous sample to rate over.
    assert [r["series"] for r in rec.rows] == ["queue_depth"]
    assert rec.rows[0]["value"] == 3.0
    box["depth"] = 7.0
    counter.inc(5)
    rec.sample(0.5)
    series = [r["series"] for r in rec.rows]
    assert series == ["queue_depth", "queue_depth",
                      "ibridge_admissions_rate"]
    rate = rec.rows[-1]
    assert rate["value"] == pytest.approx(5 / 0.5)
    assert rate["labels"] == {"server": 0}


def test_cumulative_gauges_are_differenced():
    reg = MetricsRegistry()
    box = {"stall": 0.0}
    name = "ssd_gc_stall_seconds"
    assert name in CUMULATIVE_SERIES
    reg.gauge(name, lambda: box["stall"], dev="ssd0")
    rec = TimelineRecorder(reg, dt=1.0)
    rec.sample(0.0)
    assert not rec.rows  # cumulative: no raw row, no first-tick rate
    box["stall"] = 2.5
    rec.sample(1.0)
    (row,) = rec.rows
    assert row["series"] == f"{name}_rate"
    assert row["value"] == pytest.approx(2.5)


def test_ring_buffer_bounds_retention_and_counts_evictions():
    reg, box, _ = _registry()
    rec = TimelineRecorder(reg, dt=1.0, limit=4)
    for i in range(10):
        box["depth"] = float(i)
        rec.sample(float(i))
    assert len(rec.rows) == 4
    # 10 gauge rows + 9 counter-rate rows (no rate on the first tick),
    # 4 retained: 15 evicted.
    assert rec.evicted == 15
    # Oldest evicted: the survivors are the most recent samples.
    assert [r["t"] for r in rec.rows] == [8.0, 8.0, 9.0, 9.0]
    rec.clear()
    assert not rec.rows and rec.evicted == 0 and rec.ticks == 0


def test_marks_merge_time_ordered():
    reg, _, _ = _registry()
    rec = TimelineRecorder(reg, dt=1.0)
    rec.sample(0.0)
    rec.mark("gc_storm_begin", 0.25, dev="ssd0")
    rec.sample(1.0)
    rec.mark("gc_storm_end", 0.75, dev="ssd0")
    merged = rec.merged_rows()
    assert [r["t"] for r in merged] == sorted(r["t"] for r in merged)
    kinds = [(r.get("type"), r["t"]) for r in merged
             if r.get("type") == "mark"]
    assert kinds == [("mark", 0.25), ("mark", 0.75)]

def test_invalid_dt_rejected():
    with pytest.raises(ValueError):
        TimelineRecorder(MetricsRegistry(), dt=0.0)


# ------------------------------------------------------------- exports
def _recorded(tmp_path, ticks=4):
    reg, box, counter = _registry()
    rec = TimelineRecorder(reg, dt=0.5)
    for i in range(ticks):
        box["depth"] = float(i % 3)
        counter.inc(i)
        rec.sample(i * 0.5)
    rec.mark("fault_begin", 0.6, kind="fail_slow")
    rec.mark("fault_end", 1.1, kind="fail_slow")
    return rec


def test_jsonl_export_round_trips_and_validates(tmp_path):
    rec = _recorded(tmp_path)
    path = tmp_path / "timeline.jsonl"
    n = rec.export_jsonl(str(path))
    rows = load_timeline_jsonl(str(path))
    assert rows[0]["type"] == "timeline_begin"
    assert rows[0]["dt"] == 0.5 and rows[0]["rows"] == n
    assert len(rows) == n + 1
    assert validate_timeline_rows(rows) == []


def test_multi_segment_append_restarts_the_clock(tmp_path):
    # Two clusters appending to one file: the second segment's sim
    # clock restarts at zero, which is legal *across* a segment header
    # and illegal within one.
    path = tmp_path / "timeline.jsonl"
    _recorded(tmp_path).export_jsonl(str(path))
    _recorded(tmp_path).export_jsonl(str(path))
    rows = load_timeline_jsonl(str(path))
    assert sum(r.get("type") == "timeline_begin" for r in rows) == 2
    assert validate_timeline_rows(rows) == []
    # Strip the second header: the restart now happens mid-segment.
    broken = [r for i, r in enumerate(rows)
              if i == 0 or r.get("type") != "timeline_begin"]
    problems = validate_timeline_rows(broken)
    assert any("backwards" in p for p in problems)


def test_timeline_validator_flags_bad_rows():
    header = {"type": "timeline_begin", "dt": 0.5, "rows": 2}
    good = {"t": 0.0, "series": "queue_depth", "labels": {}, "value": 1.0}
    assert validate_timeline_rows([good]) \
        == ["row 0: missing timeline_begin segment header"]
    problems = validate_timeline_rows([
        header,
        {"t": 0.0, "series": "not_a_series", "labels": {}, "value": 1.0},
        {"t": 0.5, "series": "queue_depth", "labels": {},
         "value": float("nan")},
        {"t": 0.5, "type": "mark", "name": "not_a_mark", "attrs": {}},
        {"type": "timeline_begin", "dt": 0.0, "rows": 0},
    ])
    assert len(problems) == 4
    assert any("unknown series" in p for p in problems)
    assert any("bad value" in p for p in problems)
    assert any("unknown mark" in p for p in problems)
    assert any("bad dt" in p for p in problems)


def test_metrics_validator_accepts_restart_flags_regression():
    good = [
        {"t": 0.0, "name": "queue_depth", "labels": {}, "value": 1.0},
        {"t": 0.5, "name": "queue_depth", "labels": {}, "value": 2.0},
        # next cluster's export appended: rewind to the file start.
        {"t": 0.0, "name": "queue_depth", "labels": {}, "value": 0.0},
        {"type": "histogram", "name": "ibridge_benefit",
         "count": 3, "sum": 0.5},
    ]
    assert validate_metrics_rows(good) == []
    problems = validate_metrics_rows([
        {"t": 0.0, "name": "queue_depth", "labels": {}, "value": 1.0},
        {"t": 2.0, "name": "mystery_metric", "labels": {}, "value": 1.0},
        {"t": 1.0, "name": "queue_depth", "labels": {},
         "value": float("nan")},
    ])
    assert any("unknown metric" in p for p in problems)
    assert any("bad value" in p for p in problems)
    assert any("backwards" in p for p in problems)


def test_csv_export_writes_samples_and_marks(tmp_path):
    rec = _recorded(tmp_path)
    path = tmp_path / "timeline.csv"
    n = rec.export_csv(str(path), mode="w")
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    assert lines[0] == "t,series,labels,value"
    assert len(lines) == n + 1
    assert any("mark:fault_begin" in line for line in lines)


def test_chrome_counter_tracks_round_trip(tmp_path):
    rec = _recorded(tmp_path)
    path = tmp_path / "trace.chrome.json"
    write_chrome_trace(str(path), spans=[], counters=rec.merged_rows())
    assert validate_chrome_trace(str(path)) == []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    tracks = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
    sample_rows = [r for r in rec.merged_rows() if "series" in r]
    assert len(tracks) == len(sample_rows)
    for ev, row in zip(tracks, sample_rows):
        assert ev["name"] == series_key(row["series"], row["labels"])
        assert ev["ts"] == pytest.approx(row["t"] * 1e6)
        assert ev["args"]["value"] == pytest.approx(row["value"])


# ------------------------------------------------------------- summaries
def test_summarize_series_stats():
    rows = [{"t": float(i), "series": "queue_depth",
             "labels": {"server": 1}, "value": float(v)}
            for i, v in enumerate([1, 5, 3, 2])]
    summary = summarize_series(rows)
    stats = summary["queue_depth{server=1}"]
    assert stats["min"] == 1.0 and stats["max"] == 5.0
    assert stats["mean"] == pytest.approx(11 / 4)
    assert stats["last"] == 2.0 and stats["n"] == 4.0


def test_series_key_is_label_sorted():
    assert series_key("queue_depth", {}) == "queue_depth"
    assert series_key("queue_depth", {"server": 1, "dev": "hdd0"}) \
        == "queue_depth{dev=hdd0,server=1}"


def test_sparkline_shape():
    assert sparkline([]) == ""
    assert set(sparkline([2.0] * 5)) == {"▁"}
    line = sparkline([0, 1, 2, 3], width=4)
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(1000)), width=32)) == 32


# ----------------------------------------------------------- run report
def test_report_cli_renders_timeline_and_marks(tmp_path, capsys):
    from repro.obs import report

    rec = _recorded(tmp_path)
    path = tmp_path / "timeline.jsonl"
    rec.export_jsonl(str(path))
    assert report.main(["--timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "queue_depth" in out and "fault_begin" in out

    md = tmp_path / "report.md"
    assert report.main(["--timeline", str(path), "--format", "markdown",
                        "--out", str(md)]) == 0
    text = md.read_text(encoding="utf-8")
    assert text.startswith("#") and "```" in text


def test_report_cli_requires_an_input():
    from repro.obs import report
    with pytest.raises(SystemExit) as exc:
        report.main([])
    assert exc.value.code == 2


def test_report_cli_renders_shard_profile(tmp_path, capsys):
    from repro.obs import report
    from repro.sim.parallel import run_sharded_workload

    cfg = ClusterConfig(num_servers=4, client_jitter=0.0, shards=2,
                        shard_mode="inline")
    result = run_sharded_workload(
        cfg, MpiIoTest(nprocs=4, request_size=65 * KiB,
                       file_size=1 * MiB))
    path = tmp_path / "profile.json"
    path.write_text(json.dumps(result.extra["shard_profile"]),
                    encoding="utf-8")
    assert report.main(["--shard-profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "parallel efficiency" in out


# ------------------------------------------------------------ end to end
def _traced_run(tmp_path, **obs_kwargs):
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0) \
        .with_obs(timeline_dt=0.05, **obs_kwargs)
    from repro.pfs.cluster import Cluster
    cluster = Cluster(cfg)
    result = run_workload(cluster, MpiIoTest(
        nprocs=4, request_size=65 * KiB, file_size=1 * MiB))
    return cluster, result


def test_cluster_run_records_timeline_and_flat_extras(tmp_path):
    cluster, result = _traced_run(tmp_path)
    timeline = cluster.obs.timeline
    assert timeline is not None and timeline.ticks > 1
    assert result.extra["timeline_rows"] == float(len(timeline.rows))
    last = {k: v for k, v in result.extra.items()
            if k.startswith("timeline_last[")}
    assert last, "no flat timeline_last extras on the result"
    assert all(isinstance(v, float) and not math.isnan(v)
               for v in last.values())
    # Every sampled series is a known name (the validator's whitelist
    # and the wiring can never drift apart unnoticed).
    assert {r["series"] for r in timeline.rows} <= KNOWN_SERIES
    summary = cluster.obs.timeline_summary()
    assert set(last) == {f"timeline_last[{k}]" for k in summary}


def test_finish_run_exports_validating_timeline(tmp_path):
    path = tmp_path / "timeline.jsonl"
    cluster, _ = _traced_run(tmp_path, timeline_path=str(path))
    cluster.obs.finish_run()
    rows = load_timeline_jsonl(str(path))
    assert validate_timeline_rows(rows) == []
    assert sum("series" in r for r in rows) > 0


def test_timeline_requires_metrics():
    from repro.config import ObsConfig
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        ObsConfig(enabled=True, metrics=False, timeline_dt=0.05).validate()
