"""Tier-1 harness defaults: every simulated system runs audited.

Each :class:`~repro.pfs.cluster.Cluster` and standalone
:class:`~repro.pfs.server.DataServer` built by a test gets the
invariant auditor + livelock watchdog (:mod:`repro.audit`) in strict
mode, so a byte-conservation or coherence regression fails the suite at
the violating event with a stack trace into the buggy code path — not
at some downstream throughput assertion.  Tests that configure auditing
explicitly (``AuditConfig``/``with_audit``) keep their own settings.
"""

import pytest

import repro.pfs.cluster as _cluster_mod
import repro.pfs.server as _server_mod
from repro.config import ClusterConfig
from repro.experiments import common as _exp_common


def _audited(config):
    if config.audit.enabled:
        return config
    return config.with_audit()


_cluster_init = _cluster_mod.Cluster.__init__
_server_init = _server_mod.DataServer.__init__


def _audited_cluster_init(self, config=None, **kwargs):
    _cluster_init(self, _audited(config or ClusterConfig()), **kwargs)


def _audited_server_init(self, env, server_id, config, *args, **kwargs):
    _server_init(self, env, server_id, _audited(config), *args, **kwargs)


_cluster_mod.Cluster.__init__ = _audited_cluster_init
_server_mod.DataServer.__init__ = _audited_server_init


@pytest.fixture(autouse=True)
def _no_experiment_audit_override():
    """Keep the experiments' process-wide audit/obs hooks test-local."""
    yield
    _exp_common.set_default_audit(None)
    _exp_common.set_default_obs(None)
