"""Server-level path tests not covered elsewhere: SSD-primary mode with
iBridge-shaped traffic, io_depth interactions, stock read/write paths."""

import pytest

from repro.config import ClusterConfig
from repro.devices import HardDisk, Op, profile_device
from repro.errors import StorageError
from repro.pfs.messages import SubRequest
from repro.pfs.server import DataServer
from repro.sim import Environment
from repro.units import KiB, MiB


def make_server(primary="hdd", **cfg_kw):
    env = Environment()
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                        primary_store=primary, **cfg_kw)
    server = DataServer(env, 0, cfg, profile_device(HardDisk(cfg.hdd)))
    return env, server


def sub(op=Op.READ, offset=0, size=64 * KiB, handle=1, rank=0):
    return SubRequest(parent_id=1, op=op, handle=handle, server=0,
                      local_offset=offset, nbytes=size, rank=rank)


def serve(env, server, s):
    done = server.submit(s)
    env.run(until=done)


def test_ssd_primary_serves_from_ssd():
    env, server = make_server(primary="ssd")
    server.ssd_store.preallocate(1, 1 * MiB)
    serve(env, server, sub(op=Op.READ))
    assert server.ssd.stats.reads == 1
    assert server.hdd.stats.reads == 0


def test_ssd_primary_write_allocates_lazily():
    env, server = make_server(primary="ssd")
    serve(env, server, sub(op=Op.WRITE, size=4 * KiB))
    assert server.ssd.stats.writes == 1
    assert server.ssd_store.file_size(1) == 4 * KiB


def test_hdd_primary_read_of_unwritten_data_fails_loudly():
    env, server = make_server()
    done = server.submit(sub(op=Op.READ))
    with pytest.raises(StorageError):
        env.run(until=done)


def test_job_counters():
    env, server = make_server()
    serve(env, server, sub(op=Op.WRITE, size=8 * KiB))
    serve(env, server, sub(op=Op.READ, size=8 * KiB))
    assert server.stats.jobs == 2
    assert server.stats.bytes_written == 8 * KiB
    assert server.stats.bytes_read == 8 * KiB


def test_multi_range_read_after_fragmented_allocation():
    """A read spanning device-discontiguous extents issues several I/Os."""
    env, server = make_server()
    # Interleave two handles so handle 1's extents are split.
    serve(env, server, sub(op=Op.WRITE, handle=1, offset=0, size=4 * KiB))
    serve(env, server, sub(op=Op.WRITE, handle=2, offset=0, size=4 * KiB))
    serve(env, server, sub(op=Op.WRITE, handle=1, offset=4 * KiB,
                           size=4 * KiB))
    reads_before = server.hdd.stats.reads
    serve(env, server, sub(op=Op.READ, handle=1, offset=0, size=8 * KiB))
    assert server.hdd.stats.reads - reads_before == 2


def test_drain_idempotent():
    env, server = make_server()
    for _ in range(2):
        proc = env.process(server.drain(), name="drain")
        env.run(until=proc)
