"""End-to-end acceptance for the experiment service (ISSUE.md, PR 7).

One scenario, three guarantees:

1. a matrix of >= 8 cells over 2 concurrent workers produces results
   bit-identical (same pickled bytes) to a serial ``run_cells`` of the
   same cells;
2. resubmitting the matrix performs **zero** simulation steps — every
   job is satisfied from the store/cache;
3. the service-warmed ``.ibridge-cache`` is the same cache a plain
   ``run_cells`` reads (shared-key contract).
"""

import threading

from repro.experiments.runner import cell, encode_result, run_cells
from repro.svc import HttpQueue, JobStore, ServiceClient, Worker, make_server

#: Every real execution (cache miss) lands here; the zero-steps
#: assertions count it.
_EXECUTIONS = []


def _e2e_cell(a, b=1):
    _EXECUTIONS.append((a, b))
    return {"sum": a + b, "prod": a * b, "trace": [a, b, a + b]}


FN = f"{__name__}:_e2e_cell"
MATRIX = [{"a": a, "b": b} for a in range(1, 4) for b in range(3)]  # 9 cells


def test_service_matches_serial_run_cells_and_dedups(tmp_path):
    assert len(MATRIX) >= 8
    cache_dir = str(tmp_path / "cache")

    # --- the reference: serial, uncached, in-process ------------------
    serial = run_cells([cell(FN, **kw) for kw in MATRIX],
                       jobs=1, cache=False)
    assert serial.executed == len(MATRIX)

    # --- the service: 2 workers over HTTP -----------------------------
    store = JobStore(str(tmp_path / "svc.db"))
    httpd = make_server(store, port=0)
    server_thread = threading.Thread(target=httpd.serve_forever,
                                     daemon=True)
    server_thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    client = ServiceClient(base)
    try:
        jobs = client.submit_cells(
            [{"fn": FN, "kwargs": kw} for kw in MATRIX])
        assert len(jobs) == len(MATRIX)

        workers = [Worker(HttpQueue(base), cache_dir=cache_dir,
                          lease=10.0, poll=0.05) for _ in range(2)]
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in workers]
        for t in threads:
            t.start()
        final = client.wait([j["id"] for j in jobs], timeout=120.0)
        for w in workers:
            w.stop()
        for t in threads:
            t.join(timeout=30)

        assert [j["state"] for j in final] == ["done"] * len(MATRIX)
        # both workers actually participated
        assert sum(w.jobs_done for w in workers) == len(MATRIX)

        # guarantee 1: bit-identical to the serial reference
        for job, expected in zip(final, serial.results):
            got = client.result(job["key"])
            assert encode_result(got) == encode_result(expected)

        # guarantee 2: resubmitting performs zero simulation steps
        executed_before = len(_EXECUTIONS)
        again = client.submit_cells(
            [{"fn": FN, "kwargs": kw} for kw in MATRIX])
        assert all(j["state"] == "done" for j in again)
        assert all(j["dedup"] for j in again)
        assert all(j["cached"] for j in again)
        assert len(_EXECUTIONS) == executed_before
        for job, expected in zip(again, serial.results):
            assert encode_result(client.result(job["key"])) \
                == encode_result(expected)
    finally:
        httpd.shutdown()
        server_thread.join(timeout=10)

    # guarantee 3: the fleet warmed the same cache run_cells reads
    executed_before = len(_EXECUTIONS)
    warm = run_cells([cell(FN, **kw) for kw in MATRIX],
                     jobs=1, cache=True, cache_dir=cache_dir)
    assert warm.executed == 0
    assert warm.cached == len(MATRIX)
    assert len(_EXECUTIONS) == executed_before
    for got, expected in zip(warm.results, serial.results):
        assert encode_result(got) == encode_result(expected)


def test_campaign_job_runs_through_the_fleet(tmp_path):
    """A tiny chaos campaign rides the same queue as cells."""
    store = JobStore(str(tmp_path / "svc.db"))
    httpd = make_server(store, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    client = ServiceClient(base)
    try:
        job = client.submit_campaign({"seed": 7, "episodes": 2})
        worker = Worker(HttpQueue(base), lease=60.0, poll=0.05,
                        max_jobs=1)
        assert worker.run() == 1
        final = client.job(job["id"])
        assert final["state"] == "done"
        report = client.result(final["key"])
        assert report["seed"] == 7
        assert report["episodes_run"] == 2
        assert "digest" in report
        # identical resubmission dedups to the stored report
        dup = client.submit_campaign({"seed": 7, "episodes": 2})
        assert dup["dedup"] and dup["state"] == "done"
    finally:
        httpd.shutdown()
        thread.join(timeout=10)
