"""Focused tests on the BTIO workload model's internal structure."""

import pytest

from repro.workloads.btio import BTIO, OUTPUT_STEPS, btio_request_size


def test_class_c_defaults():
    wl = BTIO(nprocs=9, scale=0.01)
    assert wl.steps == OUTPUT_STEPS
    assert wl.request_size == 2160


def test_permutation_is_bijective():
    """Scattered write order still covers each step region exactly."""
    wl = BTIO(nprocs=4, steps=2, scale=0.0005)
    total = wl.requests_per_step * wl.nprocs
    seen = set()
    for rank in range(wl.nprocs):
        for j in range(wl.requests_per_step):
            idx = wl._permute(j * wl.nprocs + rank)
            assert 0 <= idx < total
            seen.add(idx)
    assert len(seen) == total


def test_permutation_scatters_consecutive_writes():
    """Consecutive writes of one rank land far apart (random access)."""
    wl = BTIO(nprocs=4, steps=2, scale=0.001)
    if wl.requests_per_step < 8:
        pytest.skip("too few requests at this scale")
    positions = [wl._offset(0, 0, j) for j in range(8)]
    gaps = [abs(b - a) for a, b in zip(positions, positions[1:])]
    # Most gaps are much larger than the request size.
    large = [g for g in gaps if g > 8 * wl.request_size]
    assert len(large) >= len(gaps) // 2


def test_offsets_stay_within_file():
    wl = BTIO(nprocs=4, steps=3, scale=0.0005)
    hi = 0
    for step in range(wl.steps):
        for rank in range(wl.nprocs):
            for j in range(wl.requests_per_step):
                off = wl._offset(step, rank, j)
                assert off >= step * wl.step_bytes
                assert off + wl.request_size <= (step + 1) * wl.step_bytes
                hi = max(hi, off + wl.request_size)
    assert hi <= wl.io_bytes_written


def test_total_bytes_with_verify_read():
    a = BTIO(nprocs=4, steps=2, scale=0.0005, verify_read=False)
    b = BTIO(nprocs=4, steps=2, scale=0.0005, verify_read=True)
    assert b.total_bytes == 2 * a.total_bytes


def test_request_size_floor():
    # Even absurd process counts keep a sane request size.
    assert btio_request_size(100000) >= 64


def test_scale_bounds():
    from repro.errors import WorkloadError
    with pytest.raises(WorkloadError):
        BTIO(nprocs=4, scale=0.0)
    with pytest.raises(WorkloadError):
        BTIO(nprocs=0)
