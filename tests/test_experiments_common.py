"""Tests for the experiment infrastructure (common helpers + CLI)."""

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.common import (ExperimentResult, base_config,
                                      file_bytes, scaled_ibridge)
from repro.units import GiB, KiB, MiB


def test_file_bytes_scales_and_floors():
    # Large scale: proportional to the paper's 10 GB.
    assert file_bytes(0.01) == int(10 * GiB * 0.01)
    # Tiny scale with many procs: floored to min_iterations per rank.
    floor = 512 * 64 * KiB * 4
    assert file_bytes(1e-6, nprocs=512, request_size=64 * KiB) == floor


def test_base_config_matches_paper_testbed():
    cfg = base_config()
    assert cfg.num_servers == 8
    assert not cfg.ibridge.enabled
    assert base_config(ibridge=True).ibridge.enabled


def test_scaled_ibridge_partitions_proportionally():
    cfg = scaled_ibridge(base_config(), scale=0.01)
    assert cfg.ibridge.enabled
    assert cfg.ibridge.ssd_partition == int(10 * GiB * 0.01)
    override = scaled_ibridge(base_config(), 0.01, ssd_partition=5 * MiB)
    assert override.ibridge.ssd_partition == 5 * MiB


def test_experiment_result_keyed_values():
    res = ExperimentResult(name="x", title="T", headers=["k", "v"])
    res.add_row(["a", 1.0], metric=42.0)
    assert res.get("a", "metric") == 42.0
    with pytest.raises(KeyError):
        res.get("a", "missing")
    text = str(res)
    assert "T" in text and "a" in text


def test_experiment_result_notes_rendered():
    res = ExperimentResult(name="x", title="T", headers=["k"])
    res.add_row(["a"])
    res.notes.append("hello note")
    assert "hello note" in str(res)


def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "table3" in out


def test_cli_no_args_lists(capsys):
    assert cli_main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_cli_runs_one_experiment(capsys):
    assert cli_main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "finished in" in out


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        cli_main(["not-an-experiment"])


def test_cli_audit_flag_installs_default(capsys):
    assert cli_main(["--list", "--audit"]) == 0
    cfg = base_config()
    assert cfg.audit.enabled
    assert cfg.audit.strict
    assert cfg.audit.trace_path is None


def test_cli_audit_trace_implies_audit(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    assert cli_main(["--list", "--audit-trace", path]) == 0
    cfg = base_config()
    assert cfg.audit.enabled
    assert cfg.audit.trace_path == path


def test_explicit_audit_override_wins(capsys):
    from repro.config import AuditConfig
    assert cli_main(["--list", "--audit"]) == 0
    cfg = base_config(audit=AuditConfig(enabled=False))
    assert not cfg.audit.enabled
