"""Tests for the log-structured SSD store."""

import pytest

from repro.core.logstore import LogStore
from repro.errors import StorageError
from repro.units import KiB, MiB


def make_log(region=1 * MiB, seg=256 * KiB):
    return LogStore(base=0, region=region, segment_size=seg)


def test_appends_are_sequential():
    log = make_log()
    lbns = [log.append(10 * KiB) for _ in range(5)]
    assert lbns == sorted(lbns)
    assert lbns[1] == lbns[0] + 10 * KiB


def test_append_crosses_segment_boundary():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    log.append(100 * KiB)
    lbn = log.append(100 * KiB)  # does not fit segment 0
    assert lbn == 128 * KiB  # starts at segment 1
    assert log.free_segments == 2


def test_invalidate_frees_empty_segment():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    a = log.append(100 * KiB)          # segment 0
    b = log.append(100 * KiB)          # segment 1 becomes current
    free_before = log.free_segments
    log.invalidate(a)                  # segment 0 now empty, non-current
    assert log.free_segments == free_before + 1
    with pytest.raises(StorageError):
        log.invalidate(a)
    # Invalidating within the *current* segment never recycles it.
    log.invalidate(b)
    assert log.free_segments == free_before + 1


def test_live_bytes_accounting():
    log = make_log()
    a = log.append(10 * KiB)
    log.append(20 * KiB)
    assert log.live_bytes == 30 * KiB
    log.invalidate(a)
    assert log.live_bytes == 20 * KiB


def test_oversized_append_rejected():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    with pytest.raises(StorageError):
        log.append(256 * KiB)
    with pytest.raises(StorageError):
        log.append(0)


def test_out_of_segments_raises():
    log = make_log(region=512 * KiB, seg=256 * KiB)
    log.append(200 * KiB)
    log.append(200 * KiB)
    with pytest.raises(StorageError):
        log.append(200 * KiB)


def test_needs_cleaning_signal():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    assert not log.needs_cleaning()
    for _ in range(4):
        log.append(128 * KiB)  # consumes all four segments
    assert log.needs_cleaning()


def test_pick_victim_prefers_most_garbage():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    seg0 = [log.append(64 * KiB) for _ in range(4)]   # fills segment 0
    seg1 = [log.append(64 * KiB) for _ in range(4)]   # fills segment 1
    for lbn in seg0[:3]:
        log.invalidate(lbn)        # segment 0: 75% garbage
    log.invalidate(seg1[0])        # segment 1: 25% garbage
    log.append(1 * KiB)            # move current off segment 1
    victim = log.pick_victim()
    assert victim.index == 0


def test_relocate_moves_extent_and_cleaning_cycle():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    seg0 = [log.append(64 * KiB) for _ in range(4)]
    log.append(1 * KiB)  # current = segment 1
    for lbn in seg0[1:]:
        log.invalidate(lbn)
    victim = log.pick_victim()
    assert victim.index == 0
    live = log.live_extents_in(victim)
    assert live == [(seg0[0], 64 * KiB)]
    new_lbn = log.relocate(seg0[0])
    assert new_lbn != seg0[0]
    log.release_victim(victim)
    assert log.cleanings == 1
    assert victim in log._free or victim.write_cursor == 0


def test_release_victim_with_live_data_rejected():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    log.append(64 * KiB)
    log.append(256 * KiB - 64 * KiB)
    log.append(1 * KiB)
    victim = log.pick_victim()
    with pytest.raises(StorageError):
        log.release_victim(victim)


# ------------------------------------------------- cleaner allocation bugs
def test_clean_cycle_with_exactly_one_free_segment():
    """Regression: a full clean cycle at the reserve floor (exactly one
    free segment left) must neither inflate ``live_bytes`` mid-cycle nor
    hand the victim to the free list before ``release_victim``.

    The old ``relocate`` appended the copy *before* invalidating the
    source: live bytes were transiently double-counted, and draining the
    victim's last extent recycled it into the free list inline while the
    cleaner still owned it — a foreground append could then claim the
    victim mid-clean and ``release_victim`` would reset its cursor under
    the foreground data.
    """
    log = make_log(region=1 * MiB, seg=256 * KiB)      # 4 segments
    seg0 = [log.append(64 * KiB) for _ in range(4)]    # fills segment 0
    [log.append(64 * KiB) for _ in range(4)]           # fills segment 1
    log.append(200 * KiB)                              # current = segment 2
    for lbn in seg0[1:]:
        log.invalidate(lbn)                            # seg 0: 75% garbage
    assert log.free_segments == 1                      # only segment 3
    assert log.needs_cleaning(reserve=2)
    victim = log.pick_victim()
    assert victim.index == 0
    before = log.live_bytes
    for lbn, _size in log.live_extents_in(victim):
        log.relocate(lbn)
        assert log.live_bytes == before    # no transient double count
    # The copy rotated into the reserve segment; the drained victim
    # still belongs to the cleaner — not freed until release_victim.
    assert victim not in log._free
    log.release_victim(victim)
    assert victim in log._free
    assert log.free_segments == 1
    assert log.live_bytes == before


def test_relocate_keeps_victim_ownership():
    """Relocating a victim's last live extent must not recycle the
    victim inline — ``release_victim`` is the only hand-back path."""
    log = make_log(region=1 * MiB, seg=256 * KiB)
    seg0 = [log.append(64 * KiB) for _ in range(4)]
    log.append(1 * KiB)                    # current = segment 1
    for lbn in seg0[1:]:
        log.invalidate(lbn)
    victim = log.pick_victim()
    log.relocate(seg0[0])                  # drains the victim
    assert victim not in log._free
    assert victim.live_bytes == 0
    log.release_victim(victim)
    assert victim in log._free


def test_relocate_rolls_back_when_log_is_full():
    """A relocation that cannot allocate must leave the log exactly as
    found (observable failure, no corruption)."""
    log = make_log(region=512 * KiB, seg=256 * KiB)    # 2 segments
    a = log.append(200 * KiB)                          # segment 0
    log.append(200 * KiB)                              # current = segment 1
    before = (log.live_bytes, dict(log._extents))
    with pytest.raises(StorageError):
        log.relocate(a)                    # no room anywhere for the copy
    assert (log.live_bytes, dict(log._extents)) == before


def test_append_recycles_fully_dead_current_at_zero_free():
    """Regression: a current segment whose extents were all invalidated
    in place is pure garbage; rotation must recycle it instead of
    raising "out of free segments" while a whole segment of reclaimable
    space sits unreachable."""
    log = make_log(region=512 * KiB, seg=256 * KiB)    # 2 segments
    log.append(200 * KiB)                              # segment 0
    b = log.append(200 * KiB)                          # current = segment 1
    log.invalidate(b)                      # current fully dead, stays put
    assert log.free_segments == 0
    assert log.can_append(100 * KiB)       # old can_append said False
    c = log.append(100 * KiB)              # old append raised StorageError
    assert c == log.segments[1].start      # recycled in place
    assert log.live_bytes == 300 * KiB


# ---------------------------------------------------------- property-style
def _shadow_clean(log, shadow):
    """The manager's clean loop in miniature, against the shadow map.

    A relocation can legitimately fail when cleaning starts with zero
    free segments and a full current segment (the manager's reserve=2
    keeps it rare); what the allocator guarantees then is an *exact*
    rollback, which this asserts before abandoning the cycle.
    """
    rounds = 0
    while log.needs_cleaning(reserve=2):
        victim = log.pick_victim()
        if victim is None or victim.garbage <= 0:
            break
        drained = True
        for lbn, _size in log.live_extents_in(victim):
            before = (log.live_bytes, dict(log._extents))
            try:
                new_lbn = log.relocate(lbn)
            except StorageError:
                assert (log.live_bytes, dict(log._extents)) == before
                drained = False
                break
            shadow[new_lbn] = shadow.pop(lbn)
        if not drained:
            break
        log.release_victim(victim)
        rounds += 1
        assert rounds <= len(log.segments), \
            "pick_victim -> release_victim failed to terminate"


def _check_conservation(log, shadow):
    for seg in log.segments:
        assert 0 <= seg.live_bytes <= seg.write_cursor <= seg.size
        assert seg.live_bytes + seg.garbage + seg.free == seg.size
    for seg in log._free:
        assert seg.write_cursor == 0 and seg.live_bytes == 0
        assert seg is not log._current
    assert len(set(id(s) for s in log._free)) == len(log._free)
    assert log.live_bytes == sum(shadow.values())
    assert set(log._extents) == set(shadow)
    for lbn, (idx, nbytes) in log._extents.items():
        seg = log.segments[idx]
        assert seg.start <= lbn and lbn + nbytes <= seg.start + seg.write_cursor


def test_logstore_random_workout():
    """Random append/invalidate/clean churn holds the allocator's
    invariants at every step: per-segment byte conservation
    (live + garbage + free == size), free-list consistency, extent-map
    agreement with a shadow model, and clean-cycle termination."""
    import random
    rng = random.Random(0xC1EA7)
    log = make_log(region=1 * MiB, seg=128 * KiB)      # 8 segments
    shadow = {}
    for _step in range(1500):
        roll = rng.random()
        if roll < 0.55:
            nbytes = rng.randrange(1 * KiB, 96 * KiB)
            # The manager cleans *before* appending (reserve=2), so the
            # cleaner never starts from a wedged-full log.
            _shadow_clean(log, shadow)
            if log.can_append(nbytes):
                lbn = log.append(nbytes)
                assert lbn not in shadow
                shadow[lbn] = nbytes
            else:
                with pytest.raises(StorageError):
                    log.append(nbytes)
        elif roll < 0.90 and shadow:
            lbn = rng.choice(sorted(shadow))
            log.invalidate(lbn)
            del shadow[lbn]
        else:
            _shadow_clean(log, shadow)
        _check_conservation(log, shadow)


def test_invalid_construction():
    with pytest.raises(StorageError):
        LogStore(0, 0)
    with pytest.raises(StorageError):
        LogStore(0, 100, segment_size=200)
    with pytest.raises(StorageError):
        LogStore(0, 100, segment_size=100)  # only one segment
