"""Tests for the log-structured SSD store."""

import pytest

from repro.core.logstore import LogStore
from repro.errors import StorageError
from repro.units import KiB, MiB


def make_log(region=1 * MiB, seg=256 * KiB):
    return LogStore(base=0, region=region, segment_size=seg)


def test_appends_are_sequential():
    log = make_log()
    lbns = [log.append(10 * KiB) for _ in range(5)]
    assert lbns == sorted(lbns)
    assert lbns[1] == lbns[0] + 10 * KiB


def test_append_crosses_segment_boundary():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    log.append(100 * KiB)
    lbn = log.append(100 * KiB)  # does not fit segment 0
    assert lbn == 128 * KiB  # starts at segment 1
    assert log.free_segments == 2


def test_invalidate_frees_empty_segment():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    a = log.append(100 * KiB)          # segment 0
    b = log.append(100 * KiB)          # segment 1 becomes current
    free_before = log.free_segments
    log.invalidate(a)                  # segment 0 now empty, non-current
    assert log.free_segments == free_before + 1
    with pytest.raises(StorageError):
        log.invalidate(a)
    # Invalidating within the *current* segment never recycles it.
    log.invalidate(b)
    assert log.free_segments == free_before + 1


def test_live_bytes_accounting():
    log = make_log()
    a = log.append(10 * KiB)
    log.append(20 * KiB)
    assert log.live_bytes == 30 * KiB
    log.invalidate(a)
    assert log.live_bytes == 20 * KiB


def test_oversized_append_rejected():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    with pytest.raises(StorageError):
        log.append(256 * KiB)
    with pytest.raises(StorageError):
        log.append(0)


def test_out_of_segments_raises():
    log = make_log(region=512 * KiB, seg=256 * KiB)
    log.append(200 * KiB)
    log.append(200 * KiB)
    with pytest.raises(StorageError):
        log.append(200 * KiB)


def test_needs_cleaning_signal():
    log = make_log(region=512 * KiB, seg=128 * KiB)
    assert not log.needs_cleaning()
    for _ in range(4):
        log.append(128 * KiB)  # consumes all four segments
    assert log.needs_cleaning()


def test_pick_victim_prefers_most_garbage():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    seg0 = [log.append(64 * KiB) for _ in range(4)]   # fills segment 0
    seg1 = [log.append(64 * KiB) for _ in range(4)]   # fills segment 1
    for lbn in seg0[:3]:
        log.invalidate(lbn)        # segment 0: 75% garbage
    log.invalidate(seg1[0])        # segment 1: 25% garbage
    log.append(1 * KiB)            # move current off segment 1
    victim = log.pick_victim()
    assert victim.index == 0


def test_relocate_moves_extent_and_cleaning_cycle():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    seg0 = [log.append(64 * KiB) for _ in range(4)]
    log.append(1 * KiB)  # current = segment 1
    for lbn in seg0[1:]:
        log.invalidate(lbn)
    victim = log.pick_victim()
    assert victim.index == 0
    live = log.live_extents_in(victim)
    assert live == [(seg0[0], 64 * KiB)]
    new_lbn = log.relocate(seg0[0])
    assert new_lbn != seg0[0]
    log.release_victim(victim)
    assert log.cleanings == 1
    assert victim in log._free or victim.write_cursor == 0


def test_release_victim_with_live_data_rejected():
    log = make_log(region=1 * MiB, seg=256 * KiB)
    log.append(64 * KiB)
    log.append(256 * KiB - 64 * KiB)
    log.append(1 * KiB)
    victim = log.pick_victim()
    with pytest.raises(StorageError):
        log.release_victim(victim)


def test_invalid_construction():
    with pytest.raises(StorageError):
        LogStore(0, 0)
    with pytest.raises(StorageError):
        LogStore(0, 100, segment_size=200)
    with pytest.raises(StorageError):
        LogStore(0, 100, segment_size=100)  # only one segment
