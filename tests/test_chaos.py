"""Tests for repro.chaos: generator, episode runner, shrinker, corpus.

Also the satellites that landed with the fuzzer: fault-plan overlap
validation and merging, the client retry wall-clock cap, and the
committed reproducer corpus replaying clean.
"""

import copy
import json
import os

import pytest

from repro.config import ClusterConfig
from repro.core.manager import IBridgeManager
from repro.devices import Op
from repro.errors import ChaosError, FaultError, RequestTimeoutError
from repro.faults import FaultEvent, FaultKind, FaultPlan, fail_slow
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest, run_workload

from repro.chaos import (episode_signature, load_corpus, replay_reproducer,
                         run_episode, sample_spec, save_reproducer,
                         shrink_spec)
from repro.chaos.corpus import Reproducer
from repro.chaos.shrink import _ddmin, failure_kinds

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "chaos-corpus")


# ------------------------------------------------------------- generator

def test_sample_spec_is_deterministic_and_json_clean():
    a = sample_spec(3, 7)
    b = sample_spec(3, 7)
    assert a == b
    # Specs are plain JSON: a round trip changes nothing (no numpy
    # scalars, no tuples-vs-lists drift).
    assert json.loads(json.dumps(a)) == a
    assert a != sample_spec(3, 8)
    assert a != sample_spec(4, 7)


def test_sampled_plans_validate_and_retry_outlasts_horizon():
    for index in range(30):
        spec = sample_spec(0, index)
        plan = FaultPlan.from_dict(spec["faults"])
        plan.validate()  # disjoint same-target windows by construction
        retry = spec["retry"]
        # The derived budget must outlast the schedule so exhaustion is
        # a finding, not an under-provisioned tester.
        assert retry["max_retries"] * retry["timeout"] > plan.horizon()
        assert retry["total_timeout"] > plan.horizon()


# ------------------------------------------------ plan overlap / merge

def _window(kind, start, duration, **kw):
    return FaultEvent(kind=kind, start=start, duration=duration, **kw)


def test_plan_rejects_overlapping_same_target_windows():
    plan = FaultPlan(events=(
        _window(FaultKind.DEVICE_FAIL, 0.0, 0.5, server=1),
        _window(FaultKind.DEVICE_SLOW, 0.4, 0.5, server=1, latency_mult=3.0),
    ))
    with pytest.raises(FaultError, match="overlap"):
        plan.validate()


def test_plan_allows_adjacent_and_cross_target_windows():
    # end == start is not an overlap (half-open windows); different
    # servers, different disks, and hdd-vs-ssd are separate exclusion
    # groups; net faults compose freely.
    FaultPlan(events=(
        _window(FaultKind.DEVICE_FAIL, 0.0, 0.5, server=1),
        _window(FaultKind.DEVICE_SLOW, 0.5, 0.5, server=1, latency_mult=3.0),
        _window(FaultKind.DEVICE_FAIL, 0.2, 0.5, server=0),
        _window(FaultKind.DEVICE_SLOW, 0.2, 0.5, server=1, disk=1,
                latency_mult=2.0),
        _window(FaultKind.DEVICE_SLOW, 0.0, 2.0, server=1, device="ssd",
                latency_mult=2.0),
        _window(FaultKind.NET_DROP, 0.0, 2.0, drop_prob=0.5),
        _window(FaultKind.NET_DELAY, 0.0, 2.0, delay=0.001),
    )).validate()


def test_whole_run_window_excludes_everything_after_it():
    # duration=None never reverts, so any later same-target window
    # overlaps it (only fail-slow may run whole-run; fail-stops must
    # end so the run can drain).
    plan = FaultPlan(events=(
        FaultEvent(kind=FaultKind.DEVICE_SLOW, server=0, start=0.1,
                   latency_mult=2.0),
        _window(FaultKind.DEVICE_SLOW, 5.0, 0.1, server=0, latency_mult=3.0),
    ))
    with pytest.raises(FaultError, match="overlap"):
        plan.validate()


def test_ssd_fail_and_ssd_device_fault_share_an_exclusion_group():
    plan = FaultPlan(events=(
        _window(FaultKind.SSD_FAIL, 0.0, 0.5, server=0),
        _window(FaultKind.DEVICE_SLOW, 0.3, 0.5, server=0, device="ssd",
                latency_mult=2.0),
    ))
    with pytest.raises(FaultError, match="overlap"):
        plan.validate()


def test_crash_and_device_fail_may_overlap_on_one_server():
    # Distinct exclusion groups — exactly the legal overlap that exposed
    # the pause-clobber bug (chaos-57cfab94f0b9 in the corpus).
    FaultPlan(events=(
        _window(FaultKind.SERVER_CRASH, 0.0, 0.3, server=2),
        _window(FaultKind.DEVICE_FAIL, 0.2, 0.3, server=2),
    )).validate()


def test_plan_merge_combines_and_revalidates():
    a = FaultPlan.single(_window(FaultKind.DEVICE_FAIL, 0.0, 0.5, server=0),
                         name="a")
    b = FaultPlan.single(_window(FaultKind.DEVICE_FAIL, 1.0, 0.5, server=0),
                         name="b")
    merged = FaultPlan.merge(a, b)
    assert len(merged) == 2 and merged.name == "a+b"
    assert FaultPlan.merge(a, b, name="mine").name == "mine"
    assert FaultPlan.merge() == FaultPlan()
    # Cross-plan same-target overlap is rejected just like within one.
    c = FaultPlan.single(_window(FaultKind.DEVICE_SLOW, 0.2, 0.5, server=0,
                                 latency_mult=2.0), name="c")
    with pytest.raises(FaultError, match="overlap"):
        FaultPlan.merge(a, c)
    with pytest.raises(FaultError):
        FaultPlan.merge(a, "not a plan")


def test_plan_horizon():
    assert FaultPlan().horizon() == 0.0
    plan = FaultPlan(events=(
        _window(FaultKind.DEVICE_FAIL, 0.0, 0.5, server=0),
        FaultEvent(kind=FaultKind.NET_DROP, start=2.0, drop_prob=0.3),
    ))
    # The whole-run event contributes its start only (it never ends).
    assert plan.horizon() == 2.0


def test_whole_run_event_round_trips_through_json():
    plan = FaultPlan.single(
        FaultEvent(kind=FaultKind.DEVICE_SLOW, server=1, start=0.25,
                   latency_mult=4.0))
    clone = FaultPlan.from_dict(json.loads(plan.to_json()))
    assert clone == plan
    assert clone.events[0].end is None
    assert "duration" not in clone.events[0].to_dict()  # default elided


def test_injector_rejects_out_of_range_disk():
    cfg = ClusterConfig(num_servers=2)
    plan = FaultPlan.single(fail_slow(0, 2.0, disk=3))
    with pytest.raises(FaultError, match="disk"):
        Cluster(cfg, fault_plan=plan)


# ------------------------------------------------- retry wall-clock cap

def test_retry_total_timeout_caps_the_retry_loop():
    # A permanent blackout with a huge attempt budget: only the
    # wall-clock cap can end the loop.
    cfg = ClusterConfig(num_servers=2).with_retry(
        timeout=0.02, max_retries=500, backoff_base=0.001,
        backoff_cap=0.005, total_timeout=0.2)
    plan = FaultPlan.single(
        FaultEvent(kind=FaultKind.NET_DROP, drop_prob=1.0), name="blackout")
    cluster = Cluster(cfg, fault_plan=plan)
    wl = MpiIoTest(nprocs=2, request_size=64 * KiB, file_size=1 * MiB,
                   op=Op.WRITE)
    with pytest.raises(RequestTimeoutError, match="wall-clock"):
        run_workload(cluster, wl)
    clients = list(cluster._clients.values())
    assert sum(c.wallclock_exhausted for c in clients) >= 1
    assert cluster.env.now < 1.0  # gave up at ~0.2s, not after 500 tries


# --------------------------------------------------------------- episode

def test_episode_is_deterministic():
    spec = sample_spec(0, 2)  # has fault events (the log-extent finding)
    a = run_episode(spec)
    b = run_episode(spec)
    assert a["ok"] and b["ok"]
    assert a["signature"] == b["signature"]
    assert a["signature"] == episode_signature(a)
    assert a["fault_log"] == b["fault_log"]


def test_sharded_episode_is_deterministic():
    # Seed-0 index 3 samples shards=4 (the generator's append-only
    # extension); the sharded episode body must replay bit-identically
    # and log every fault transition with its driving shard.
    spec = sample_spec(0, 3)
    assert spec["cluster"]["shards"] > 1
    a = run_episode(spec)
    b = run_episode(spec)
    assert a["ok"] and b["ok"]
    assert a["shards"] == spec["cluster"]["shards"]
    assert a["signature"] == b["signature"]
    assert a["signature"] == episode_signature(a)
    assert a["fault_log"] == b["fault_log"]
    for entry in a["fault_log"]:
        assert 0 <= entry["shard"] < spec["cluster"]["shards"]
        assert entry["index"] >= 0


def test_sharded_episode_budget_guard_fires():
    spec = copy.deepcopy(sample_spec(0, 3))
    assert spec["cluster"]["shards"] > 1
    spec["budget"]["sim_time"] = 0.0001  # first window already beyond
    result = run_episode(spec)
    assert result["status"] == "budget-exceeded"
    assert "budget-exceeded" in result["failures"]
    assert not result["ok"]


def test_generator_caps_shards_to_topology():
    seen = set()
    for i in range(80):
        spec = sample_spec(0, i)
        s = spec["cluster"]["shards"]
        seen.add(s)
        assert s <= min(spec["cluster"]["num_servers"],
                        spec["workload"]["nprocs"])
    assert seen >= {1, 2}  # the campaign actually fuzzes the engine


def test_shrink_tries_the_serial_engine_first():
    from repro.chaos.shrink import _param_candidates
    spec = copy.deepcopy(sample_spec(0, 3))
    descs = [d for d, _ in _param_candidates(spec)]
    assert descs[0] == "shards=1"


def test_episode_rejects_unknown_schema():
    spec = sample_spec(0, 0)
    spec = dict(spec, schema=99)
    with pytest.raises(ChaosError, match="schema"):
        run_episode(spec)


def test_episode_budget_guard_fires():
    spec = copy.deepcopy(sample_spec(0, 0))
    spec["budget"]["sim_time"] = 0.01  # guard trips on its first tick
    result = run_episode(spec)
    assert result["status"] == "budget-exceeded"
    assert "budget-exceeded" in result["failures"]
    assert not result["ok"]


# --------------------------------------------------------------- shrink

def test_ddmin_finds_a_planted_conjunction():
    # Failure requires A and B together among noise: ddmin must reduce
    # to exactly that pair.
    items = ["n0", "A", "n1", "n2", "B", "n3", "n4", "n5"]
    reduced = _ddmin(items, lambda s: "A" in s and "B" in s)
    assert sorted(reduced) == ["A", "B"]
    assert _ddmin(["x"], lambda s: True) == []  # empty probe
    assert _ddmin(["x"], lambda s: "x" in s) == ["x"]


def test_shrink_spec_minimizes_a_synthetic_failure():
    spec = sample_spec(0, 2)
    # Synthetic oracle: fails iff any ssd_fail event is present, plus a
    # decoy failure kind when nprocs is large (must not distract the
    # kind-matched search).
    def run_fn(s):
        kinds = [e["kind"] for e in s["faults"]["events"]]
        failures = []
        if "ssd_fail" in kinds:
            failures.append("restore:ssd-bypass")
        if s["workload"]["nprocs"] > 4:
            failures.append("watchdog")
        return {"ok": not failures, "failures": failures,
                "signature": "synthetic"}

    baseline = run_fn(spec)
    assert not baseline["ok"]
    res = shrink_spec(spec, run_fn, baseline=baseline)
    assert res.events_after == 1
    assert res.reduced["faults"]["events"][0]["kind"] == "ssd_fail"
    assert failure_kinds(res.reduced_failures) & {"restore"}
    assert res.runs <= 150 and res.trail


def test_shrink_spec_requires_a_failing_baseline():
    spec = sample_spec(0, 0)
    with pytest.raises(ChaosError):
        shrink_spec(spec, lambda s: {"ok": True, "failures": []},
                    baseline={"ok": True, "failures": []})


def test_planted_recovery_bug_shrinks_to_a_minimal_reproducer(monkeypatch):
    # Plant a real recovery bug — SSD restore silently dropped — and
    # check the full find->shrink pipeline reduces the scenario to the
    # one fault event that matters.
    monkeypatch.setattr(IBridgeManager, "ssd_restore", lambda self: None)
    spec = None
    for index in range(40):
        cand = sample_spec(1, index)
        kinds = [e["kind"] for e in cand["faults"]["events"]]
        if cand["cluster"]["ibridge"] and "ssd_fail" in kinds \
                and len(kinds) >= 2:
            spec = cand
            break
    assert spec is not None, "no sampled episode with ssd_fail + noise"
    result = run_episode(spec)
    assert not result["ok"]
    assert "restore" in failure_kinds(result["failures"])
    res = shrink_spec(spec, run_episode, baseline=result)
    assert res.events_after <= 2
    kinds = [e["kind"] for e in res.reduced["faults"]["events"]]
    assert "ssd_fail" in kinds
    assert "restore" in failure_kinds(res.reduced_failures)


# ---------------------------------------------------------------- corpus

def test_reproducer_round_trips_through_the_corpus_dir(tmp_path):
    spec = sample_spec(0, 1)
    repro = Reproducer(spec=spec, expect="pass", signature="sig",
                       note="unit test")
    path = save_reproducer(str(tmp_path), repro)
    entries = load_corpus(str(tmp_path))
    assert [p for p, _ in entries] == [path]
    loaded = entries[0][1]
    assert loaded == repro and loaded.name == repro.name
    assert load_corpus(str(tmp_path / "missing")) == []
    with pytest.raises(ChaosError):
        Reproducer.from_dict({"spec": spec, "schema": 0})
    with pytest.raises(ChaosError):
        Reproducer.from_dict({"spec": spec, "schema": 1, "expect": "maybe"})


def test_replay_checks_expectation_and_signature():
    spec = sample_spec(0, 1)

    def passing(s):
        return {"ok": True, "failures": [], "signature": "s1"}

    def failing(s):
        return {"ok": False, "failures": ["watchdog"], "signature": "s2"}

    assert replay_reproducer(
        Reproducer(spec=spec, expect="pass", signature="s1"),
        run_fn=passing)["ok"]
    # Fixed bug still marked expect=fail -> flagged for flipping.
    v = replay_reproducer(Reproducer(spec=spec, expect="fail"),
                          run_fn=passing)
    assert not v["ok"] and "expect=pass" in v["problems"][0]
    # Regression: expect=pass entry failing again.
    v = replay_reproducer(Reproducer(spec=spec, expect="pass"),
                          run_fn=failing)
    assert not v["ok"] and "watchdog" in v["problems"][0]
    # Signature drift is reported even when the expectation holds.
    v = replay_reproducer(Reproducer(spec=spec, expect="pass",
                                     signature="old"), run_fn=passing)
    assert not v["ok"] and "drift" in v["problems"][0]


def test_committed_corpus_replays_clean():
    # The shipped reproducers are regression guards for the three bugs
    # the fuzzer found (fill-during-SSD-outage, pause clobbering on
    # overlapping crash+device_fail, retry storm): all expect=pass,
    # all bit-identical to their recorded signatures.
    entries = load_corpus(CORPUS_DIR)
    assert len(entries) >= 3
    for path, repro in entries:
        assert repro.expect == "pass", path
        verdict = replay_reproducer(repro)
        assert verdict["ok"], (path, verdict["problems"])
