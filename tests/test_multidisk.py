"""Tests for the multi-disk-per-server extension (paper §II)."""

import pytest

from repro.config import ClusterConfig, ServerConfig
from repro.errors import ConfigError
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest, run_workload


def multi_cfg(ndisks=2, ibridge=False):
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                        server=ServerConfig(disks_per_server=ndisks))
    if ibridge:
        cfg = cfg.with_ibridge(ssd_partition=16 * MiB)
    return cfg


def test_disks_per_server_validated():
    with pytest.raises(ConfigError):
        ServerConfig(disks_per_server=0).validate()


def test_handles_spread_across_disks():
    cluster = Cluster(multi_cfg(ndisks=2))
    h1 = cluster.create_file(1 * MiB)
    h2 = cluster.create_file(1 * MiB)
    server = cluster.servers[0]
    assert server._disk_of(h1) is not server._disk_of(h2)
    # Each file's local data lives entirely on its assigned disk.
    assert server._disk_of(h1).store.file_size(h1) > 0
    assert server._disk_of(h2).store.file_size(h1) == 0


def test_io_reaches_the_assigned_disk_only():
    cluster = Cluster(multi_cfg(ndisks=2))
    handle = cluster.create_file(1 * MiB)
    client = cluster.client(0)
    done = client.read(handle, 0, 128 * KiB, rank=0)
    cluster.env.run(until=done)
    server = cluster.servers[0]
    unit = server._disk_of(handle)
    other = [u for u in server.disks if u is not unit][0]
    assert unit.hdd.stats.reads > 0
    assert other.hdd.stats.reads == 0


def test_two_files_on_two_disks_run_concurrently():
    """Two single-file workloads on separate disks beat them sharing one."""
    def run_with(ndisks):
        cluster = Cluster(multi_cfg(ndisks=ndisks))
        wl = MpiIoTest(nprocs=8, request_size=64 * KiB, file_size=8 * MiB)
        return run_workload(cluster, wl).throughput_mib_s

    # A single shared file cannot use the second disk, so equal-ish.
    assert run_with(2) == pytest.approx(run_with(1), rel=0.35)


def test_ibridge_per_disk_managers():
    cluster = Cluster(multi_cfg(ndisks=2, ibridge=True))
    server = cluster.servers[0]
    managers = [u.ibridge for u in server.disks]
    assert all(m is not None for m in managers)
    assert managers[0] is not managers[1]
    # Disjoint log regions on the shared SSD.
    logs = [m._log for m in managers if m._log is not None]
    if len(logs) == 2:
        a, b = logs
        assert (a.base + a.region <= b.base) or (b.base + b.region <= a.base)


def test_ibridge_redirect_works_on_second_disk():
    cluster = Cluster(multi_cfg(ndisks=2, ibridge=True))
    client = cluster.client(0)
    # Create files until one maps to disk 1 of server 0.
    server = cluster.servers[0]
    handle = cluster.create_file(1 * MiB, preallocate=False)
    while handle % 2 != 1:
        handle = cluster.create_file(1 * MiB, preallocate=False)
    done = client.write(handle, 0, 4 * KiB, rank=0)
    cluster.env.run(until=done)
    unit = server._disk_of(handle)
    assert unit.ibridge.stats.ssd_redirected_writes == 1
    cluster.drain()
    assert unit.ibridge.mapping.dirty_bytes == 0


def test_t_value_is_slowest_disk():
    cluster = Cluster(multi_cfg(ndisks=2, ibridge=True))
    server = cluster.servers[0]
    m0, m1 = (u.ibridge for u in server.disks)
    m0.model._t = 0.5
    m1.model._t = 0.1
    assert server.t_value == 0.5
