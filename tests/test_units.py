"""Tests for unit helpers."""

import pytest

from repro.units import (GiB, KiB, MiB, SECTOR, fmt_size, mib_per_s,
                         to_sectors)


def test_constants_are_binary():
    assert KiB == 1024
    assert MiB == 1024 ** 2
    assert GiB == 1024 ** 3
    assert SECTOR == 512


def test_to_sectors_rounds_up():
    assert to_sectors(512) == 1
    assert to_sectors(513) == 2
    assert to_sectors(64 * KiB) == 128


def test_mib_per_s():
    assert mib_per_s(MiB, 1.0) == pytest.approx(1.0)
    assert mib_per_s(10 * MiB, 2.0) == pytest.approx(5.0)
    assert mib_per_s(100, 0.0) == 0.0
    assert mib_per_s(100, -1.0) == 0.0


def test_fmt_size():
    assert fmt_size(64 * KiB) == "64KiB"
    assert fmt_size(GiB) == "1GiB"
    assert fmt_size(1536) == "1.5KiB"
    assert fmt_size(100) == "100B"
