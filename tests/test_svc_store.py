"""JobStore: dedup, leasing, exactly-once results, crash recovery.

The lease/attempt tests drive an injectable clock instead of sleeping;
the two crash tests (`kill -9` mid-cell, `kill -9` mid-commit) use real
subprocesses because nothing short of SIGKILL proves the recovery
story.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import decode_result, encode_result
from repro.svc.store import JobStore
from repro.svc.submissions import cell_submission
from repro.svc.worker import DirectQueue, Worker

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


class Clock:
    """Manually advanced time source for lease tests."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def store(tmp_path):
    clock = Clock()
    js = JobStore(str(tmp_path / "svc.db"), clock=clock)
    js.test_clock = clock
    return js


def _submit(store, n=0, **over):
    kind, spec, key = cell_submission(
        "tests.fake:cell", {"n": n})
    return store.submit(kind, spec, key, **over)


# ------------------------------------------------------------- submission
def test_submit_fresh_job_is_queued(store):
    job = _submit(store)
    assert job["state"] == "queued"
    assert job["attempts"] == 0
    assert not job["dedup"]
    assert store.counts()["queued"] == 1


def test_submit_duplicate_active_key_dedups_to_same_job(store):
    first = _submit(store)
    second = _submit(store)
    assert second["id"] == first["id"]
    assert second["dedup"]
    assert store.counts()["queued"] == 1
    # ...also while claimed
    store.claim("w1", lease=30.0)
    third = _submit(store)
    assert third["id"] == first["id"] and third["dedup"]


def test_submit_after_result_creates_born_done_job(store):
    job = _submit(store)
    claimed = store.claim("w1", lease=30.0)
    store.complete(claimed["id"], "w1", encode_result(7))
    again = _submit(store)
    assert again["id"] != job["id"]
    assert again["state"] == "done"
    assert again["cached"] and again["dedup"]
    assert store.result_count(job["key"]) == 1
    assert decode_result(store.result(job["key"])) == 7


def test_distinct_kwargs_are_distinct_jobs(store):
    a = _submit(store, n=1)
    b = _submit(store, n=2)
    assert a["id"] != b["id"] and a["key"] != b["key"]


# ---------------------------------------------------------------- leasing
def test_claim_is_fifo_and_increments_attempts(store):
    ids = [_submit(store, n=i)["id"] for i in range(3)]
    got = [store.claim(f"w{i}", lease=30.0) for i in range(3)]
    assert [j["id"] for j in got] == ids
    assert all(j["attempts"] == 1 for j in got)
    assert all(j["state"] == "claimed" for j in got)
    assert store.claim("w9", lease=30.0) is None


def test_lease_expiry_requeues_and_preserves_attempts(store):
    job = _submit(store)
    store.claim("w1", lease=10.0)
    store.test_clock.t += 5.0
    assert store.requeue_expired() == 0  # lease still live
    store.test_clock.t += 6.0
    assert store.requeue_expired() == 1
    row = store.job(job["id"])
    assert row["state"] == "queued"
    assert row["worker"] is None
    assert row["attempts"] == 1  # the burned claim stays counted


def test_heartbeat_extends_lease(store):
    job = _submit(store)
    store.claim("w1", lease=10.0)
    store.test_clock.t += 8.0
    assert store.heartbeat("w1", job["id"], lease=10.0)
    store.test_clock.t += 8.0  # past the original lease, inside the new
    assert store.requeue_expired() == 0
    assert store.job(job["id"])["state"] == "claimed"


def test_heartbeat_by_nonowner_is_refused(store):
    job = _submit(store)
    store.claim("w1", lease=10.0)
    assert not store.heartbeat("w2", job["id"], lease=10.0)


def test_expiry_with_attempts_exhausted_fails_the_job(store):
    job = _submit(store, max_attempts=2)
    for _ in range(2):
        store.claim("w1", lease=10.0)
        store.test_clock.t += 11.0
        store.requeue_expired()
    row = store.job(job["id"])
    assert row["state"] == "failed"
    assert row["attempts"] == 2
    assert "lease expired" in row["error"]


def test_claim_requeues_expired_leases_inline(store):
    job = _submit(store)
    store.claim("w1", lease=10.0)
    store.test_clock.t += 11.0
    # no reaper ran; a second worker's claim recovers the orphan itself
    got = store.claim("w2", lease=10.0)
    assert got["id"] == job["id"]
    assert got["worker"] == "w2"
    assert got["attempts"] == 2


# ------------------------------------------------------------- completion
def test_complete_happy_path(store):
    job = _submit(store)
    store.claim("w1", lease=30.0)
    assert store.complete(job["id"], "w1", encode_result(41)) == "done"
    row = store.job(job["id"])
    assert row["state"] == "done" and not row["cached"]
    assert decode_result(store.result(job["key"])) == 41
    assert store.workers()[0]["jobs_done"] == 1


def test_zombie_completion_is_exactly_once(store):
    """Requeued + re-claimed job: the zombie's late result is stale."""
    job = _submit(store)
    store.claim("w1", lease=10.0)
    store.test_clock.t += 11.0
    store.requeue_expired()
    store.claim("w2", lease=30.0)
    # w1 (presumed dead, actually alive) finishes late
    assert store.complete(job["id"], "w1", encode_result(5)) == "stale"
    assert store.result_count(job["key"]) == 1  # published exactly once
    assert store.job(job["id"])["state"] == "claimed"  # still w2's
    # w2 finishes; same key, result row not duplicated
    assert store.complete(job["id"], "w2", encode_result(5)) == "done"
    assert store.result_count(job["key"]) == 1


def test_done_late_when_requeued_but_unclaimed(store):
    job = _submit(store)
    store.claim("w1", lease=10.0)
    store.test_clock.t += 11.0
    store.requeue_expired()
    assert store.complete(job["id"], "w1", encode_result(9)) == "done-late"
    assert store.job(job["id"])["state"] == "done"
    assert store.result_count(job["key"]) == 1


def test_fail_requeues_until_attempts_exhausted(store):
    job = _submit(store, max_attempts=2)
    store.claim("w1", lease=30.0)
    assert store.fail(job["id"], "w1", "boom 1") == "requeued"
    store.claim("w1", lease=30.0)
    assert store.fail(job["id"], "w1", "boom 2") == "failed"
    row = store.job(job["id"])
    assert row["state"] == "failed" and row["error"] == "boom 2"
    assert store.fail(job["id"], "w1", "boom 3") == "stale"


# ---------------------------------------------------------------- queries
def test_counts_and_claim_latency_cursor(store):
    _submit(store, n=1)
    _submit(store, n=2)
    store.test_clock.t += 2.5
    store.claim("w1", lease=30.0)
    counts = store.counts()
    assert counts["queued"] == 1 and counts["claimed"] == 1
    lats, cursor = store.claim_latencies(0)
    assert len(lats) == 1 and lats[0][1] == pytest.approx(2.5)
    again, cursor2 = store.claim_latencies(cursor)
    assert again == [] and cursor2 == cursor  # each claim observed once


def test_worker_liveness_window(store):
    store.claim("w1", lease=30.0)
    assert store.workers(liveness_window=60.0)[0]["alive"]
    store.test_clock.t += 120.0
    assert not store.workers(liveness_window=60.0)[0]["alive"]


def test_schedule_watermarks_persist(store, tmp_path):
    assert store.schedule_last_run("nightly") is None
    store.schedule_mark_run("nightly", 123.0, job_id=7)
    assert store.schedule_last_run("nightly") == 123.0
    reopened = JobStore(str(tmp_path / "svc.db"))
    assert reopened.schedule_last_run("nightly") == 123.0


# ------------------------------------------------------------ crash tests
def _write_module(tmp_path, name, source):
    path = tmp_path / f"{name}.py"
    path.write_text(source, encoding="utf-8")
    return name


def test_sigkilled_worker_job_requeues_and_completes_once(tmp_path):
    """The headline recovery story: kill -9 mid-cell loses nothing.

    A subprocess worker claims the job and hangs inside the cell; we
    SIGKILL it, wait out the lease, and a second (in-process) worker
    completes the job — one result row, attempts == 2.
    """
    marker = tmp_path / "attempt1"
    started = tmp_path / "started"
    _write_module(tmp_path, "svc_crash_cell", f"""
import os, time

def slow(x):
    if not os.path.exists({str(marker)!r}):
        open({str(marker)!r}, "w").write("1")
        open({str(started)!r}, "w").write("1")
        time.sleep(600)  # killed long before this returns
    return x * 2
""")
    db = str(tmp_path / "svc.db")
    cache_dir = str(tmp_path / "cache")
    store = JobStore(db)
    kind, spec, key = cell_submission("svc_crash_cell:slow", {"x": 21})
    job = store.submit(kind, spec, key)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([SRC, str(tmp_path)])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.svc", "worker", "--db", db,
         "--cache-dir", cache_dir, "--lease", "1", "--poll", "0.05",
         "--quiet"],
        env=env, cwd=str(tmp_path))
    try:
        deadline = time.time() + 30.0
        while not started.exists():
            assert time.time() < deadline, "worker never started the cell"
            assert proc.poll() is None, "worker died before claiming"
            time.sleep(0.05)
        assert store.job(job["id"])["state"] == "claimed"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    deadline = time.time() + 15.0
    while store.job(job["id"])["state"] != "queued":
        assert time.time() < deadline, "lease never expired"
        store.requeue_expired()
        time.sleep(0.1)
    assert store.job(job["id"])["attempts"] == 1

    sys.path.insert(0, str(tmp_path))
    try:
        worker = Worker(DirectQueue(store), cache_dir=cache_dir,
                        lease=10.0, poll=0.05, max_jobs=1)
        assert worker.run() == 1
    finally:
        sys.path.remove(str(tmp_path))

    row = store.job(job["id"])
    assert row["state"] == "done"
    assert row["attempts"] == 2
    assert store.result_count(key) == 1
    assert decode_result(store.result(key)) == 42


def test_sigkill_during_commit_rolls_back(tmp_path):
    """kill -9 inside the completion transaction leaves no torn state.

    The child pauses at the store's pre-commit hook; SIGKILL there
    means the result insert and the job update both roll back, and the
    job recovers through the normal lease path.
    """
    db = str(tmp_path / "svc.db")
    ready = tmp_path / "ready"
    store = JobStore(db)
    kind, spec, key = cell_submission("tests.fake:cell", {"n": 0})
    job = store.submit(kind, spec, key)

    child = tmp_path / "child.py"
    child.write_text(f"""
import time
from repro.svc.store import JobStore
from repro.experiments.runner import encode_result

store = JobStore({db!r})
job = store.claim("w-doomed", lease=5.0)
assert job is not None

def hang():
    open({str(ready)!r}, "w").write("1")
    time.sleep(600)

store._pre_commit = hang
store.complete(job["id"], "w-doomed", encode_result(123))
""", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen([sys.executable, str(child)], env=env)
    try:
        deadline = time.time() + 30.0
        while not ready.exists():
            assert time.time() < deadline, "child never reached commit"
            assert proc.poll() is None, "child died early"
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()

    # The uncommitted transaction must be invisible: no result row, job
    # still claimed by the dead worker.
    assert store.result_count(key) == 0
    row = store.job(job["id"])
    assert row["state"] == "claimed" and row["worker"] == "w-doomed"

    # Normal recovery: lease (5s) expires, another worker finishes it.
    assert store.requeue_expired(now=time.time() + 6.0) == 1
    claimed = store.claim("w-live", lease=30.0)
    assert claimed["id"] == job["id"] and claimed["attempts"] == 2
    assert store.complete(job["id"], "w-live", encode_result(123)) == "done"
    assert store.result_count(key) == 1
    assert decode_result(store.result(key)) == 123
