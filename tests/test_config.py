"""Tests for configuration validation and helpers."""

import pytest

from repro.config import (ClusterConfig, HDDConfig, IBridgeConfig,
                          NetworkConfig, ReturnPolicy, SchedulerConfig,
                          ServerConfig, SSDConfig)
from repro.errors import ConfigError
from repro.units import GiB, KiB


def test_default_config_is_paper_testbed():
    cfg = ClusterConfig()
    cfg.validate()
    assert cfg.num_servers == 8
    assert cfg.stripe_unit == 64 * KiB
    assert cfg.hdd_scheduler.kind == "cfq"
    assert cfg.ssd_scheduler.kind == "noop"
    assert not cfg.ibridge.enabled
    assert cfg.ibridge.ssd_partition == 10 * GiB
    assert cfg.ibridge.random_threshold == 20 * KiB


def test_with_ibridge_returns_new_config():
    base = ClusterConfig()
    ib = base.with_ibridge(random_threshold=10 * KiB)
    assert not base.ibridge.enabled
    assert ib.ibridge.enabled
    assert ib.ibridge.random_threshold == 10 * KiB
    assert ib.without_ibridge().ibridge.enabled is False


def test_replace_validates():
    with pytest.raises(ConfigError):
        ClusterConfig().replace(num_servers=0)


def test_scheduler_validation():
    with pytest.raises(ConfigError):
        SchedulerConfig(kind="bogus").validate()
    with pytest.raises(ConfigError):
        SchedulerConfig(quantum=0).validate()
    with pytest.raises(ConfigError):
        SchedulerConfig(idle_window=-1).validate()
    with pytest.raises(ConfigError):
        SchedulerConfig(merge_window=-0.1).validate()


def test_network_validation():
    with pytest.raises(ConfigError):
        NetworkConfig(bandwidth=0).validate()
    with pytest.raises(ConfigError):
        NetworkConfig(latency=-1).validate()


def test_server_validation():
    with pytest.raises(ConfigError):
        ServerConfig(io_depth=0).validate()


def test_ibridge_validation():
    with pytest.raises(ConfigError):
        IBridgeConfig(random_threshold=0).validate()
    with pytest.raises(ConfigError):
        IBridgeConfig(report_period=0).validate()
    with pytest.raises(ConfigError):
        IBridgeConfig(ewma_old_weight=0.5, ewma_new_weight=0.6).validate()
    with pytest.raises(ConfigError):
        IBridgeConfig(dynamic_partition=False,
                      static_split=(0.7, 0.7)).validate()
    IBridgeConfig(dynamic_partition=False, static_split=(0.3, 0.7)).validate()


def test_ssd_validation():
    with pytest.raises(ConfigError):
        SSDConfig(capacity=0).validate()
    with pytest.raises(ConfigError):
        SSDConfig(read_setup=-1).validate()


def test_hdd_validation():
    with pytest.raises(ConfigError):
        HDDConfig(skip_window=-1).validate()
    with pytest.raises(ConfigError):
        HDDConfig(write_sweep_window=-1).validate()


def test_return_policy_enum():
    assert ReturnPolicy("paper") is ReturnPolicy.PAPER
    assert ReturnPolicy("efficiency") is ReturnPolicy.EFFICIENCY


def test_primary_store_validation():
    with pytest.raises(ConfigError):
        ClusterConfig(primary_store="tape").validate()
