"""Tests for trace synthesis and the Table I classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import Op
from repro.errors import WorkloadError
from repro.units import GiB, KiB
from repro.workloads.traces import (APP_PROFILES, TABLE1_UNIT,
                                    TraceRecord, classify_trace,
                                    synthesize_trace)


def test_all_profiles_present():
    assert set(APP_PROFILES) == {"ALEGRA-2744", "ALEGRA-5832", "CTH", "S3D"}


@pytest.mark.parametrize("app", sorted(APP_PROFILES))
def test_synthesized_mix_matches_table1(app):
    trace = synthesize_trace(app, requests=4000)
    cls = classify_trace(trace)
    profile = APP_PROFILES[app]
    assert cls.unaligned_pct == pytest.approx(profile.unaligned_pct, abs=2.5)
    assert cls.random_pct == pytest.approx(profile.random_pct, abs=2.0)


def test_synthesis_is_deterministic():
    a = synthesize_trace("CTH", requests=100, seed=42)
    b = synthesize_trace("CTH", requests=100, seed=42)
    assert a == b
    c = synthesize_trace("CTH", requests=100, seed=43)
    assert a != c


def test_s3d_requests_are_larger():
    s3d = synthesize_trace("S3D", requests=2000)
    cth = synthesize_trace("CTH", requests=2000)
    mean = lambda t: sum(r.nbytes for r in t) / len(t)
    assert mean(s3d) > 2 * mean(cth)


def test_records_within_span():
    span = 1 * GiB
    for rec in synthesize_trace("ALEGRA-2744", requests=500, span=span):
        assert 0 <= rec.offset
        assert rec.offset + rec.nbytes <= span


def test_unknown_app_rejected():
    with pytest.raises(WorkloadError):
        synthesize_trace("NOPE")


def test_classifier_rules():
    unit = TABLE1_UNIT
    records = [
        TraceRecord(Op.READ, 0, 4 * KiB),            # random
        TraceRecord(Op.READ, 0, unit),               # aligned (1 unit)
        TraceRecord(Op.READ, 0, 2 * unit),           # aligned (2 units)
        TraceRecord(Op.READ, 1, 2 * unit),           # unaligned (offset)
        TraceRecord(Op.READ, 0, 2 * unit + 5),       # unaligned (size)
        TraceRecord(Op.READ, 0, 30 * KiB),           # neither (mid-size)
    ]
    cls = classify_trace(records)
    assert cls.random_pct == pytest.approx(100 / 6)
    assert cls.unaligned_pct == pytest.approx(200 / 6)


def test_classifier_empty_rejected():
    with pytest.raises(WorkloadError):
        classify_trace([])


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**30), st.integers(1, 2**21))
def test_property_classifier_partitions(offset, size):
    """Every record is counted in at most one class."""
    rec = TraceRecord(Op.READ, offset, size)
    cls = classify_trace([rec])
    assert cls.total_pct in (0.0, 100.0)
