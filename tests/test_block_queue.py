"""Integration tests for the BlockQueue device runner."""

import pytest

from repro.block import BlockQueue, BlockTracer, make_scheduler
from repro.config import SchedulerConfig
from repro.devices import HardDisk, Op, SolidStateDrive
from repro.sim import Environment
from repro.units import KiB, MiB


def make_queue(env, device=None, kind="noop", tracer=None, **sched_kw):
    device = device or SolidStateDrive()
    sched = make_scheduler(SchedulerConfig(kind=kind, **sched_kw))
    return BlockQueue(env, device, sched, tracer=tracer)


def test_single_request_completes_with_service_time():
    env = Environment()
    ssd = SolidStateDrive()
    q = make_queue(env, ssd)
    # Use a non-zero LBN: the head parks at 0, so a request at 0 would
    # be contiguous and skip the setup cost.
    req = q.submit(Op.READ, 10 * MiB, 64 * KiB)
    env.run(until=req.done)
    expected = ssd.config.read_setup + 64 * KiB / ssd.config.seq_read_bw
    assert env.now == pytest.approx(expected)
    assert req.latency == pytest.approx(expected)


def test_requests_serve_serially():
    env = Environment()
    q = make_queue(env)
    r1 = q.submit(Op.READ, 0, 64 * KiB)
    r2 = q.submit(Op.READ, 10 * MiB, 64 * KiB)
    env.run(until=r2.done)
    assert r1.complete_time < r2.complete_time


def test_merged_requests_complete_together():
    env = Environment()
    q = make_queue(env)
    r1 = q.submit(Op.READ, 0, 4 * KiB)
    r2 = q.submit(Op.READ, 4 * KiB, 4 * KiB)
    env.run()
    assert r1.complete_time == r2.complete_time
    assert q.dispatches == 1


def test_tracer_records_dispatches():
    env = Environment()
    tracer = BlockTracer()
    q = make_queue(env, tracer=tracer)
    q.submit(Op.READ, 0, 4 * KiB)
    q.submit(Op.READ, 4 * KiB, 4 * KiB)
    q.submit(Op.WRITE, 10 * MiB, 64 * KiB)
    env.run()
    assert len(tracer) == 2
    hist = tracer.size_histogram(Op.READ)
    assert hist == {16: 1}  # 8 KiB = 16 sectors, merged
    assert tracer.merged_fraction() == pytest.approx(0.5)


def test_pending_and_idle_tracking():
    env = Environment()
    q = make_queue(env)
    assert q.pending == 0
    req = q.submit(Op.READ, 0, 64 * KiB)
    assert q.pending == 1
    env.run(until=req.done)
    assert q.pending == 0
    assert not q.busy
    assert q.idle_duration() == 0.0

    def later(env):
        yield env.timeout(1.0)

    p = env.process(later(env))
    env.run(until=p)
    assert q.idle_duration() == pytest.approx(1.0)


def test_quiesce_fires_when_drained():
    env = Environment()
    q = make_queue(env)
    q.submit(Op.READ, 0, 64 * KiB)
    q.submit(Op.READ, 10 * MiB, 64 * KiB)
    ev = q.quiesce()
    env.run(until=ev)
    assert q.pending == 0


def test_quiesce_immediate_when_already_idle():
    env = Environment()
    q = make_queue(env)
    ev = q.quiesce()
    assert ev.triggered


def test_cfq_queue_idles_then_switches_stream():
    env = Environment()
    disk = HardDisk()
    q = make_queue(env, disk, kind="cfq", idle_window=0.001)
    r1 = q.submit(Op.READ, 0, 64 * KiB, stream=1)
    r2 = q.submit(Op.READ, 100 * MiB, 64 * KiB, stream=2)
    env.run()
    assert r1.complete_time < r2.complete_time
    # Stream 2's dispatch happens only after the idle window expires.
    assert r2.dispatch_time >= r1.complete_time + 0.001 * 0.99


def test_out_of_range_submit_rejected():
    from repro.errors import StorageError
    env = Environment()
    q = make_queue(env)
    with pytest.raises(StorageError):
        q.submit(Op.READ, q.device.capacity, 4 * KiB)


def test_many_streams_all_complete():
    env = Environment()
    disk = HardDisk()
    q = make_queue(env, disk, kind="cfq")
    reqs = [q.submit(Op.READ, (i * 7919) % 1000 * MiB, 64 * KiB, stream=i % 8)
            for i in range(64)]
    env.run()
    assert all(r.complete_time is not None for r in reqs)
    assert q.dispatches <= 64
