"""Tests for client-side splitting and fragment flagging."""

from repro.config import ClusterConfig
from repro.devices import Op
from repro.pfs import Cluster
from repro.pfs.messages import ParentRequest
from repro.units import KiB, MiB


def make_client(ibridge=True, **kw):
    cfg = ClusterConfig(num_servers=8, client_jitter=0.0, **kw)
    if ibridge:
        cfg = cfg.with_ibridge(ssd_partition=8 * MiB)
    cluster = Cluster(cfg)
    return cluster, cluster.client(0)


def parent(offset, nbytes, op=Op.READ):
    return ParentRequest(op=op, handle=1, offset=offset, nbytes=nbytes, rank=0)


def test_aligned_request_single_unflagged_sub():
    _c, client = make_client()
    subs = client.split(parent(0, 64 * KiB))
    assert len(subs) == 1
    assert not subs[0].is_fragment and not subs[0].is_random
    assert subs[0].sibling_servers == ()


def test_unaligned_65k_flags_small_piece():
    _c, client = make_client()
    subs = client.split(parent(65 * KiB, 65 * KiB))
    frags = [s for s in subs if s.is_fragment]
    assert len(frags) == 1
    assert frags[0].nbytes == 2 * KiB
    assert frags[0].sibling_servers == tuple(
        s.server for s in subs if s is not frags[0])


def test_both_pieces_large_no_flags():
    _c, client = make_client()
    # Offset 32K: pieces 32K/32K, both above the 20K threshold.
    subs = client.split(parent(32 * KiB, 64 * KiB))
    assert len(subs) == 2
    assert not any(s.is_fragment for s in subs)


def test_small_whole_request_flagged_random():
    _c, client = make_client()
    subs = client.split(parent(0, 4 * KiB))
    assert len(subs) == 1
    assert subs[0].is_random and not subs[0].is_fragment


def test_no_flags_when_ibridge_disabled():
    _c, client = make_client(ibridge=False)
    subs = client.split(parent(65 * KiB, 65 * KiB))
    assert not any(s.is_fragment or s.is_random for s in subs)
    subs = client.split(parent(0, 4 * KiB))
    assert not subs[0].is_random


def test_large_multi_server_request_flags_only_small_pieces():
    _c, client = make_client()
    subs = client.split(parent(1 * KiB, 129 * KiB))  # 63K + 64K + 2K
    sizes = sorted(s.nbytes for s in subs)
    assert sizes == [2 * KiB, 63 * KiB, 64 * KiB]
    assert [s.nbytes for s in subs if s.is_fragment] == [2 * KiB]


def test_request_complete_only_when_slowest_sub_done():
    cluster, client = make_client(ibridge=False)
    handle = cluster.create_file(4 * MiB)
    done = client.read(handle, 10 * KiB, 64 * KiB, rank=0)  # 2 servers
    req = cluster.env.run(until=done)
    assert req.latency is not None
    # Both servers saw work.
    busy = [s for s in cluster.servers if s.stats.jobs > 0]
    assert len(busy) == 2


def test_requests_collected_on_cluster():
    cluster, client = make_client(ibridge=False)
    handle = cluster.create_file(4 * MiB)
    done = client.write(handle, 0, 64 * KiB, rank=3)
    cluster.env.run(until=done)
    assert len(cluster.requests) == 1
    assert cluster.requests[0].rank == 3
