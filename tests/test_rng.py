"""Tests for deterministic per-component RNG streams."""

from repro.util.rng import rng_stream


def test_same_seed_and_label_reproduce():
    a = rng_stream(42, "x").random(10).tolist()
    b = rng_stream(42, "x").random(10).tolist()
    assert a == b


def test_labels_are_independent():
    a = rng_stream(42, "x").random(10).tolist()
    b = rng_stream(42, "y").random(10).tolist()
    assert a != b


def test_seeds_are_independent():
    a = rng_stream(1, "x").random(10).tolist()
    b = rng_stream(2, "x").random(10).tolist()
    assert a != b


def test_adding_component_does_not_perturb_others():
    """The property plain sequential seeding would violate."""
    before = rng_stream(7, "client:0").random(5).tolist()
    _new_component = rng_stream(7, "trace:S3D").random(5)
    after = rng_stream(7, "client:0").random(5).tolist()
    assert before == after
