"""Regression tests for the bugs the invariant auditor exposed.

Each test pins one fixed behaviour:

* ``flush_all`` terminates when a dirty entry is larger than the
  writeback batch budget (the old ``break`` starved the batch and the
  drain loop spun forever without yielding),
* read-miss fills charge the persisted mapping-table entry to the log
  exactly like redirected writes (occupancy parity),
* readahead extension bytes are not counted as request payload in
  ``bytes_from_disk`` (they are ``readahead_bytes``),
* concurrent admissions never over-commit a static class share.
"""

import signal

import pytest

from repro.config import ClusterConfig
from repro.core.manager import TABLE_ENTRY_BYTES
from repro.devices import HardDisk, Op, profile_device
from repro.pfs.messages import SubRequest
from repro.pfs.server import DataServer
from repro.sim import Environment
from repro.units import KiB, MiB


def make_server(env=None, **ib_overrides):
    env = env or Environment()
    ib_overrides.setdefault("ssd_partition", 4 * MiB)
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        **ib_overrides)
    profile = profile_device(HardDisk(cfg.hdd))
    return env, DataServer(env, 0, cfg, profile)


def sub(op=Op.WRITE, offset=0, size=4 * KiB, fragment=False, random=False,
        siblings=(), rank=0, handle=1):
    return SubRequest(parent_id=1, op=op, handle=handle, server=0,
                      local_offset=offset, nbytes=size, rank=rank,
                      is_fragment=fragment, is_random=random,
                      sibling_servers=tuple(siblings))


def serve(env, server, s):
    done = server.submit(s)
    env.run(until=done)
    return done.value


# ------------------------------------------------------ flush_all livelock
@pytest.fixture
def deadline():
    """Hard wall-clock limit: the old flush_all bug spun without
    yielding, so only an interpreter-level alarm can fail it cleanly."""
    def on_alarm(signum, frame):
        raise TimeoutError("test exceeded the wall-clock deadline "
                           "(flush_all livelock regression?)")
    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(30)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


def test_flush_some_oversized_entry_makes_progress():
    """An entry above the batch budget is flushed alone, not skipped
    forever (the guaranteed-progress fallback)."""
    env, server = make_server(writeback_batch=1 * KiB)
    mgr = server.ibridge
    serve(env, server, sub(size=2 * KiB, fragment=True, siblings=(1,)))
    assert mgr.mapping.dirty_bytes == 2 * KiB
    proc = env.process(mgr._flush_some(mgr.mapping.dirty_entries()),
                       name="flush-some")
    env.run(until=proc)
    assert mgr.mapping.dirty_bytes == 0


def test_flush_some_oversized_entry_does_not_block_later_entries():
    """Budget-exceeding entries are skipped, not a stop condition: the
    entries after them in LBN order still flush in the same pass."""
    env, server = make_server(writeback_batch=3 * KiB)
    mgr = server.ibridge
    serve(env, server, sub(offset=0, size=4 * KiB, fragment=True,
                           siblings=(1,)))          # oversized, lowest LBN
    serve(env, server, sub(offset=64 * KiB, size=2 * KiB, fragment=True,
                           siblings=(1,)))
    assert mgr.mapping.dirty_bytes == 6 * KiB
    proc = env.process(mgr._flush_some(mgr.mapping.dirty_entries()),
                       name="flush-some")
    env.run(until=proc)
    # The 2 KiB entry fit the budget and must have been written back.
    assert mgr.mapping.dirty_bytes <= 4 * KiB


def test_flush_all_terminates_with_oversized_dirty_entries(deadline):
    env, server = make_server(writeback_batch=1 * KiB)
    for i in range(3):
        serve(env, server, sub(offset=i * 64 * KiB, size=2 * KiB,
                               fragment=True, siblings=(1,)))
    assert server.ibridge.mapping.dirty_bytes == 6 * KiB
    proc = env.process(server.drain(), name="drain")
    env.run(until=proc)
    assert server.ibridge.mapping.dirty_bytes == 0


# ------------------------------------------------- fill log-occupancy parity
def test_fill_admission_charges_table_entry_like_writes():
    """Both admission paths must account payload + TABLE_ENTRY_BYTES in
    the log, or occupancy drifts from reality on every read-miss fill."""
    env, server = make_server()
    mgr = server.ibridge
    # Allocate backing store, then miss on a small random read so the
    # fill daemon admits the range during the idle period that follows.
    serve(env, server, sub(op=Op.WRITE, offset=0, size=256 * KiB))
    serve(env, server, sub(op=Op.READ, offset=16 * KiB, size=4 * KiB,
                           random=True))
    env.run(until=env.timeout(env.now + 1.0))
    fills = [e for e in mgr.mapping.entries if not e.dirty]
    assert fills, "expected the read miss to be filled into the SSD"
    for e in fills:
        _seg, size = mgr._log._extents[e.ssd_lbn]
        assert size == e.nbytes + TABLE_ENTRY_BYTES
    assert mgr._log.live_bytes == sum(e.nbytes + TABLE_ENTRY_BYTES
                                      for e in mgr.mapping.entries)


# ------------------------------------------------------- readahead stats
def test_readahead_extension_not_counted_as_payload():
    """A rounded-up disk read moves extension bytes physically, but the
    request-payload stat must not inflate; the extension shows up in
    ``readahead_bytes`` instead."""
    env, server = make_server()
    mgr = server.ibridge
    # Allocate [0, 192 KiB) and cache [60 KiB, 64 KiB) as a fragment so
    # a later [0, 60 KiB) read can round its gap up to the stripe edge.
    serve(env, server, sub(op=Op.WRITE, offset=0, size=192 * KiB))
    serve(env, server, sub(op=Op.WRITE, offset=60 * KiB, size=4 * KiB,
                           fragment=True, siblings=(1,)))
    assert mgr.mapping.coverage(1, 60 * KiB, 64 * KiB) == 4 * KiB
    # Readahead only engages under load: keep two streaming reads in
    # flight while the unaligned read arrives.
    fillers = [server.submit(sub(op=Op.READ, offset=64 * KiB, size=64 * KiB,
                                 rank=1)),
               server.submit(sub(op=Op.READ, offset=128 * KiB, size=64 * KiB,
                                 rank=2))]
    target = server.submit(sub(op=Op.READ, offset=0, size=60 * KiB))
    env.run(until=env.all_of(fillers + [target]))
    assert mgr.stats.readahead_bytes == 4 * KiB
    # Payload accounting: the 192 KiB setup write plus the 60 KiB
    # target and 128 KiB filler reads — no extension bytes.
    assert mgr.stats.bytes_from_disk == (192 + 60 + 128) * KiB
    # The disk really moved the rounded-up transfer.
    assert server.hdd.stats.bytes_read == (64 + 128) * KiB


# ------------------------------------------------- admission over-commit
def test_concurrent_admissions_respect_static_share():
    env, server = make_server(ssd_partition=32 * KiB,
                              dynamic_partition=False,
                              static_split=(0.5, 0.5))
    mgr = server.ibridge
    share = mgr.partition.class_capacity(
        next(iter(mgr.partition._bytes)))
    done = [server.submit(sub(offset=i * 64 * KiB, size=6 * KiB,
                              fragment=True, siblings=(1,), rank=i))
            for i in range(8)]
    env.run(until=env.all_of(done))
    from repro.core.mapping import CacheKind
    assert mgr.partition.used(CacheKind.FRAGMENT) <= \
        mgr.partition.class_capacity(CacheKind.FRAGMENT)
    assert mgr.partition.used() <= mgr.partition.capacity
    assert share >= 0  # static shares stay fixed through the run
