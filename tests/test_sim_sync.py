"""Unit tests for Barrier and CountdownLatch."""

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, CountdownLatch, Environment


def test_barrier_releases_all_when_full():
    env = Environment()
    barrier = Barrier(env, parties=3)
    release_times = []

    def worker(env, delay):
        yield env.timeout(delay)
        yield barrier.wait()
        release_times.append(env.now)

    for delay in (1.0, 2.0, 3.0):
        env.process(worker(env, delay))
    env.run()
    assert release_times == [3.0, 3.0, 3.0]
    assert barrier.generation == 1


def test_barrier_is_cyclic():
    env = Environment()
    barrier = Barrier(env, parties=2)
    log = []

    def worker(env, name, delays):
        for d in delays:
            yield env.timeout(d)
            yield barrier.wait()
            log.append((name, env.now))

    env.process(worker(env, "a", [1.0, 1.0]))
    env.process(worker(env, "b", [2.0, 2.0]))
    env.run()
    assert log == [("a", 2.0), ("b", 2.0), ("a", 4.0), ("b", 4.0)]
    assert barrier.generation == 2


def test_barrier_single_party_never_blocks():
    env = Environment()
    barrier = Barrier(env, parties=1)
    times = []

    def worker(env):
        for _ in range(3):
            yield barrier.wait()
            yield env.timeout(1.0)
            times.append(env.now)

    env.process(worker(env))
    env.run()
    assert times == [1.0, 2.0, 3.0]


def test_barrier_invalid_parties():
    env = Environment()
    with pytest.raises(SimulationError):
        Barrier(env, parties=0)


def test_latch_fires_after_count():
    env = Environment()
    latch = CountdownLatch(env, 3)
    fired = []

    def waiter(env):
        yield latch.done
        fired.append(env.now)

    def arriver(env):
        for _ in range(3):
            yield env.timeout(1.0)
            latch.arrive()

    env.process(waiter(env))
    env.process(arriver(env))
    env.run()
    assert fired == [3.0]
    assert latch.remaining == 0


def test_latch_zero_count_fires_immediately():
    env = Environment()
    latch = CountdownLatch(env, 0)
    assert latch.done.triggered


def test_latch_over_arrival_is_error():
    env = Environment()
    latch = CountdownLatch(env, 1)
    latch.arrive()
    with pytest.raises(SimulationError):
        latch.arrive()
