"""Unit tests for the HDD and SSD device models."""

import pytest

from repro.config import HDDConfig
from repro.devices import HardDisk, Op, SeekCurve, SolidStateDrive
from repro.devices.calibration import derive_ssd_setup, table2_corners
from repro.errors import ConfigError, StorageError
from repro.units import GiB, KiB, MiB


# ---------------------------------------------------------------- seek curve
def test_seek_curve_zero_distance_is_free():
    curve = SeekCurve(0.001, 0.01, 1000)
    assert curve(0) == 0.0


def test_seek_curve_monotone_and_concave():
    cap = 1024 * GiB
    curve = SeekCurve(0.00015, 0.0085, cap)
    d1, d2, d4 = curve(cap // 8), curve(cap // 4), curve(cap // 2)
    assert d1 < d2 < d4
    # Concavity: doubling the distance less than doubles the added time.
    assert (d2 - curve.base) < 2 * (d1 - curve.base)


def test_seek_curve_full_stroke_matches_config():
    cap = 1024 * GiB
    curve = SeekCurve(0.00015, 0.0085, cap)
    assert curve(cap) == pytest.approx(0.0085)


def test_seek_curve_mean_random_between_base_and_full():
    curve = SeekCurve(0.00015, 0.0085, 1024 * GiB)
    assert curve.base < curve.mean_random() < curve.full


# ---------------------------------------------------------------- HDD
def test_hdd_sequential_read_is_pure_transfer():
    disk = HardDisk()
    t1 = disk.serve(Op.READ, 10 * GiB, 64 * KiB)    # first request seeks
    t2 = disk.serve(Op.READ, 10 * GiB + 64 * KiB, 64 * KiB)  # contiguous
    assert t2 == pytest.approx(64 * KiB / disk.config.seq_read_bw)
    assert t1 > t2


def test_hdd_random_read_pays_positioning():
    disk = HardDisk()
    disk.serve(Op.READ, 0, 4 * KiB)
    t = disk.serve(Op.READ, 500 * GiB, 4 * KiB)
    assert t > disk.config.rotational_miss


def test_hdd_random_write_pays_settle_penalty():
    cfg = HDDConfig()
    read_disk, write_disk = HardDisk(cfg), HardDisk(cfg)
    read_disk.serve(Op.READ, 0, 4 * KiB)
    write_disk.serve(Op.WRITE, 0, 4 * KiB)
    tr = read_disk.serve(Op.READ, 500 * GiB, 4 * KiB)
    tw = write_disk.serve(Op.WRITE, 500 * GiB, 4 * KiB)
    assert tw > tr + cfg.write_settle * 0.9


def test_hdd_sequential_write_has_no_settle():
    disk = HardDisk()
    disk.serve(Op.WRITE, 0, 64 * KiB)
    t = disk.serve(Op.WRITE, 64 * KiB, 64 * KiB)
    assert t == pytest.approx(64 * KiB / disk.config.seq_write_bw)


def test_hdd_estimate_does_not_move_head():
    disk = HardDisk()
    disk.serve(Op.READ, 0, 4 * KiB)
    head = disk.head
    disk.estimate_service_time(Op.READ, 100 * GiB, 4 * KiB)
    assert disk.head == head


def test_hdd_seek_time_grows_with_distance():
    disk = HardDisk()
    disk.serve(Op.READ, 0, 4 * KiB)
    near = disk.estimate_service_time(Op.READ, 1 * GiB, 4 * KiB)
    far = disk.estimate_service_time(Op.READ, 900 * GiB, 4 * KiB)
    assert far > near


def test_hdd_out_of_range_rejected():
    disk = HardDisk()
    with pytest.raises(StorageError):
        disk.serve(Op.READ, disk.capacity - 1024, 4 * KiB)
    with pytest.raises(StorageError):
        disk.serve(Op.READ, -1, 4 * KiB)
    with pytest.raises(StorageError):
        disk.serve(Op.READ, 0, 0)


def test_hdd_stats_accumulate():
    disk = HardDisk()
    disk.serve(Op.READ, 0, 4 * KiB)
    disk.serve(Op.WRITE, 10 * GiB, 8 * KiB)
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1
    assert disk.stats.bytes_read == 4 * KiB
    assert disk.stats.bytes_written == 8 * KiB
    assert disk.stats.busy_time > 0
    disk.reset_stats()
    assert disk.stats.total_requests == 0


def test_hdd_config_validation():
    with pytest.raises(ConfigError):
        HDDConfig(capacity=0).validate()
    with pytest.raises(ConfigError):
        HDDConfig(seek_full=0.0001, seek_base=0.001).validate()


# ---------------------------------------------------------------- SSD
def test_ssd_sequential_matches_bandwidth():
    ssd = SolidStateDrive()
    ssd.serve(Op.READ, 0, 64 * KiB)
    t = ssd.serve(Op.READ, 64 * KiB, 64 * KiB)
    assert t == pytest.approx(64 * KiB / ssd.config.seq_read_bw)


def test_ssd_random_setup_is_distance_independent():
    ssd = SolidStateDrive()
    ssd.serve(Op.READ, 0, 4 * KiB)
    near = ssd.estimate_service_time(Op.READ, 1 * MiB, 4 * KiB)
    ssd.serve(Op.READ, 0, 4 * KiB)
    far = ssd.estimate_service_time(Op.READ, 100 * GiB, 4 * KiB)
    assert near == pytest.approx(far)


def test_ssd_much_faster_than_hdd_for_random():
    ssd, hdd = SolidStateDrive(), HardDisk()
    ssd.serve(Op.READ, 0, 4 * KiB)
    hdd.serve(Op.READ, 0, 4 * KiB)
    t_ssd = ssd.estimate_service_time(Op.READ, 50 * GiB, 4 * KiB)
    t_hdd = hdd.estimate_service_time(Op.READ, 50 * GiB, 4 * KiB)
    assert t_hdd / t_ssd > 10


def test_ssd_random_write_slower_than_random_read():
    ssd = SolidStateDrive()
    ssd.serve(Op.READ, 0, 4 * KiB)
    tr = ssd.estimate_service_time(Op.READ, 50 * GiB, 4 * KiB)
    tw = ssd.estimate_service_time(Op.WRITE, 50 * GiB, 4 * KiB)
    assert tw > tr


def test_ssd_streams_tracked_per_op_class():
    """Regression: pure log appends pay zero setup after the first even
    when partition reads land between them.  A single shared head
    charged ``write_setup`` on every append and erased exactly the
    sequential advantage the log exists to exploit."""
    ssd = SolidStateDrive()
    log = 1 * GiB                                     # log region base
    first = ssd.serve(Op.WRITE, log, 64 * KiB)        # first append seeks
    appends = []
    for i in range(1, 6):
        ssd.serve(Op.READ, 50 * GiB + i * MiB, 4 * KiB)  # interleaved read
        appends.append(ssd.serve(Op.WRITE, log + i * 64 * KiB, 64 * KiB))
    pure_xfer = 64 * KiB / ssd.config.seq_write_bw
    assert all(t == pytest.approx(pure_xfer) for t in appends)
    assert first > appends[0]
    # And symmetrically: a streaming read is not broken by log appends.
    ssd.serve(Op.READ, 10 * GiB, 64 * KiB)
    ssd.serve(Op.WRITE, 6 * 64 * KiB, 64 * KiB)
    t = ssd.serve(Op.READ, 10 * GiB + 64 * KiB, 64 * KiB)
    assert t == pytest.approx(64 * KiB / ssd.config.seq_read_bw)


# ---------------------------------------------------------------- calibration
def test_derive_ssd_setup_closed_form():
    setup = derive_ssd_setup(160 * MiB, 60 * MiB, 4 * KiB)
    # A 4 KiB random op should then achieve exactly 60 MiB/s.
    t = setup + 4 * KiB / (160 * MiB)
    assert (4 * KiB / t) / MiB == pytest.approx(60.0)


def test_derive_ssd_setup_rejects_inverted_corners():
    with pytest.raises(ValueError):
        derive_ssd_setup(30 * MiB, 60 * MiB)


def test_ssd_corners_match_table2():
    """The SSD microbenchmark reproduces the paper's Table II corners."""
    corners = table2_corners(SolidStateDrive(), requests=500)
    assert corners["sequential_read"] == pytest.approx(160, rel=0.02)
    assert corners["sequential_write"] == pytest.approx(140, rel=0.02)
    assert corners["random_read"] == pytest.approx(60, rel=0.05)
    assert corners["random_write"] == pytest.approx(30, rel=0.05)


def test_hdd_sequential_corners_match_table2():
    corners = table2_corners(HardDisk(), requests=500)
    assert corners["sequential_read"] == pytest.approx(85, rel=0.02)
    assert corners["sequential_write"] == pytest.approx(80, rel=0.02)
    # Random corners are documented deviations: positioning-dominated.
    assert corners["random_read"] < 5
    assert corners["random_write"] < corners["random_read"]
