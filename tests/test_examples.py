"""Every example script must run cleanly (they are living documentation).

The heavier examples are exercised through their ``main()`` with the
module's constants as-is; each finishes in seconds.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
