"""Run-over-run cache-warming behaviour (paper §II-B pre-loading)."""

from repro.config import ClusterConfig
from repro.devices import Op
from repro.mpi import MPIRun
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest


def run_repeatedly(runs=3):
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_ibridge(
        ssd_partition=16 * MiB)
    cluster = Cluster(cfg)
    wl = MpiIoTest(nprocs=8, request_size=65 * KiB, file_size=16 * MiB,
                   op=Op.READ)
    wl.prepare(cluster)
    times = []
    for _ in range(runs):
        start = cluster.env.now
        MPIRun(cluster, wl.nprocs).run_to_completion(wl.body)
        cluster.drain()
        times.append(cluster.env.now - start)
    return cluster, times


def test_second_run_faster_than_first():
    _cluster, times = run_repeatedly(runs=3)
    assert times[1] < times[0]
    assert times[2] <= times[1] * 1.05  # converged


def test_cache_populated_after_first_run():
    cluster, _times = run_repeatedly(runs=1)
    entries = sum(len(s.ibridge.mapping) for s in cluster.servers)
    assert entries > 0
    # Read-admitted entries are clean (no writeback debt).
    dirty = sum(s.ibridge.mapping.dirty_bytes for s in cluster.servers)
    assert dirty == 0


def test_cached_fragments_survive_drain():
    cluster, _ = run_repeatedly(runs=2)
    before = sum(len(s.ibridge.mapping) for s in cluster.servers)
    cluster.drain()
    after = sum(len(s.ibridge.mapping) for s in cluster.servers)
    assert after == before  # drain flushes, it does not evict
