"""Integration tests for the Cluster wiring and the metadata server."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.pfs import Cluster
from repro.units import KiB, MiB


def test_create_file_preallocates_shares():
    cluster = Cluster(ClusterConfig(num_servers=4, client_jitter=0.0))
    handle = cluster.create_file(1 * MiB)
    total = sum(s.disk_store.file_size(handle) for s in cluster.servers)
    assert total == 1 * MiB


def test_handles_are_unique():
    cluster = Cluster(ClusterConfig(num_servers=2, client_jitter=0.0))
    h1 = cluster.create_file(64 * KiB)
    h2 = cluster.create_file(64 * KiB)
    assert h1 != h2


def test_invalid_file_size():
    cluster = Cluster(ClusterConfig(num_servers=2))
    with pytest.raises(ConfigError):
        cluster.create_file(0)


def test_ssd_primary_store_configuration():
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                        primary_store="ssd")
    cluster = Cluster(cfg)
    handle = cluster.create_file(1 * MiB)
    client = cluster.client(0)
    done = client.read(handle, 0, 64 * KiB, rank=0)
    cluster.env.run(until=done)
    assert sum(s.ssd.stats.reads for s in cluster.servers) > 0
    assert sum(s.hdd.stats.reads for s in cluster.servers) == 0


def test_ssd_primary_with_ibridge_rejected():
    with pytest.raises(ConfigError):
        ClusterConfig(primary_store="ssd").with_ibridge().validate()


def test_t_exchange_broadcasts_to_all_servers():
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_ibridge(
        ssd_partition=8 * MiB, report_period=0.1)
    cluster = Cluster(cfg)
    handle = cluster.create_file(8 * MiB)
    client = cluster.client(0)

    def traffic(env):
        for i in range(16):
            yield client.read(handle, i * 64 * KiB, 64 * KiB, rank=0)

    proc = cluster.env.process(traffic(cluster.env))
    cluster.env.run(until=proc)
    cluster.env.run(until=cluster.env.now + 0.5)
    # Every server's broadcast table knows every other server.
    for server in cluster.servers:
        known = server.ibridge.t_table.known_servers()
        assert known == (0, 1, 2, 3)
    assert cluster.mds.broadcasts > 0


def test_drain_completes_with_no_traffic():
    cluster = Cluster(ClusterConfig(num_servers=2, client_jitter=0.0))
    cluster.drain()  # should not hang


def test_ibridge_stats_aggregation():
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        ssd_partition=8 * MiB)
    cluster = Cluster(cfg)
    handle = cluster.create_file(1 * MiB, preallocate=False)
    client = cluster.client(0)
    done = client.write(handle, 0, 4 * KiB, rank=0)
    cluster.env.run(until=done)
    agg = cluster.ibridge_stats()
    assert agg.ssd_redirected_writes == 1
    stock = Cluster(ClusterConfig(num_servers=2))
    assert stock.ibridge_stats() is None


def test_seek_profile_cache_reused():
    from repro.pfs.cluster import _profile_cache
    before = len(_profile_cache)
    Cluster(ClusterConfig(num_servers=2))
    Cluster(ClusterConfig(num_servers=2))
    after = len(_profile_cache)
    assert after <= before + 1
