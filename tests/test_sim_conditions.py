"""Additional edge-case tests for composite events and failure handling."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def test_all_of_empty_fires_immediately():
    env = Environment()
    ev = env.all_of([])
    assert ev.triggered


def test_all_of_fails_fast_on_component_failure():
    env = Environment()
    good = env.timeout(5.0)
    bad = env.event()
    caught = []

    def proc(env):
        try:
            yield env.all_of([good, bad])
        except ValueError as exc:
            caught.append((env.now, str(exc)))

    env.process(proc(env))
    bad.fail(ValueError("component failed"))
    env.run()
    assert caught == [(0.0, "component failed")]


def test_any_of_failure_propagates():
    env = Environment()
    bad = env.event()
    caught = []

    def proc(env):
        try:
            yield env.any_of([env.timeout(5.0), bad])
        except KeyError:
            caught.append(env.now)

    env.process(proc(env))
    bad.fail(KeyError("x"))
    env.run()
    assert caught == [0.0]


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    t = env2.timeout(1.0)
    with pytest.raises(SimulationError):
        env1.all_of([t])


def test_all_of_with_already_processed_events():
    env = Environment()
    t1 = env.timeout(1.0, "a")
    env.run(until=2.0)
    assert t1.processed
    got = []

    def proc(env):
        result = yield env.all_of([t1, env.timeout(1.0, "b")])
        got.append(sorted(result.values()))

    env.process(proc(env))
    env.run()
    assert got == [["a", "b"]]


def test_defused_failure_does_not_escape_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    env.run()  # must not raise


def test_process_return_value_via_stopiteration():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return {"answer": 42}

    result = env.run(until=env.process(inner(env)))
    assert result == {"answer": 42}


def test_nested_process_failure_propagates_to_parent():
    env = Environment()
    seen = []

    def child(env):
        yield env.timeout(1.0)
        raise OSError("disk on fire")

    def parent(env):
        try:
            yield env.process(child(env))
        except OSError as exc:
            seen.append(str(exc))

    env.process(parent(env))
    env.run()
    assert seen == ["disk on fire"]


def test_member_failing_after_condition_resolved_is_defused():
    # Two events fail at the same instant: the first fails the AllOf
    # (whose waiter handles it); the second's failure arrives after the
    # condition triggered and must be absorbed, not escape env.run().
    env = Environment()
    a, b = env.event(), env.event()
    caught = []

    def waiter(env):
        try:
            yield env.all_of([a, b])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        a.fail(RuntimeError("first"))
        b.fail(RuntimeError("second"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["first"]


def test_any_of_loser_failure_after_win_is_defused():
    env = Environment()
    winner, loser = env.event(), env.event()
    got = []

    def waiter(env):
        got.append((yield env.any_of([winner, loser])))

    def driver(env):
        yield env.timeout(1.0)
        winner.succeed("ok")
        yield env.timeout(1.0)
        loser.fail(RuntimeError("too late"))

    env.process(waiter(env))
    env.process(driver(env))
    env.run()  # the late failure must not raise
    assert got == [{winner: "ok"}]
