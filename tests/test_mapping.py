"""Tests for the iBridge mapping table and partition manager."""

import pytest

from repro.config import IBridgeConfig
from repro.core.mapping import CacheEntry, CacheKind, MappingTable
from repro.core.partition import MIN_SHARE, PartitionManager
from repro.errors import StorageError
from repro.units import KiB


def entry(handle=1, start=0, end=10 * KiB, kind=CacheKind.FRAGMENT,
          dirty=True, ret=1.0, lbn=0):
    return CacheEntry(handle=handle, start=start, end=end, ssd_lbn=lbn,
                      kind=kind, dirty=dirty, ret=ret, last_use=0.0)


# ---------------------------------------------------------------- mapping
def test_insert_and_query():
    table = MappingTable()
    e = entry()
    table.insert(e)
    assert table.is_fully_cached(1, 0, 10 * KiB)
    assert table.coverage(1, 0, 20 * KiB) == 10 * KiB
    assert table.gaps(1, 0, 20 * KiB) == [(10 * KiB, 20 * KiB)]


def test_pieces_carry_entry_and_delta():
    table = MappingTable()
    e = entry(start=0, end=10 * KiB, lbn=512)
    table.insert(e)
    [(ps, pe, got, delta)] = table.pieces(1, 4 * KiB, 8 * KiB)
    assert got is e
    assert (ps, pe, delta) == (4 * KiB, 8 * KiB, 4 * KiB)
    # SSD address arithmetic: lbn + delta.
    assert got.ssd_lbn + delta == 512 + 4 * KiB


def test_insert_over_existing_rejected():
    table = MappingTable()
    table.insert(entry())
    with pytest.raises(StorageError):
        table.insert(entry(start=5 * KiB, end=15 * KiB))


def test_overlapping_returns_distinct_entries():
    table = MappingTable()
    e1 = entry(start=0, end=10 * KiB)
    e2 = entry(start=20 * KiB, end=30 * KiB)
    table.insert(e1)
    table.insert(e2)
    got = table.overlapping(1, 5 * KiB, 25 * KiB)
    assert {g.id for g in got} == {e1.id, e2.id}


def test_remove_entry():
    table = MappingTable()
    e = entry()
    table.insert(e)
    table.remove(e)
    assert len(table) == 0
    assert table.coverage(1, 0, 10 * KiB) == 0
    with pytest.raises(StorageError):
        table.remove(e)


def test_dirty_tracking():
    table = MappingTable()
    d = entry(dirty=True)
    c = entry(start=20 * KiB, end=30 * KiB, dirty=False)
    table.insert(d)
    table.insert(c)
    assert table.dirty_entries() == [d]
    assert table.dirty_bytes == 10 * KiB
    d.busy = True
    assert table.dirty_entries() == []


def test_handles_are_independent():
    table = MappingTable()
    table.insert(entry(handle=1))
    assert table.coverage(2, 0, 10 * KiB) == 0
    assert table.gaps(2, 0, 10 * KiB) == [(0, 10 * KiB)]


# ---------------------------------------------------------------- partition
def cfg(dynamic=True, split=(0.5, 0.5)):
    return IBridgeConfig(enabled=True, dynamic_partition=dynamic,
                         static_split=split)


def test_static_split_capacities():
    pm = PartitionManager(100 * KiB, cfg(dynamic=False, split=(0.25, 0.75)))
    assert pm.class_capacity(CacheKind.RANDOM) == 25 * KiB
    assert pm.class_capacity(CacheKind.FRAGMENT) == 75 * KiB


def test_dynamic_shares_proportional_to_returns():
    pm = PartitionManager(100 * KiB, cfg())
    pm.add(entry(kind=CacheKind.RANDOM, ret=1.0))
    pm.add(entry(start=20 * KiB, end=30 * KiB, kind=CacheKind.FRAGMENT, ret=3.0))
    share_r, share_f = pm.shares()
    assert share_f == pytest.approx(0.75)
    assert share_r == pytest.approx(0.25)


def test_dynamic_shares_bounded():
    pm = PartitionManager(100 * KiB, cfg())
    pm.add(entry(kind=CacheKind.FRAGMENT, ret=1000.0))
    share_r, share_f = pm.shares()
    assert share_r >= MIN_SHARE
    assert share_f <= 1 - MIN_SHARE


def test_empty_partitions_split_evenly():
    pm = PartitionManager(100 * KiB, cfg())
    assert pm.shares() == (0.5, 0.5)


def test_byte_accounting_add_drop():
    pm = PartitionManager(100 * KiB, cfg())
    e = entry()
    pm.add(e)
    assert pm.used(CacheKind.FRAGMENT) == 10 * KiB
    assert pm.used() == 10 * KiB
    pm.drop(e)
    assert pm.used() == 0
    with pytest.raises(StorageError):
        pm.drop(e)


def test_eviction_candidates_lru_order():
    pm = PartitionManager(30 * KiB, cfg(dynamic=False, split=(0.0, 1.0)))
    a, b, c = (entry(start=i * 10 * KiB, end=(i + 1) * 10 * KiB)
               for i in range(3))
    for e in (a, b, c):
        pm.add(e)
    pm.touch(a, now=5.0)  # a becomes MRU
    victims = pm.eviction_candidates(CacheKind.FRAGMENT, 10 * KiB)
    assert victims == [b]


def test_eviction_skips_busy_entries():
    pm = PartitionManager(20 * KiB, cfg(dynamic=False, split=(0.0, 1.0)))
    a = entry(start=0, end=10 * KiB)
    b = entry(start=10 * KiB, end=20 * KiB)
    pm.add(a)
    pm.add(b)
    a.busy = True
    victims = pm.eviction_candidates(CacheKind.FRAGMENT, 10 * KiB)
    assert victims == [b]


def test_eviction_impossible_raises():
    pm = PartitionManager(10 * KiB, cfg(dynamic=False, split=(0.0, 1.0)))
    e = entry()
    pm.add(e)
    e.busy = True
    with pytest.raises(StorageError):
        pm.eviction_candidates(CacheKind.FRAGMENT, 10 * KiB)


def test_fits_and_admissible():
    pm = PartitionManager(100 * KiB, cfg(dynamic=False, split=(0.5, 0.5)))
    assert pm.admissible(CacheKind.RANDOM, 50 * KiB)
    assert not pm.admissible(CacheKind.RANDOM, 51 * KiB)
    assert pm.fits(CacheKind.RANDOM, 50 * KiB)
    pm.add(entry(kind=CacheKind.RANDOM, end=30 * KiB))
    assert not pm.fits(CacheKind.RANDOM, 30 * KiB)
