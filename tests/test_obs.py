"""Tests for the observability layer (repro.obs).

Covers the span model, the critical-path walk (on a hand-built tree
with a known answer and on real traced clusters), the exporters
(JSONL round-trip, Chrome/Perfetto schema), the metrics registry, the
EventTrace/BlockTracer sink adapters, and the end-of-run lifecycle.
"""

import json

import pytest

from repro.audit.trace import EventTrace
from repro.block.blktrace import BlockTracer
from repro.config import ClusterConfig, ObsConfig
from repro.devices.base import Op
from repro.errors import ConfigError
from repro.obs import MetricsRegistry, Tracer, analyze, build_trees
from repro.obs.critical_path import EPS, analyze_trace
from repro.obs.export import (append_spans, chrome_path_for,
                              load_spans_jsonl, validate_chrome_trace,
                              write_chrome_trace)
from repro.obs.metrics import load_metrics_jsonl
from repro.obs.validate import validate_spans
from repro.pfs.cluster import Cluster
from repro.sim import Environment
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


# ------------------------------------------------- hand-built span tree
def _known_tree():
    """Root [0,10] with two rpc subs; B is the straggler.

    Under B: net [0,1], server job [1,8] (queue [1,3] + service [3,8]),
    reply net [8,9]; the root then closes at 10.  Expected critical
    path: client 1.0, network 2.0, queue 2.0, service 5.0 (sum 10).
    """
    tracer = Tracer()
    root = tracer.start("request", "client", 1, 0.0, nbytes=110)
    a = tracer.start("subreq", "rpc", 1, 0.0, parent=root,
                     server=0, nbytes=100)
    b = tracer.start("subreq", "rpc", 1, 0.0, parent=root,
                     server=1, nbytes=10, fragment=True)
    net1 = tracer.start("net.msg", "network", 1, 0.0, parent=b)
    tracer.finish(net1, 1.0)
    job = tracer.start("ds1.job", "server", 1, 1.0, parent=b)
    q = tracer.start("slot.wait", "queue", 1, 1.0, parent=job)
    tracer.finish(q, 3.0)
    svc = tracer.start("blk.service", "service", 1, 3.0, parent=job)
    tracer.finish(svc, 8.0)
    tracer.finish(job, 8.0)
    net2 = tracer.start("net.msg", "network", 1, 8.0, parent=b)
    tracer.finish(net2, 9.0)
    tracer.finish(b, 9.0)
    tracer.finish(a, 4.0)
    tracer.finish(root, 10.0)
    return tracer.spans


def test_hand_built_tree_known_critical_path():
    spans = _known_tree()
    trees = build_trees(spans)
    assert list(trees) == [1]
    report = analyze_trace(trees[1])
    assert report.latency == pytest.approx(10.0)
    assert report.breakdown == pytest.approx(
        {"client": 1.0, "network": 2.0, "queue": 2.0, "service": 5.0})
    assert sum(report.breakdown.values()) == pytest.approx(report.latency)
    # The straggler is sub B: later finish, smaller piece, flagged.
    assert report.straggler["server"] == 1
    assert report.straggler["fragment"] is True
    assert report.straggler_is_smallest is True
    # 9.0 (B) over the only sibling's 4.0.
    assert report.magnification == pytest.approx(9.0 / 4.0)
    # Path segments tile [0, 10] without gaps or overlaps.
    segs = sorted(report.path, key=lambda s: s.start)
    assert segs[0].start == pytest.approx(0.0)
    assert segs[-1].end == pytest.approx(10.0)
    for prev, nxt in zip(segs, segs[1:]):
        assert nxt.start == pytest.approx(prev.end)


def test_build_trees_skips_open_and_rootless_traces():
    tracer = Tracer()
    open_root = tracer.start("request", "client", 1, 0.0)
    orphan = tracer.start("subreq", "rpc", 2, 0.0, parent_id=999)
    tracer.finish(orphan, 1.0)
    assert build_trees(tracer.spans) == {}
    tracer.finish(open_root, 1.0)
    assert list(build_trees(tracer.spans)) == [1]


def test_validate_spans_flags_malformed_trees():
    tracer = Tracer()
    root = tracer.start("request", "client", 1, 0.0)
    child = tracer.start("subreq", "rpc", 1, 0.0, parent=root)
    tracer.finish(child, 5.0)
    tracer.finish(root, 3.0)  # child outlives parent
    problems = validate_spans(tracer.spans)
    assert any("outlives" in p or "ends" in p for p in problems)


# ------------------------------------------------------- traced cluster
def _traced_cluster(num_servers=4, **obs_overrides):
    cfg = ClusterConfig(num_servers=num_servers,
                        client_jitter=0.0).with_obs(**obs_overrides)
    return Cluster(cfg)


def _run_unaligned(cluster, n=16, reqsize=65 * KiB):
    client = cluster.client(0)
    handle = cluster.create_file(2 * n * reqsize)
    done = [client.write(handle, i * reqsize, reqsize, rank=i % 8)
            for i in range(n)]
    cluster.env.run(until=cluster.env.all_of(done))
    done = [client.read(handle, i * reqsize, reqsize, rank=i % 8)
            for i in range(n)]
    cluster.env.run(until=cluster.env.all_of(done))
    cluster.drain()
    cluster.shutdown()
    return [s for s in cluster.obs.tracer.spans if s.end is not None]


def test_traced_run_spans_sum_to_parent_latency():
    cluster = _traced_cluster()
    spans = _run_unaligned(cluster)
    assert validate_spans(spans) == []
    trees = build_trees(spans)
    latency = {p.id: p.latency for p in cluster.requests}
    assert len(trees) == len(cluster.requests) == 32
    for trace_id, tree in trees.items():
        # Root span duration IS the request latency (same event ticks).
        assert tree.root.duration == pytest.approx(latency[trace_id],
                                                   abs=EPS)
        report = analyze_trace(tree)
        assert sum(report.breakdown.values()) == pytest.approx(
            report.latency, abs=1e-7)
        assert report.straggler is not None
        assert "server" in report.straggler


def test_straggler_fragment_named_for_unaligned_requests():
    # iBridge flagging on but a zero SSD partition: fragments are
    # flagged in span attrs yet still served by the disks, so the
    # paper's Fig. 2 pathology (the smallest piece gates the request)
    # is visible and attributable.
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_ibridge(
        ssd_partition=0).with_obs()
    cluster = Cluster(cfg)
    spans = _run_unaligned(cluster, n=32)
    report = analyze(spans)
    assert report.count == 64
    fragment_stragglers = [t for t in report.traces
                           if t.straggler and t.straggler.get("fragment")]
    assert fragment_stragglers, \
        "no unaligned request was gated by its fragment"
    assert report.straggler_smallest_fraction > 0.3
    assert report.mean_magnification > 1.0
    assert report.straggler_servers()
    # The printable report carries the headline numbers.
    text = report.format()
    assert "magnification" in text and "smallest piece" in text


def test_gc_stall_emits_spans_critical_path_attributes_them():
    """A GC stall on the SSD shows up as an ``ssd.gc`` span under the
    stalled member, and the critical-path walk books its share of the
    request to the ``gc`` kind."""
    from repro.faults import FaultPlan, gc_storm
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_ibridge(
        ssd_partition=4 * 1024 * KiB).with_obs()
    plan = FaultPlan.single(gc_storm(start=0.0, duration=60.0),
                            name="storm-while-traced")
    cluster = Cluster(cfg, fault_plan=plan)
    spans = _run_unaligned(cluster, n=32)
    assert validate_spans(spans) == []
    gc_spans = [s for s in spans if s.name == "ssd.gc"]
    assert gc_spans, "no GC stall was traced"
    for s in gc_spans:
        assert s.kind == "gc"
        assert s.attrs["stall"] > 0.0
        assert s.duration == pytest.approx(s.attrs["stall"], abs=EPS)
    reports = [analyze_trace(t) for t in build_trees(spans).values()]
    booked = sum(r.breakdown.get("gc", 0.0) for r in reports)
    assert booked > 0.0


def test_ftl_gauges_registered_and_sampled():
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        ssd_partition=2 * 1024 * KiB).with_ftl(
        capacity=8 * 1024 * KiB).with_obs(sample_period=0.01)
    cluster = Cluster(cfg)
    client = cluster.client(0)
    done = [client.write(cluster.create_file(64 * 65 * KiB), i * 65 * KiB,
                         65 * KiB, rank=i % 4) for i in range(32)]
    cluster.env.run(until=cluster.env.all_of(done))
    cluster.drain()
    cluster.shutdown()
    names = {row["name"] for row in cluster.obs.registry.samples}
    for gauge in ("ssd_gc_active", "ssd_write_amplification",
                  "ssd_gc_free_fraction", "ssd_gc_stall_seconds"):
        assert gauge in names, f"{gauge} never sampled"
    wa = [row["value"] for row in cluster.obs.registry.samples
          if row["name"] == "ssd_write_amplification"]
    assert all(v >= 1.0 for v in wa)


def test_obs_disabled_components_stay_unwired():
    cluster = Cluster(ClusterConfig(num_servers=2, client_jitter=0.0))
    assert cluster.obs is None
    assert cluster.network.obs is None
    client = cluster.client(0)
    assert client.obs is None
    handle = cluster.create_file(256 * KiB)
    done = client.write(handle, 0, 65 * KiB, rank=0)
    cluster.env.run(until=done)
    for server in cluster.servers:
        assert server.obs is None
        assert server.ssd_queue.obs is None


# ----------------------------------------------------------- exporters
def test_jsonl_roundtrip_and_chrome_export(tmp_path):
    spans = _known_tree()
    events = [{"type": "event", "name": "blk.dispatch", "t": 2.5,
               "attrs": {"dev": "ds0-hdd0", "sectors": 8}}]
    path = str(tmp_path / "trace.jsonl")
    rows = append_spans(path, spans, events)
    assert rows == len(spans) + 1
    back_spans, back_events = load_spans_jsonl(path)
    assert [s.to_dict() for s in back_spans] == [s.to_dict() for s in spans]
    assert back_events == events

    assert chrome_path_for(path) == str(tmp_path / "trace.chrome.json")
    chrome = chrome_path_for(path)
    count = write_chrome_trace(chrome, back_spans, back_events)
    assert count == len(spans) + 1 + 1  # + process_name metadata
    assert validate_chrome_trace(chrome) == []
    doc = json.loads(open(chrome, encoding="utf-8").read())
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(spans)
    root_ev = next(e for e in complete if e["name"] == "request")
    assert root_ev["dur"] == pytest.approx(10.0 * 1e6)  # microseconds


def test_validate_chrome_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}, {"name": "x"}]}')
    problems = validate_chrome_trace(str(bad))
    assert len(problems) == 2


# ------------------------------------------------------------- metrics
def test_metrics_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    c = reg.counter("ibridge_admissions", server=0, kind="fragment")
    c.inc()
    c.inc(2)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)
    # get-or-create: same labels -> same counter.
    assert reg.counter("ibridge_admissions", server=0,
                       kind="fragment") is c

    depth = 5
    reg.gauge("queue_depth", lambda: depth, server=0, dev="ssd")
    h = reg.histogram("benefit", (0.0, 0.5), server=0)
    for v in (-1.0, 0.2, 0.7, 99.0):
        h.observe(v)
    row = h.to_row()
    assert row["count"] == 4
    assert row["buckets"] == {"le_0": 1, "le_0.5": 1, "le_inf": 2}

    reg.sample(1.0)
    names = {(s["name"], s["t"]) for s in reg.samples}
    assert ("queue_depth", 1.0) in names
    assert ("ibridge_admissions", 1.0) in names


def test_metrics_sampler_runs_on_sim_ticks_and_exports(tmp_path):
    env = Environment()
    reg = MetricsRegistry()
    ticks = []
    reg.gauge("noop", lambda: len(ticks))
    reg.start(env, period=0.5)

    def spin(env):
        yield env.timeout(2.0)

    env.run(until=env.process(spin(env)))
    reg.stop()
    times = sorted({s["t"] for s in reg.samples})
    assert times[0] == pytest.approx(0.0)
    assert len(times) >= 4  # samples at 0, 0.5, 1.0, 1.5, ...

    path = str(tmp_path / "metrics.jsonl")
    reg.export_jsonl(path)
    rows = load_metrics_jsonl(path)
    assert len(rows) == len(reg.samples) + len(reg.final_rows())


def test_traced_workload_exports_files(tmp_path):
    trace_path = str(tmp_path / "trace.jsonl")
    metrics_path = str(tmp_path / "metrics.jsonl")
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_obs(
        trace_path=trace_path, metrics_path=metrics_path)
    cluster = Cluster(cfg)
    workload = MpiIoTest(nprocs=2, request_size=65 * KiB,
                         file_size=8 * 65 * KiB, op=Op.WRITE)
    result = run_workload(cluster, workload)
    assert result.extra["obs_traces"] == 8.0
    assert result.extra["obs_spans"] > 0
    spans, _events = load_spans_jsonl(trace_path)
    assert validate_spans(spans) == []
    assert len(build_trees(spans)) == 8
    assert load_metrics_jsonl(metrics_path)
    # finish_run is idempotent: a second call must not duplicate rows.
    before = sum(1 for _ in open(trace_path, encoding="utf-8"))
    cluster.obs.finish_run()
    after = sum(1 for _ in open(trace_path, encoding="utf-8"))
    assert before == after


def test_tracer_bounds_retention():
    tracer = Tracer(max_spans=2)
    s1 = tracer.start("a", "client", 1, 0.0)
    tracer.start("b", "client", 2, 0.0)
    tracer.start("c", "client", 3, 0.0)
    assert len(tracer) == 2 and tracer.dropped == 1
    tracer.finish(s1, 1.0)
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


# ------------------------------------------------------- sink adapters
def test_event_trace_sink_receives_records():
    trace = EventTrace()
    seen = []
    trace.set_sink(seen.append)
    trace.emit(1.0, "ssd_write", server=0, nbytes=4096)
    assert seen == [{"t": 1.0, "kind": "ssd_write", "server": 0,
                     "nbytes": 4096}]
    trace.set_sink(None)
    trace.emit(2.0, "ssd_write", server=0, nbytes=4096)
    assert len(seen) == 1


def test_event_trace_context_manager_closes_mirror(tmp_path):
    path = tmp_path / "audit.jsonl"
    with pytest.raises(RuntimeError):
        with EventTrace(path=str(path)) as trace:
            trace.emit(0.5, "ssd_write", server=1)
            raise RuntimeError("aborted mid-run")
    # The mirror is complete on disk despite the abort.
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines == [{"t": 0.5, "kind": "ssd_write", "server": 1}]
    trace.close()  # idempotent
    assert trace.records() != []  # ring survives close


def test_event_trace_flushes_violations_immediately(tmp_path):
    path = tmp_path / "audit.jsonl"
    trace = EventTrace(path=str(path))
    trace.emit(1.0, "violation", message="bytes lost")
    # No close/flush: the violation record must already be on disk.
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines and lines[-1]["kind"] == "violation"
    trace.close()


def test_block_tracer_sink_forwards_even_when_disabled():
    bt = BlockTracer(enabled=False)
    seen = []
    bt.sink = seen.append
    bt.record(1.0, Op.WRITE, lbn=8, nbytes=4096, merged=2)
    assert len(bt.records) == 0  # retention still off
    assert len(seen) == 1 and seen[0].sectors == 8 and seen[0].merged == 2


def test_traced_cluster_folds_audit_and_blk_events():
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        ssd_partition=8 * 1024 * KiB).with_audit().with_obs()
    cluster = Cluster(cfg)
    _run_unaligned(cluster, n=8)
    names = {e["name"] for e in cluster.obs.tracer.events}
    assert any(n.startswith("audit.") for n in names)
    assert "blk.dispatch" in names


# ------------------------------------------------------------- config
def test_obs_config_validation():
    with pytest.raises(ConfigError):
        ObsConfig(sample_period=0.0).validate()
    with pytest.raises(ConfigError):
        ObsConfig(max_spans=-1).validate()
    with pytest.raises(ConfigError):
        ObsConfig(enabled=True, trace=False, metrics=False).validate()
    cfg = ClusterConfig(num_servers=2).with_obs(sample_period=0.1)
    assert cfg.obs.enabled and cfg.obs.sample_period == 0.1
    cfg.validate()


# ----------------------------------------------------- span streaming
def test_span_streaming_flushes_batches_mid_run(tmp_path):
    from repro.obs.runtime import ObsRuntime

    path = str(tmp_path / "stream.jsonl")
    cfg = ObsConfig(enabled=True, metrics=False, trace_path=path,
                    flush_spans=2)
    rt = ObsRuntime(Environment(), cfg)
    t = rt.tracer
    t.finish(t.start("a", "client", 1, 0.0), 1.0)
    import os
    assert not os.path.exists(path)  # first closure only buffers
    t.finish(t.start("b", "client", 2, 0.0), 1.5)
    spans, _events = load_spans_jsonl(path)  # batch of 2 hit the disk
    assert [s.name for s in spans] == ["a", "b"]
    # The tail (one buffered span + an instant event) drains at finish.
    t.finish(t.start("c", "client", 3, 2.0), 2.5)
    t.event("marker", 2.6)
    rt.finish_run()
    spans, events = load_spans_jsonl(path)
    assert [s.name for s in spans] == ["a", "b", "c"]
    assert [e["name"] for e in events] == ["marker"]
    rt.finish_run()  # idempotent: no duplicate rows
    spans, events = load_spans_jsonl(path)
    assert len(spans) == 3 and len(events) == 1


def test_span_streaming_reset_drops_warm_run_buffer(tmp_path):
    from repro.obs.runtime import ObsRuntime

    path = str(tmp_path / "stream.jsonl")
    cfg = ObsConfig(enabled=True, metrics=False, trace_path=path,
                    flush_spans=10)
    rt = ObsRuntime(Environment(), cfg)
    t = rt.tracer
    t.finish(t.start("warm", "client", 1, 0.0), 1.0)
    t.event("warm-marker", 0.5)
    rt.reset()  # warm pass discarded before it ever flushed
    t.finish(t.start("measured", "client", 2, 2.0), 3.0)
    rt.finish_run()
    spans, events = load_spans_jsonl(path)
    assert [s.name for s in spans] == ["measured"]
    assert events == []


def test_flush_spans_zero_restores_export_at_finish(tmp_path):
    from repro.obs.runtime import ObsRuntime

    path = str(tmp_path / "trace.jsonl")
    cfg = ObsConfig(enabled=True, metrics=False, trace_path=path,
                    flush_spans=0)
    rt = ObsRuntime(Environment(), cfg)
    t = rt.tracer
    assert t.sink is None  # no streaming hook installed
    for i in range(5):
        t.finish(t.start(f"s{i}", "client", i, 0.0), 1.0)
    assert rt.flush_spans() == 0  # explicit flush is a no-op
    import os
    assert not os.path.exists(path)
    rt.finish_run()
    spans, _events = load_spans_jsonl(path)
    assert len(spans) == 5


# ------------------------------------------- span slab + 1-in-N sampling
def test_empty_attrs_sentinel_is_shared_and_copied_on_write():
    from repro.obs.span import EMPTY_ATTRS

    tracer = Tracer()
    a = tracer.start("a", "client", 1, 0.0)
    b = tracer.start("b", "client", 1, 0.0)
    # No-attr spans share the one immutable (and falsy) sentinel.
    assert a.attrs is EMPTY_ATTRS and b.attrs is EMPTY_ATTRS
    assert not a.attrs and dict(a.attrs) == {}
    with pytest.raises(TypeError):
        a.attrs["k"] = 1  # the sentinel itself is immutable
    # annotate() copies on first write; the sibling keeps the sentinel.
    a.annotate(server=3)
    assert a.attrs == {"server": 3} and a.attrs is not EMPTY_ATTRS
    assert b.attrs is EMPTY_ATTRS and len(EMPTY_ATTRS) == 0
    a.annotate(route="ssd")
    assert a.attrs == {"server": 3, "route": "ssd"}


def test_unsampled_spans_recycle_through_the_freelist():
    tracer = Tracer(sample_n=2)
    kept = tracer.start("kept", "client", 0, 0.0)  # 0 % 2 == 0: retained
    tracer.finish(kept, 1.0)
    dropped = tracer.start("dropped", "client", 1, 0.0)
    dropped.annotate(big="x" * 64)
    tracer.finish(dropped, 1.0)
    assert tracer.unsampled == 1 and tracer.spans == [kept]
    # The next start reuses the recycled object with a fresh identity
    # and without the old attrs.
    reused = tracer.start("reused", "client", 2, 2.0)
    assert reused is dropped
    assert reused.name == "reused" and reused.end is None
    assert not reused.attrs
    # sample_n=1 (the default) never recycles: full-fidelity tracing
    # allocates a fresh object per span.
    plain = Tracer()
    s1 = plain.start("s1", "client", 1, 0.0)
    plain.finish(s1, 1.0)
    assert plain.start("s2", "client", 2, 1.0) is not s1
    assert plain.unsampled == 0


def test_trace_sampling_keeps_retained_traces_exact():
    """sample_n=4 must retain every 4th trace *completely*: same spans,
    same critical-path attribution as the unsampled run."""
    def _spans(sample_n):
        cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_obs(
            metrics=False, trace_sample_n=sample_n)
        cluster = Cluster(cfg)
        run_workload(cluster, MpiIoTest(nprocs=4, request_size=65 * KiB,
                                        file_size=2 * MiB))
        return cluster.obs.tracer, \
            [s for s in cluster.obs.tracer.spans if s.end is not None]

    full_tracer, full = _spans(1)
    sampled_tracer, sampled = _spans(4)
    assert full_tracer.unsampled == 0
    assert sampled_tracer.unsampled > 0
    assert 0 < len(sampled) < len(full)
    assert all(s.trace_id % 4 == 0 for s in sampled)

    # Trace ids come from the process-global request-id counter, which
    # keeps counting across the two runs, so run 2's ids are run 1's
    # shifted by one constant (the schedules are identical; sampling
    # only changes retention).  Solve for that shift: it is the unique
    # offset that maps every retained id onto a full-run id.
    full_ids = sorted({s.trace_id for s in full})
    retained = sorted({s.trace_id for s in sampled})
    # ~1-in-4 retention of the root traces.
    assert len(retained) * 3 <= len(full_ids) <= (len(retained) + 1) * 4
    full_set = set(full_ids)
    shifts = [retained[0] - f for f in full_ids
              if all(t - (retained[0] - f) in full_set for t in retained)]
    assert len(shifts) == 1, f"ambiguous id shift: {shifts}"
    shift = shifts[0]

    full_by_id = {}
    for s in full:
        full_by_id.setdefault(s.trace_id, []).append(
            (s.name, s.kind, s.start, s.end))
    full_trees = build_trees(full)
    for trace_id, tree in build_trees(sampled).items():
        # Exactness: the retained trace carries every span the full run
        # recorded for the corresponding trace.
        got = sorted((s.name, s.kind, s.start, s.end)
                     for s in sampled if s.trace_id == trace_id)
        assert got == sorted(full_by_id[trace_id - shift])
        # ... and therefore bit-exact critical-path attribution.
        report = analyze_trace(tree)
        reference = analyze_trace(full_trees[trace_id - shift])
        assert report.latency == reference.latency
        assert report.breakdown == reference.breakdown
