"""HTTP service, submissions, scheduler: the non-store half of repro.svc."""

import json
import threading

import pytest

from repro.experiments.runner import (cell, cell_key, encode_result,
                                      null_context_token)
from repro.obs.metrics import parse_prometheus_text
from repro.svc import (HttpQueue, JobStore, PeriodicTask, Scheduler,
                       ServiceClient, ServiceError, Worker, make_server,
                       nightly_chaos)
from repro.svc.scheduler import tasks_from_file
from repro.svc.submissions import (campaign_submission, cell_submission,
                                   parse_submission)


def _probe_cell(n, bump=0):
    return {"n": n, "value": n * 10 + bump}


PROBE = f"{__name__}:_probe_cell"


# ------------------------------------------------------------ submissions
def test_cell_submission_key_matches_runner_cache_key():
    kind, spec, key = cell_submission(PROBE, {"n": 3})
    assert kind == "cell"
    assert spec == {"fn": PROBE, "kwargs": {"n": 3}}
    # identical to the key a flag-less CLI run computes for this cell —
    # the contract that lets the fleet and run_cells share one cache
    assert key == cell_key(cell(PROBE, n=3), null_context_token())


def test_cell_submission_rejects_non_json_kwargs():
    with pytest.raises(ValueError, match="JSON-only"):
        cell_submission(PROBE, {"n": {1, 2}})
    with pytest.raises(ValueError, match="pkg.mod:func"):
        cell_submission("not-an-import-path", {})


def test_campaign_submission_requires_seed_and_episodes():
    with pytest.raises(ValueError, match="seed"):
        campaign_submission({"episodes": 5})
    with pytest.raises(ValueError, match="episodes"):
        campaign_submission({"seed": 0})


def test_campaign_key_changes_with_window_salt():
    _, _, key_a = campaign_submission({"seed": 0, "episodes": 5,
                                       "window": 1})
    _, _, key_b = campaign_submission({"seed": 0, "episodes": 5,
                                       "window": 2})
    _, _, key_a2 = campaign_submission({"seed": 0, "episodes": 5,
                                        "window": 1})
    assert key_a != key_b
    assert key_a == key_a2


def test_parse_submission_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown submission kind"):
        parse_submission({"kind": "mystery"})


# ------------------------------------------------------------ HTTP server
@pytest.fixture()
def service(tmp_path):
    store = JobStore(str(tmp_path / "svc.db"))
    httpd = make_server(store, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield store, ServiceClient(base), base
    httpd.shutdown()
    thread.join(timeout=10)


def test_healthz_and_submit_roundtrip(service):
    _store, client, _base = service
    assert client.healthz()["ok"]
    job = client.submit_cell(PROBE, n=1)
    assert job["state"] == "queued" and not job.get("dedup")
    dup = client.submit_cell(PROBE, n=1)
    assert dup["id"] == job["id"] and dup["dedup"]
    assert client.job(job["id"])["id"] == job["id"]
    assert [j["id"] for j in client.jobs(state="queued")] == [job["id"]]


def test_batch_submit_and_bad_requests(service):
    _store, client, _base = service
    jobs = client.submit_cells(
        [{"fn": PROBE, "kwargs": {"n": i}} for i in range(3)])
    assert len(jobs) == 3
    with pytest.raises(ServiceError) as err:
        client.submit_cell("garbage", n=1)
    assert err.value.code == 400
    with pytest.raises(ServiceError) as err:
        client.job(99999)
    assert err.value.code == 404
    with pytest.raises(ServiceError) as err:
        client.result("deadbeef")
    assert err.value.code == 404


def test_worker_api_over_http_and_metrics_scrape(service):
    store, client, base = service
    job = client.submit_cell(PROBE, n=2)
    queue = HttpQueue(base)
    claimed = queue.claim("w-http", lease=30.0)
    assert claimed["id"] == job["id"]
    assert queue.heartbeat("w-http", job["id"], lease=30.0)
    value = _probe_cell(**claimed["spec"]["kwargs"])
    assert queue.complete("w-http", job["id"],
                          encode_result(value), cached=False) == "done"
    assert client.result(job["key"]) == value
    assert queue.claim("w-http", lease=30.0) is None  # 204 -> None

    types, samples = parse_prometheus_text(client.metrics_text())
    assert types["svc_jobs"] == "gauge"
    assert types["svc_claim_latency_seconds"] == "histogram"
    assert samples[("svc_jobs", (("state", "done"),))] == 1
    assert samples[("svc_submissions_total", ())] == 1
    assert samples[("svc_workers_known", ())] == 1
    assert samples[("svc_claim_latency_seconds_count", ())] == 1
    # scrape again: the latency cursor must not double-observe
    _, samples2 = parse_prometheus_text(client.metrics_text())
    assert samples2[("svc_claim_latency_seconds_count", ())] == 1


def test_http_worker_executes_submission(service):
    _store, client, base = service
    jobs = client.submit_cells(
        [{"fn": PROBE, "kwargs": {"n": i, "bump": 1}} for i in range(4)])
    worker = Worker(HttpQueue(base), cache_dir=None, lease=10.0,
                    poll=0.05, max_jobs=4)
    assert worker.run() == 4
    final = client.wait([j["id"] for j in jobs], timeout=30.0)
    assert all(j["state"] == "done" for j in final)
    assert client.result(final[0]["key"]) == {"n": 0, "value": 1}


def test_worker_failures_requeue_then_fail(service):
    _store, client, base = service
    job = client.submit_cell(f"{__name__}:_no_such_fn", max_attempts=2,
                             n=0)
    worker = Worker(HttpQueue(base), lease=10.0, poll=0.05, max_jobs=2)
    assert worker.run() == 2  # two attempts, both raise
    final = client.job(job["id"])
    assert final["state"] == "failed"
    assert final["attempts"] == 2
    assert "AttributeError" in final["error"] \
        or "no attribute" in final["error"]


# -------------------------------------------------------------- scheduler
class Clock:
    def __init__(self, t):
        self.t = t

    def __call__(self):
        return self.t


def test_scheduler_fires_once_per_window(tmp_path):
    clock = Clock(t=0.0)
    store = JobStore(str(tmp_path / "svc.db"), clock=clock)
    sched = Scheduler(store, [nightly_chaos(episodes=5, interval=100.0)],
                      clock=clock)
    assert sched.tick() == 1  # window 0
    assert sched.tick() == 0  # same window: no double-fire
    clock.t = 150.0
    assert sched.tick() == 1  # window 1
    jobs = store.jobs()
    assert len(jobs) == 2
    # per-window seeds: night k fuzzes seed base+k
    seeds = sorted(j["spec"]["seed"] for j in jobs)
    assert seeds == [0, 1]


def test_scheduler_catches_up_once_after_downtime(tmp_path):
    clock = Clock(t=50.0)
    store = JobStore(str(tmp_path / "svc.db"), clock=clock)
    task = nightly_chaos(episodes=5, interval=100.0)
    Scheduler(store, [task], clock=clock).tick()
    assert store.counts()["queued"] == 1
    # service down across windows 1..4; a fresh scheduler (restart)
    # reads the persisted watermark and submits exactly one catch-up
    clock.t = 450.0
    fresh = Scheduler(store, [task], clock=clock)
    assert fresh.tick() == 1
    assert fresh.tick() == 0
    assert store.counts()["queued"] == 2  # not 5


def test_scheduler_resubmit_dedups_within_window(tmp_path):
    """Crash between submit and watermark write: dedup absorbs it."""
    clock = Clock(t=10.0)
    store = JobStore(str(tmp_path / "svc.db"), clock=clock)
    task = nightly_chaos(episodes=5, interval=100.0)
    sched = Scheduler(store, [task], clock=clock)
    sched.tick()
    # simulate the crash: wipe the watermark, keep the job
    store.schedule_mark_run(task.name, None)
    assert sched.tick() == 1  # re-fires...
    assert store.counts()["queued"] == 1  # ...into the same job


def test_scheduler_cell_task_and_schedule_file(tmp_path):
    clock = Clock(t=5.0)
    store = JobStore(str(tmp_path / "svc.db"), clock=clock)
    schedule = tmp_path / "schedule.json"
    schedule.write_text(json.dumps([
        {"name": "probe", "interval": 10.0,
         "submission": {"kind": "cell", "fn": PROBE,
                        "kwargs": {"n": 1}}},
        {"name": "fuzz", "interval": 10.0,
         "submission": {"kind": "campaign",
                        "spec": {"seed": "$WINDOW", "episodes": 3}}},
    ]), encoding="utf-8")
    tasks = tasks_from_file(str(schedule))
    assert [t.name for t in tasks] == ["probe", "fuzz"]
    sched = Scheduler(store, tasks, clock=clock)
    assert sched.tick() == 2
    clock.t = 15.0
    assert sched.tick() == 2
    campaigns = [j for j in store.jobs() if j["kind"] == "campaign"]
    assert sorted(j["spec"]["seed"] for j in campaigns) == [0, 1]
    assert all(j["spec"]["window"] in (0, 1) for j in campaigns)
    # the cell task dedups across windows (same key both times)
    cells = [j for j in store.jobs() if j["kind"] == "cell"]
    assert len(cells) == 1
