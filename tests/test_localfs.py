"""Tests for the extent allocator and the per-server LocalStore."""

import pytest

from repro.errors import AllocationError, StorageError
from repro.localfs import Extent, ExtentAllocator, LocalStore, split_ranges
from repro.units import KiB, MiB


# ---------------------------------------------------------------- allocator
def test_allocator_sequential_extents_are_contiguous():
    alloc = ExtentAllocator(1 * MiB)
    a = alloc.allocate(4 * KiB)
    b = alloc.allocate(8 * KiB)
    assert b.lbn == a.end
    assert alloc.used == 12 * KiB


def test_allocator_out_of_space():
    alloc = ExtentAllocator(16 * KiB)
    alloc.allocate(12 * KiB)
    with pytest.raises(AllocationError):
        alloc.allocate(8 * KiB)


def test_allocator_reserve_region():
    alloc = ExtentAllocator(1 * MiB, start=64 * KiB)
    ext = alloc.allocate(4 * KiB)
    assert ext.lbn == 64 * KiB


def test_allocator_invalid_args():
    with pytest.raises(AllocationError):
        ExtentAllocator(0)
    alloc = ExtentAllocator(1 * MiB)
    with pytest.raises(AllocationError):
        alloc.allocate(0)


def test_allocator_contiguous_with():
    alloc = ExtentAllocator(1 * MiB)
    a = alloc.allocate(4 * KiB)
    assert alloc.contiguous_with(a)
    alloc.allocate(4 * KiB)
    assert not alloc.contiguous_with(a)


def test_split_ranges():
    out = split_ranges([Extent(0, 10 * KiB)], 4 * KiB)
    assert [(e.lbn, e.length) for e in out] == [
        (0, 4 * KiB), (4 * KiB, 4 * KiB), (8 * KiB, 2 * KiB)]
    with pytest.raises(AllocationError):
        split_ranges([], 0)


# ---------------------------------------------------------------- store
def test_store_preallocate_contiguous():
    store = LocalStore(1 * MiB)
    store.preallocate(handle=1, nbytes=256 * KiB)
    ranges = store.ranges_for_read(1, 0, 256 * KiB)
    assert ranges == [(0, 256 * KiB)]


def test_store_sequential_writes_coalesce():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 4 * KiB)
    store.ranges_for_write(1, 4 * KiB, 4 * KiB)
    assert store.ranges_for_read(1, 0, 8 * KiB) == [(0, 8 * KiB)]


def test_store_interleaved_files_fragment():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 4 * KiB)
    store.ranges_for_write(2, 0, 4 * KiB)
    store.ranges_for_write(1, 4 * KiB, 4 * KiB)
    # Handle 1's two pieces are separated by handle 2's extent.
    ranges = store.ranges_for_read(1, 0, 8 * KiB)
    assert len(ranges) == 2


def test_store_read_of_hole_rejected():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 4 * KiB)
    with pytest.raises(StorageError):
        store.ranges_for_read(1, 0, 8 * KiB)
    with pytest.raises(StorageError):
        store.ranges_for_read(2, 0, 4 * KiB)


def test_store_write_fills_hole_with_new_extent():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 4 * KiB)
    store.ranges_for_write(1, 8 * KiB, 4 * KiB)   # leaves a hole at 4-8K
    store.ranges_for_write(1, 4 * KiB, 4 * KiB)   # fills it (non-contiguous)
    assert store.file_size(1) == 12 * KiB
    assert len(store.ranges_for_read(1, 0, 12 * KiB)) >= 2


def test_store_rewrite_reuses_extents():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 8 * KiB)
    before = store.allocator.used
    ranges = store.ranges_for_write(1, 0, 8 * KiB)
    assert store.allocator.used == before
    assert ranges == [(0, 8 * KiB)]


def test_store_partial_overlap_write_allocates_only_gap():
    store = LocalStore(1 * MiB)
    store.ranges_for_write(1, 0, 8 * KiB)
    store.ranges_for_write(1, 4 * KiB, 8 * KiB)
    assert store.file_size(1) == 12 * KiB


def test_store_preallocate_twice_rejected():
    store = LocalStore(1 * MiB)
    store.preallocate(1, 4 * KiB)
    with pytest.raises(StorageError):
        store.preallocate(1, 4 * KiB)


def test_store_reserve_excludes_region():
    store = LocalStore(1 * MiB, reserve=512 * KiB)
    ranges = store.ranges_for_write(1, 0, 4 * KiB)
    assert ranges[0][0] == 512 * KiB
    with pytest.raises(StorageError):
        LocalStore(1 * MiB, reserve=1 * MiB)
