"""Additional PriorityStore / Store / Request edge cases."""

from repro.sim import Environment, PriorityStore, Store


def test_priority_store_items_sorted_snapshot():
    env = Environment()
    ps = PriorityStore(env)
    for item in [(5, "e"), (1, "a"), (3, "c")]:
        ps.put(item)
    assert ps.items == ((1, "a"), (3, "c"), (5, "e"))
    assert len(ps) == 3


def test_priority_store_put_wakes_waiter_with_minimum():
    env = Environment()
    ps = PriorityStore(env)
    got = []

    def consumer(env):
        item = yield ps.get()
        got.append(item)

    env.process(consumer(env))
    env.run()
    # Waiter pending; a put hands over the item directly.
    ps.put((2, "later"))
    env.run()
    assert got == [(2, "later")]


def test_store_interleaved_producers_consumers():
    env = Environment()
    store = Store(env)
    consumed = []

    def consumer(env, n):
        for _ in range(n):
            item = yield store.get()
            consumed.append(item)

    def producer(env, items, delay):
        for item in items:
            yield env.timeout(delay)
            store.put(item)

    env.process(consumer(env, 4))
    env.process(producer(env, ["a", "b"], 1.0))
    env.process(producer(env, ["c", "d"], 1.5))
    env.run()
    assert sorted(consumed) == ["a", "b", "c", "d"]
    # Arrival-time order: a(1.0) c(1.5) b(2.0) d(3.0)
    assert consumed == ["a", "c", "b", "d"]
