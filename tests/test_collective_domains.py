"""Unit tests for the collective engine's file-domain partitioning."""

from repro.config import ClusterConfig
from repro.mpi import MPIRun
from repro.mpi.collective import CollectiveEngine
from repro.pfs import Cluster
from repro.units import KiB, MiB


def make_engine(num_servers=4, aggregators=None):
    cluster = Cluster(ClusterConfig(num_servers=num_servers,
                                    client_jitter=0.0))
    run = MPIRun(cluster, nprocs=4)
    return CollectiveEngine(run, aggregators=aggregators)


def test_domains_cover_extent_exactly():
    eng = make_engine()
    lo, hi = 65 * KiB, 65 * KiB + 8 * 65 * KiB
    domains = eng._file_domains(lo, hi)
    assert sum(n for _off, n in domains) == hi - lo
    assert domains[0][0] == lo
    ends = [off + n for off, n in domains]
    starts = [off for off, _n in domains]
    assert starts[1:] == ends[:-1]  # contiguous, no overlap


def test_interior_domain_starts_are_stripe_aligned():
    eng = make_engine()
    unit = eng.stripe_unit
    domains = eng._file_domains(10 * KiB, 10 * KiB + 2 * MiB)
    for off, _n in domains[1:]:
        assert off % unit == 0


def test_domain_count_bounded_by_aggregators():
    eng = make_engine(aggregators=3)
    domains = eng._file_domains(0, 10 * MiB)
    assert 1 <= len(domains) <= 3 + 1


def test_tiny_extent_single_domain():
    eng = make_engine()
    domains = eng._file_domains(0, 4 * KiB)
    assert domains == [(0, 4 * KiB)]


def test_default_aggregator_count_is_server_count():
    eng = make_engine(num_servers=4)
    assert eng.aggregators == 4


def test_exchange_accounting():
    cluster = Cluster(ClusterConfig(num_servers=2, client_jitter=0.0))
    handle = cluster.create_file(2 * MiB)
    run = MPIRun(cluster, nprocs=4)

    def body(ctx):
        yield ctx.write_at_all(handle, ctx.rank * 64 * KiB, 64 * KiB)

    run.run_to_completion(body)
    assert run.collective.collective_calls == 1
    assert run.collective.exchanged_bytes == 4 * 64 * KiB
