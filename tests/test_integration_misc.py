"""Cross-cutting integration tests: determinism, saturation, harness."""

from repro.config import ClusterConfig, ServerConfig
from repro.devices import Op
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest, run_workload


def test_simulation_is_deterministic_end_to_end():
    """Same seed, same workload -> bit-identical timing results."""
    def once():
        cfg = ClusterConfig(num_servers=4, seed=99).with_ibridge(
            ssd_partition=16 * MiB)
        wl = MpiIoTest(nprocs=8, request_size=65 * KiB, file_size=8 * MiB,
                       op=Op.WRITE)
        res = run_workload(Cluster(cfg), wl)
        return res.makespan, res.throughput_mib_s, res.ssd_fraction

    assert once() == once()


def test_seed_changes_change_timings():
    def once(seed):
        cfg = ClusterConfig(num_servers=4, seed=seed)
        wl = MpiIoTest(nprocs=8, request_size=65 * KiB, file_size=8 * MiB)
        return run_workload(Cluster(cfg), wl).makespan

    assert once(1) != once(2)


def test_io_depth_limits_server_concurrency():
    """With io_depth=1 a server serializes jobs: throughput drops."""
    def once(depth):
        cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                            server=ServerConfig(io_depth=depth))
        wl = MpiIoTest(nprocs=8, request_size=64 * KiB, file_size=8 * MiB)
        return run_workload(Cluster(cfg), wl).throughput_mib_s

    assert once(16) > once(1)


def test_run_workload_without_drain_skips_writeback():
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        ssd_partition=16 * MiB)
    cluster = Cluster(cfg)
    wl = MpiIoTest(nprocs=4, request_size=4 * KiB, file_size=1 * MiB,
                   op=Op.WRITE)
    run_workload(cluster, wl, drain=False)
    dirty = sum(s.ibridge.mapping.dirty_bytes for s in cluster.servers)
    assert dirty > 0  # data still parked on the SSDs
    cluster.drain()
    dirty = sum(s.ibridge.mapping.dirty_bytes for s in cluster.servers)
    assert dirty == 0


def test_more_servers_more_throughput():
    def once(ns):
        cfg = ClusterConfig(num_servers=ns, client_jitter=0.0)
        wl = MpiIoTest(nprocs=16, request_size=64 * KiB, file_size=16 * MiB)
        return run_workload(Cluster(cfg), wl).throughput_mib_s

    assert once(8) > 1.5 * once(2)


def test_network_bottleneck_caps_throughput():
    from repro.config import NetworkConfig
    slow_net = NetworkConfig(bandwidth=10 * MiB)  # starve the wire
    cfg = ClusterConfig(num_servers=8, network=slow_net, client_jitter=0.0)
    wl = MpiIoTest(nprocs=16, request_size=64 * KiB, file_size=8 * MiB)
    res = run_workload(Cluster(cfg), wl)
    # Eight server NICs at 10 MiB/s bound aggregate read throughput.
    assert res.throughput_mib_s < 85


def test_single_server_single_rank_minimal_system():
    cfg = ClusterConfig(num_servers=1, client_jitter=0.0)
    wl = MpiIoTest(nprocs=1, request_size=64 * KiB, file_size=1 * MiB)
    res = run_workload(Cluster(cfg), wl)
    assert res.throughput_mib_s > 0
    assert len(res.requests) == 16


def test_fig2_combined_driver_runs():
    from repro.experiments import get
    res = get("fig2")(scale=1 / 640)
    assert len(res.rows) == 3  # three sub-figures summarized
    assert any("fig2a" in str(r[0]) for r in res.rows)
