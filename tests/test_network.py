"""Tests for the network fabric model."""

import pytest

from repro.config import NetworkConfig
from repro.net import Network
from repro.sim import Environment
from repro.units import MiB, US


def test_control_message_pays_overhead_and_latency():
    env = Environment()
    cfg = NetworkConfig(latency=10 * US, bandwidth=1000 * MiB,
                        message_overhead=5 * US)
    net = Network(env, cfg)
    done = net.send("a", "b", 0)
    env.run(until=done)
    assert env.now == pytest.approx(15 * US)


def test_payload_adds_wire_time():
    env = Environment()
    cfg = NetworkConfig(latency=0.0, bandwidth=100 * MiB, message_overhead=0.0)
    net = Network(env, cfg)
    done = net.send("a", "b", 50 * MiB)
    env.run(until=done)
    assert env.now == pytest.approx(0.5)


def test_concurrent_sends_share_sender_nic():
    env = Environment()
    cfg = NetworkConfig(latency=0.0, bandwidth=100 * MiB, message_overhead=0.0)
    net = Network(env, cfg)
    d1 = net.send("a", "b", 100 * MiB)
    d2 = net.send("a", "c", 100 * MiB)
    env.run(until=env.all_of([d1, d2]))
    # Serialized on a's egress: 1s + 1s.
    assert env.now == pytest.approx(2.0)


def test_distinct_senders_proceed_in_parallel():
    env = Environment()
    cfg = NetworkConfig(latency=0.0, bandwidth=100 * MiB, message_overhead=0.0)
    net = Network(env, cfg)
    d1 = net.send("a", "x", 100 * MiB)
    d2 = net.send("b", "y", 100 * MiB)
    env.run(until=env.all_of([d1, d2]))
    assert env.now == pytest.approx(1.0)


def test_stats_accumulate():
    env = Environment()
    net = Network(env, NetworkConfig())
    done = net.send("a", "b", 1024)
    env.run(until=done)
    assert net.stats.messages == 1
    assert net.stats.bytes == 1024
    assert net.stats.wire_time > 0
