"""Smoke tests at the paper's largest configuration sizes.

Kept small in bytes but large in entity counts (ranks, streams,
servers) to catch scaling bugs: queue bookkeeping, barrier fan-in,
stream garbage collection, T-broadcast fan-out.
"""

import pytest

from repro.config import ClusterConfig
from repro.devices import Op
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest, run_workload


@pytest.mark.parametrize("nprocs", [256, 512])
def test_many_ranks_complete(nprocs):
    cfg = ClusterConfig(num_servers=8)
    wl = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                   file_size=nprocs * 65 * KiB * 4, op=Op.READ)
    res = run_workload(Cluster(cfg), wl)
    assert len(res.requests) == nprocs * 4
    assert res.throughput_mib_s > 0


def test_many_ranks_with_ibridge_and_barrier():
    cfg = ClusterConfig(num_servers=8).with_ibridge(ssd_partition=32 * MiB)
    wl = MpiIoTest(nprocs=128, request_size=65 * KiB,
                   file_size=128 * 65 * KiB * 4, op=Op.WRITE,
                   use_barrier=True)
    res = run_workload(Cluster(cfg), wl)
    assert res.ssd_fraction > 0.05
    assert len(res.requests) == 128 * 4


def test_sixteen_servers_all_participate():
    cfg = ClusterConfig(num_servers=16)
    cluster = Cluster(cfg)
    wl = MpiIoTest(nprocs=32, request_size=64 * KiB, file_size=16 * MiB)
    res = run_workload(cluster, wl)
    assert res.throughput_mib_s > 0
    assert all(s.stats.jobs > 0 for s in cluster.servers)
