"""Tests for the workload models and the run harness."""

import pytest

from repro.config import ClusterConfig
from repro.devices import Op
from repro.errors import WorkloadError
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import (BTIO, IorMpiIo, MpiIoTest, TraceReplay,
                             btio_request_size, run_workload,
                             synthesize_trace)
from repro.workloads.composite import CompositeWorkload


def small_cluster(ibridge=False):
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0)
    if ibridge:
        cfg = cfg.with_ibridge(ssd_partition=16 * MiB)
    return Cluster(cfg)


# ---------------------------------------------------------------- mpi-io-test
def test_mpi_io_test_offsets_follow_paper_formula():
    wl = MpiIoTest(nprocs=4, request_size=64 * KiB, file_size=4 * MiB)
    offsets = []

    class FakeCtx:
        rank = 2
        def io(self, op, handle, offset, size):
            offsets.append(offset)
            return None
        def barrier(self):  # pragma: no cover
            return None

    gen = wl.body(FakeCtx())
    try:
        while True:
            next(gen)
    except StopIteration:
        pass
    n, s = 4, 64 * KiB
    assert offsets == [(k * n + 2) * s for k in range(wl.iterations)]


def test_mpi_io_test_runs_and_reports_throughput():
    cluster = small_cluster()
    wl = MpiIoTest(nprocs=4, request_size=64 * KiB, file_size=4 * MiB)
    res = run_workload(cluster, wl)
    assert res.total_bytes == 4 * MiB
    assert res.throughput_mib_s > 0
    assert len(res.requests) == wl.iterations * 4


def test_mpi_io_test_write_allocates_file():
    cluster = small_cluster()
    wl = MpiIoTest(nprocs=2, request_size=64 * KiB, file_size=2 * MiB,
                   op=Op.WRITE)
    res = run_workload(cluster, wl)
    assert res.total_bytes == 2 * MiB


def test_mpi_io_test_rejects_tiny_file():
    with pytest.raises(WorkloadError):
        MpiIoTest(nprocs=64, request_size=64 * KiB, file_size=1 * MiB)


def test_mpi_io_test_barrier_mode_runs():
    cluster = small_cluster()
    wl = MpiIoTest(nprocs=4, request_size=64 * KiB, file_size=2 * MiB,
                   use_barrier=True)
    res = run_workload(cluster, wl)
    assert res.throughput_mib_s > 0


# ---------------------------------------------------------------- ior
def test_ior_chunks_are_private():
    wl = IorMpiIo(nprocs=4, request_size=64 * KiB, file_size=4 * MiB)
    assert wl.chunk_size == 1 * MiB
    assert wl.requests_per_rank == 16
    assert wl.total_bytes == 4 * MiB


def test_ior_runs():
    cluster = small_cluster()
    wl = IorMpiIo(nprocs=4, request_size=65 * KiB, file_size=4 * MiB)
    res = run_workload(cluster, wl)
    assert res.throughput_mib_s > 0


# ---------------------------------------------------------------- btio
def test_btio_request_size_scaling():
    assert btio_request_size(9) == 2160
    assert 600 <= btio_request_size(100) <= 700
    # Monotone decreasing in nprocs.
    sizes = [btio_request_size(n) for n in (9, 16, 64, 100)]
    assert sizes == sorted(sizes, reverse=True)


def test_btio_runs_and_time_includes_compute():
    cluster = small_cluster()
    wl = BTIO(nprocs=4, steps=2, scale=0.001, compute_per_step=0.5)
    res = run_workload(cluster, wl)
    assert res.makespan > 2 * wl.compute_per_step * 0.99


def test_btio_all_requests_below_threshold():
    wl = BTIO(nprocs=16, steps=2, scale=0.001)
    assert wl.request_size < 20 * KiB


def test_btio_ibridge_redirects_nearly_everything():
    cluster = small_cluster(ibridge=True)
    wl = BTIO(nprocs=4, steps=2, scale=0.001, compute_per_step=0.01)
    res = run_workload(cluster, wl)
    # A handful of early writes may land on disk while T bootstraps.
    assert res.ssd_fraction > 0.95


# ---------------------------------------------------------------- replay
def test_trace_replay_single_rank():
    cluster = small_cluster()
    trace = synthesize_trace("CTH", requests=30, span=16 * MiB)
    wl = TraceReplay(trace, span=16 * MiB)
    res = run_workload(cluster, wl)
    assert len(res.requests) == 30
    assert res.mean_service_time > 0


def test_trace_replay_rejects_empty():
    with pytest.raises(WorkloadError):
        TraceReplay([])


# ---------------------------------------------------------------- composite
def test_composite_partitions_ranks():
    a = MpiIoTest(nprocs=2, request_size=64 * KiB, file_size=1 * MiB)
    b = MpiIoTest(nprocs=3, request_size=64 * KiB, file_size=1 * MiB)
    comp = CompositeWorkload([a, b])
    assert comp.nprocs == 5
    assert comp.rank_range(0) == range(0, 2)
    assert comp.rank_range(1) == range(2, 5)
    assert comp.total_bytes == a.total_bytes + b.total_bytes


def test_composite_runs_with_mixed_barriers():
    cluster = small_cluster()
    a = MpiIoTest(nprocs=2, request_size=64 * KiB, file_size=1 * MiB)
    b = BTIO(nprocs=2, steps=2, scale=0.0005, compute_per_step=0.01)
    comp = CompositeWorkload([a, b])
    res = run_workload(cluster, comp)
    assert res.throughput_mib_s > 0
    # Both parts' requests appear, attributable via rank ranges.
    ranks_a = {r.rank for r in res.requests if r.rank in comp.rank_range(0)}
    ranks_b = {r.rank for r in res.requests if r.rank in comp.rank_range(1)}
    assert ranks_a and ranks_b


def test_composite_empty_rejected():
    with pytest.raises(WorkloadError):
        CompositeWorkload([])


# ---------------------------------------------------------------- harness
def test_warm_runs_reset_measurement_state():
    cluster = small_cluster(ibridge=True)
    wl = MpiIoTest(nprocs=4, request_size=65 * KiB, file_size=4 * MiB)
    res = run_workload(cluster, wl, warm_runs=1)
    # Only the measured pass's requests are reported.
    assert len(res.requests) == wl.iterations * 4


def test_warm_runs_keep_cache_state():
    cluster = small_cluster(ibridge=True)
    wl = MpiIoTest(nprocs=4, request_size=65 * KiB, file_size=4 * MiB)
    run_workload(cluster, wl, warm_runs=1)
    cached = sum(len(s.ibridge.mapping) for s in cluster.servers)
    assert cached > 0
