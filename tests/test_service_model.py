"""Tests for iBridge's Eq. 1–3 service-time model."""

import pytest

from repro.config import IBridgeConfig, ReturnPolicy
from repro.core.service_model import (DiskServiceModel, GlobalTTable, TReport,
                                      fragment_return)
from repro.devices import HardDisk, Op, profile_device
from repro.units import GiB, KiB, MiB


@pytest.fixture(scope="module")
def profile():
    return profile_device(HardDisk())


def make_model(profile, policy=ReturnPolicy.EFFICIENCY):
    cfg = IBridgeConfig(enabled=True, return_policy=policy)
    return DiskServiceModel(profile, read_bw=85 * MiB, write_bw=80 * MiB,
                            stripe_unit=64 * KiB, config=cfg)


def test_initial_t_is_ideal_stripe_time(profile):
    model = make_model(profile)
    assert model.t_value == pytest.approx(64 * KiB / (85 * MiB))


def test_ewma_weights_follow_paper(profile):
    """Eq. 1: T_i = T_{i-1}/8 + sample * 7/8."""
    model = make_model(profile)
    t0 = model.t_value
    sample = model.sample(Op.READ, 1 * GiB, 64 * KiB, head=0)
    t1 = model.observe_disk(Op.READ, 1 * GiB, 64 * KiB, head=0)
    assert t1 == pytest.approx(t0 / 8 + sample * 7 / 8)


def test_ssd_observation_leaves_t_unchanged(profile):
    """Eq. 2."""
    model = make_model(profile)
    model.observe_disk(Op.READ, 1 * GiB, 64 * KiB, head=0)
    t = model.t_value
    assert model.observe_ssd() == t
    assert model.t_value == t


def test_efficiency_policy_boosts_small_requests(profile):
    """A 1 KiB fragment costing a full seek is very inefficient."""
    model = make_model(profile)
    small = model.sample(Op.READ, 1 * GiB, 1 * KiB, head=0)
    large = model.sample(Op.READ, 1 * GiB, 64 * KiB, head=0)
    assert small > large * 10


def test_paper_policy_small_requests_cheaper_per_request(profile):
    """The literal Eq. 1 sample is *smaller* for a fragment — the
    bistability documented in DESIGN.md."""
    model = make_model(profile, policy=ReturnPolicy.PAPER)
    small = model.sample(Op.READ, 1 * GiB, 1 * KiB, head=0)
    large = model.sample(Op.READ, 1 * GiB, 64 * KiB, head=0)
    assert small < large


def test_positive_return_for_fragment_on_busy_disk(profile):
    model = make_model(profile)
    ret = model.base_return(Op.READ, 5 * GiB, 2 * KiB, head=0)
    assert ret > 0


def test_return_sign_matches_t_direction(profile):
    model = make_model(profile)
    # Drive T high with expensive observations.
    for _ in range(5):
        model.observe_disk(Op.READ, 500 * GiB, 1 * KiB, head=0)
    # A cheap (contiguous, large) request now has negative return.
    ret = model.base_return(Op.READ, 0, 64 * KiB, head=0)
    assert ret < 0


# ---------------------------------------------------------------- T table
def test_t_table_max_and_second():
    table = GlobalTTable()
    for server, t in [(0, 1.0), (1, 3.0), (2, 2.0)]:
        table.update(TReport(server=server, t_value=t, time=0.0))
    t_max, t_sec, argmax = table.max_and_second([0, 1, 2])
    assert (t_max, t_sec, argmax) == (3.0, 2.0, 1)


def test_t_table_missing_servers_skipped():
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=1.0, time=0.0))
    t_max, t_sec, argmax = table.max_and_second([0, 7])
    assert argmax == 0
    assert t_max == t_sec == 1.0


def test_t_table_empty():
    table = GlobalTTable()
    assert table.max_and_second([1, 2]) == (0.0, 0.0, None)
    assert table.get(1) is None


# ---------------------------------------------------------------- Eq. 3
def test_fragment_return_adds_magnification_when_slowest():
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.010, time=0.0))
    table.update(TReport(server=1, t_value=0.004, time=0.0))
    # This server (0) is the slowest among siblings: Eq. 3 applies.
    ret = fragment_return(0.001, this_server=0, this_t=0.010,
                          sibling_servers=[1], n_siblings=1, table=table)
    assert ret == pytest.approx(0.001 + (0.010 - 0.004) * 1)


def test_fragment_return_scales_with_sibling_count():
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.010, time=0.0))
    table.update(TReport(server=1, t_value=0.004, time=0.0))
    r1 = fragment_return(0.0, 0, 0.010, [1], 1, table)
    r4 = fragment_return(0.0, 0, 0.010, [1, 2, 3, 4], 4, table)
    assert r4 == pytest.approx(r1 * 4)


def test_fragment_return_unchanged_when_not_slowest():
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.002, time=0.0))
    table.update(TReport(server=1, t_value=0.010, time=0.0))
    ret = fragment_return(0.001, this_server=0, this_t=0.002,
                          sibling_servers=[1], n_siblings=1, table=table)
    assert ret == pytest.approx(0.001)


def test_fragment_return_disabled():
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.010, time=0.0))
    ret = fragment_return(0.001, 0, 0.010, [1], 1, table, enabled=False)
    assert ret == pytest.approx(0.001)


def test_fragment_return_uses_live_t_over_stale_self_report():
    """A stale broadcast entry for this server must not act as T^max:
    the boost is (live T − max over *other* servers) * n."""
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=1.0, time=0.0))  # stale, huge
    table.update(TReport(server=1, t_value=0.004, time=0.0))
    ret = fragment_return(0.001, this_server=0, this_t=0.010,
                          sibling_servers=[1], n_siblings=1, table=table)
    assert ret == pytest.approx(0.001 + (0.010 - 0.004) * 1)


def test_fragment_return_stale_self_report_does_not_shadow_second_max():
    """A stale high self-report must not become T^sec_max either (that
    would zero the boost when we are genuinely the slowest)."""
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.008, time=0.0))  # stale
    table.update(TReport(server=1, t_value=0.002, time=0.0))
    ret = fragment_return(0.0, this_server=0, this_t=0.010,
                          sibling_servers=[1], n_siblings=1, table=table)
    assert ret == pytest.approx((0.010 - 0.002) * 1)


def test_fragment_return_dedupes_self_in_sibling_list():
    """Layouts that include this server among the siblings must not let
    its own (stale) table entry masquerade as another server's T."""
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=1.0, time=0.0))
    table.update(TReport(server=1, t_value=0.004, time=0.0))
    with_self = fragment_return(0.0, 0, 0.010, [0, 1], 2, table)
    without = fragment_return(0.0, 0, 0.010, [1], 2, table)
    assert with_self == pytest.approx(without)
    assert with_self == pytest.approx((0.010 - 0.004) * 2)


def test_fragment_return_no_boost_without_sibling_knowledge():
    """With no broadcast data about any *other* server the term cannot
    claim this disk gates the request."""
    table = GlobalTTable()
    table.update(TReport(server=0, t_value=0.010, time=0.0))  # self only
    ret = fragment_return(0.001, 0, 0.010, [1, 2], 2, table)
    assert ret == pytest.approx(0.001)
