"""Tests for offline seek-curve profiling."""

import pytest

from repro.config import HDDConfig
from repro.devices import HardDisk, Op, profile_device
from repro.units import GiB, KiB


@pytest.fixture(scope="module")
def profile():
    return profile_device(HardDisk(), points=24)


def test_profile_recovers_positioning_times(profile):
    """The fitted curve predicts the model's actual positioning cost."""
    disk = HardDisk()
    disk.serve(Op.READ, 0, 4 * KiB)
    for dist in (1 * GiB, 10 * GiB, 100 * GiB, 500 * GiB):
        actual = disk.positioning_time(Op.READ, disk.head + dist, 4 * KiB)
        predicted = profile.positioning(dist)
        assert predicted == pytest.approx(actual, rel=0.15)


def test_profile_write_penalty_close_to_model(profile):
    cfg = HDDConfig()
    assert profile.write_penalty == pytest.approx(cfg.write_settle, rel=0.2)


def test_profile_zero_distance_free(profile):
    assert profile.positioning(0) == 0.0


def test_profile_monotone_in_distance(profile):
    times = [profile.positioning(d) for d in (1 * GiB, 8 * GiB, 64 * GiB, 512 * GiB)]
    assert times == sorted(times)


def test_profile_requires_enough_points():
    from repro.errors import StorageError
    with pytest.raises(StorageError):
        profile_device(HardDisk(), points=2)
