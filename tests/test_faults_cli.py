"""The offline fault-plan linter: ``python -m repro.faults validate``."""

import json

import pytest

from repro.faults.cli import main


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


VALID = {
    "name": "demo",
    "events": [
        {"kind": "device_slow", "server": 0, "device": "hdd", "disk": 0,
         "start": 0.01, "duration": 0.05, "latency_mult": 4.0},
        {"kind": "server_crash", "server": 1, "start": 0.02,
         "duration": 0.03},
    ],
}


def test_validate_accepts_a_well_formed_plan(tmp_path, capsys):
    path = _write(tmp_path, "plan.json", VALID)
    assert main(["validate", path]) == 0
    out = capsys.readouterr().out
    assert "ok: plan 'demo': 2 event(s)" in out
    assert "horizon 0.06s" in out
    assert "device_slow" in out and "server_crash" in out


def test_validate_rejects_overlapping_windows(tmp_path, capsys):
    bad = {"name": "demo", "events": [
        dict(VALID["events"][0]),
        dict(VALID["events"][0], start=0.02, latency_mult=2.0),
    ]}
    path = _write(tmp_path, "plan.json", bad)
    assert main(["validate", path]) == 1
    assert "overlapping" in capsys.readouterr().err


def test_validate_rejects_schema_violations(tmp_path, capsys):
    path = _write(tmp_path, "plan.json", {
        "name": "demo",
        "events": [{"kind": "net_drop", "start": 0.0, "duration": 0.1,
                    "drop_prob": 1.5}]})
    assert main(["validate", path]) == 1
    assert "invalid:" in capsys.readouterr().err


def test_validate_checks_topology_bounds_when_asked(tmp_path, capsys):
    path = _write(tmp_path, "plan.json", VALID)
    # Fine without topology flags and with a big-enough cluster...
    assert main(["validate", path, "--num-servers", "4",
                 "--disks-per-server", "1"]) == 0
    capsys.readouterr()
    # ...but server 1 does not exist in a 1-server cluster,
    assert main(["validate", path, "--num-servers", "1"]) == 1
    assert "targets server 1" in capsys.readouterr().err
    # and disk bounds only bind when --disks-per-server is given.
    path2 = _write(tmp_path, "disk.json", {
        "name": "d", "events": [
            {"kind": "device_slow", "server": 0, "device": "hdd",
             "disk": 3, "start": 0.0, "duration": 0.1,
             "latency_mult": 2.0}]})
    assert main(["validate", path2, "--num-servers", "2",
                 "--disks-per-server", "2"]) == 1
    assert "targets disk 3" in capsys.readouterr().err


def test_validate_reports_unreadable_files(tmp_path, capsys):
    assert main(["validate", str(tmp_path / "missing.json")]) == 1
    assert "cannot read" in capsys.readouterr().err
    bad = tmp_path / "garbage.json"
    bad.write_text("{not json")
    assert main(["validate", str(bad)]) == 1
    assert "invalid:" in capsys.readouterr().err


def test_disks_flag_requires_num_servers(tmp_path, capsys):
    path = _write(tmp_path, "plan.json", VALID)
    assert main(["validate", path, "--disks-per-server", "2"]) == 1
    assert "--num-servers" in capsys.readouterr().err


def test_module_entry_point_exists():
    import repro.faults.__main__  # noqa: F401
    pytest.importorskip("repro.faults.cli")
