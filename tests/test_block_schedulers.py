"""Unit tests for the Noop, Deadline and CFQ schedulers."""

import pytest

from repro.block import CFQScheduler, DeadlineScheduler, NoopScheduler
from repro.block.request import BlockRequest
from repro.config import SchedulerConfig
from repro.devices import Op
from repro.sim import Environment
from repro.units import KiB


def mkreq(env, op=Op.READ, lbn=0, nbytes=4 * KiB, stream=0):
    return BlockRequest(env, op, lbn, nbytes, stream=stream)


# ---------------------------------------------------------------- noop
def test_noop_fifo_order():
    env = Environment()
    sched = NoopScheduler(SchedulerConfig(kind="noop"))
    a = mkreq(env, lbn=100 * KiB)
    b = mkreq(env, lbn=0)
    sched.add(a)
    sched.add(b)
    d1, _ = sched.select(0.0)
    d2, _ = sched.select(0.0)
    assert d1.members == [a]
    assert d2.members == [b]


def test_noop_merges_contiguous():
    env = Environment()
    sched = NoopScheduler(SchedulerConfig(kind="noop"))
    a = mkreq(env, lbn=0, nbytes=4 * KiB)
    b = mkreq(env, lbn=4 * KiB, nbytes=4 * KiB)
    c = mkreq(env, lbn=8 * KiB, nbytes=4 * KiB)
    for r in (a, b, c):
        sched.add(r)
    d, _ = sched.select(0.0)
    assert d.lbn == 0 and d.nbytes == 12 * KiB
    assert len(d.members) == 3
    assert sched.empty


def test_noop_front_merge():
    env = Environment()
    sched = NoopScheduler(SchedulerConfig(kind="noop"))
    a = mkreq(env, lbn=8 * KiB, nbytes=4 * KiB)
    b = mkreq(env, lbn=4 * KiB, nbytes=4 * KiB)
    sched.add(a)
    sched.add(b)
    d, _ = sched.select(0.0)
    assert d.lbn == 4 * KiB and d.nbytes == 8 * KiB


def test_noop_does_not_merge_across_ops():
    env = Environment()
    sched = NoopScheduler(SchedulerConfig(kind="noop"))
    sched.add(mkreq(env, op=Op.READ, lbn=0))
    sched.add(mkreq(env, op=Op.WRITE, lbn=4 * KiB))
    d, _ = sched.select(0.0)
    assert len(d.members) == 1


def test_noop_respects_merge_limit():
    env = Environment()
    sched = NoopScheduler(SchedulerConfig(kind="noop", max_merge_bytes=8 * KiB))
    for i in range(4):
        sched.add(mkreq(env, lbn=i * 4 * KiB))
    d, _ = sched.select(0.0)
    assert d.nbytes == 8 * KiB


def test_noop_empty_select():
    sched = NoopScheduler(SchedulerConfig(kind="noop"))
    assert sched.select(0.0) == (None, None)


# ---------------------------------------------------------------- deadline
def test_deadline_sweeps_by_lbn():
    env = Environment()
    sched = DeadlineScheduler(SchedulerConfig(kind="deadline"))
    far = mkreq(env, lbn=100 * KiB)
    near = mkreq(env, lbn=10 * KiB)
    sched.add(far)
    sched.add(near)
    d1, _ = sched.select(0.0)
    assert d1.members == [near]


def test_deadline_age_bound_forces_oldest():
    env = Environment()
    sched = DeadlineScheduler(SchedulerConfig(kind="deadline"), max_age=0.1)
    old = mkreq(env, lbn=500 * KiB)
    sched.add(old)
    sched.add(mkreq(env, lbn=10 * KiB))
    d, _ = sched.select(1.0)  # old request has aged out
    assert old in d.members


def test_deadline_merges_cross_stream():
    """A global elevator reassembles interleaved streams (ablation)."""
    env = Environment()
    sched = DeadlineScheduler(SchedulerConfig(kind="deadline"))
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=2))
    d, _ = sched.select(0.0)
    assert d.nbytes == 8 * KiB


# ---------------------------------------------------------------- CFQ
def cfq(quantum=4, idle=0.0005):
    return CFQScheduler(SchedulerConfig(kind="cfq", quantum=quantum,
                                        idle_window=idle))


def test_cfq_serves_single_stream_in_lbn_order():
    env = Environment()
    sched = cfq()
    reqs = [mkreq(env, lbn=lbn, stream=1)
            for lbn in (100 * KiB, 8 * KiB, 300 * KiB)]
    for r in reqs:
        sched.add(r)
    order = []
    while not sched.empty:
        d, _ = sched.select(0.0)
        order.append(d.lbn)
    assert order == sorted(order)


def test_cfq_merges_within_stream():
    env = Environment()
    sched = cfq()
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=1))
    d, _ = sched.select(0.0)
    assert d.nbytes == 8 * KiB


def test_cfq_global_merge_across_streams_by_default():
    """Linux elevator semantics: insert-time merging is process-blind."""
    env = Environment()
    sched = cfq()
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=2))
    d, _ = sched.select(0.0)
    assert d.nbytes == 8 * KiB
    assert sched.insert_merges == 1


def test_cfq_per_stream_merge_only_when_global_disabled():
    """Ablation: restricting merges to a stream isolates the paper's
    cross-process merge-failure effect."""
    env = Environment()
    sched = CFQScheduler(SchedulerConfig(kind="cfq", global_merge=False))
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=2))
    d, _ = sched.select(0.0)
    assert d.nbytes == 4 * KiB


def test_cfq_no_merge_once_partner_dispatched():
    """The timing race: a late-arriving contiguous request cannot merge
    with a partner that has already been dispatched."""
    env = Environment()
    sched = cfq(idle=0.0)
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    d1, _ = sched.select(0.0)
    assert d1.nbytes == 4 * KiB
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=2))
    d2, _ = sched.select(0.0)
    assert d2.nbytes == 4 * KiB


def test_cfq_round_robin_with_quantum():
    env = Environment()
    sched = cfq(quantum=2, idle=0.0)
    for i in range(4):
        sched.add(mkreq(env, lbn=i * 100 * KiB, stream=1))
    for i in range(4):
        sched.add(mkreq(env, lbn=(10 + i) * 100 * KiB, stream=2))
    streams = []
    while not sched.empty:
        d, _ = sched.select(0.0)
        streams.append(d.members[0].stream)
    assert streams == [1, 1, 2, 2, 1, 1, 2, 2]


def test_cfq_idles_for_active_stream():
    env = Environment()
    sched = cfq(idle=0.001)
    sched.add(mkreq(env, lbn=0, stream=1))
    d, _ = sched.select(0.0)
    assert d is not None
    # Stream 1 drained; another stream waits, but CFQ idles first.
    sched.add(mkreq(env, lbn=100 * KiB, stream=2))
    d, hint = sched.select(0.0)
    assert d is None
    assert hint == pytest.approx(0.001)
    # After the window expires, stream 2 is served.
    d, _ = sched.select(0.002)
    assert d.members[0].stream == 2


def test_cfq_idle_cancelled_by_anticipated_arrival():
    env = Environment()
    sched = cfq(idle=0.001)
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.select(0.0)
    sched.add(mkreq(env, lbn=100 * KiB, stream=2))
    d, hint = sched.select(0.0)
    assert d is None  # idling for stream 1
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=1))
    d, _ = sched.select(0.0005)
    assert d is not None and d.members[0].stream == 1


def test_cfq_zero_idle_window_never_waits():
    env = Environment()
    sched = cfq(idle=0.0)
    sched.add(mkreq(env, lbn=0, stream=1))
    sched.select(0.0)
    sched.add(mkreq(env, lbn=100 * KiB, stream=2))
    d, hint = sched.select(0.0)
    assert d is not None


def test_cfq_pending_count_tracks_merges():
    env = Environment()
    sched = cfq()
    sched.add(mkreq(env, lbn=0, nbytes=4 * KiB, stream=1))
    sched.add(mkreq(env, lbn=4 * KiB, nbytes=4 * KiB, stream=1))
    assert len(sched) == 2
    sched.select(0.0)
    assert len(sched) == 0
