"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(0.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [1.5, 2.0]


def test_timeout_value_passed_back():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42
    assert env.now == 2.0


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_to_process():
    env = Environment()
    ev = env.event()
    caught = []

    def proc(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_raises_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError):
        env.run()


def test_process_exception_fails_process_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    p = env.process(proc(env))
    with pytest.raises(KeyError):
        env.run(until=p)


def test_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 1.0))  # same time: creation order wins
    env.process(proc(env, "c", 0.5))
    env.run()
    assert order == ["c", "a", "b"]


def test_waiting_on_another_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(2.0, "done")]


def test_all_of_waits_for_all():
    env = Environment()
    times = []

    def proc(env):
        t1, t2 = env.timeout(1.0, "x"), env.timeout(3.0, "y")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert set(result.values()) == {"x", "y"}

    env.process(proc(env))
    env.run()
    assert times == [3.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        yield env.any_of([env.timeout(5.0), env.timeout(1.0)])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_interrupt_wakes_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(1.0, "wake up")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_peek_and_step():
    env = Environment()
    env.timeout(2.0)
    assert env.peek() == 2.0
    env.step()
    assert env.now == 2.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_event_value_before_trigger_is_error():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_callback_after_processed_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_run_until_past_time_is_error():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


# -- determinism regressions ------------------------------------------
# The engine's hot paths (inlined heap pushes, bare-slot bootstrap
# events, the run()-loop fast path) must never change the schedule: the
# heap entry layout is (time, priority, seq, event) with a monotone seq
# tie-break, and every fast path consumes seq numbers exactly like the
# straightforward implementation it replaced.

def _mixed_workload(env, log):
    """Processes, timeouts, events and interrupts with many ties."""

    def worker(env, ident):
        for step in range(4):
            yield env.timeout(0.5 * (ident % 3))
            log.append((env.now, ident, step))

    def poker(env, victim):
        yield env.timeout(1.0)
        if victim.is_alive:
            victim.interrupt("poke")

    workers = [env.process(worker(env, i)) for i in range(6)]
    env.process(poker(env, workers[0]))
    return workers


def test_schedule_snapshot_is_reproducible():
    """Same program -> identical queue snapshots, run after run."""
    snaps = []
    for _ in range(2):
        env = Environment()
        log = []

        def guarded(env, p):
            try:
                yield p
            except Interrupt:
                pass

        for p in _mixed_workload(env, log):
            env.process(guarded(env, p))
        # Snapshot mid-run: advance a few events, snapshot, finish.
        for _ in range(5):
            env.step()
        snaps.append((env.queue_snapshot(), tuple(log)))
        env.run()
        snaps.append(tuple(log))
    assert snaps[0] == snaps[2]
    assert snaps[1] == snaps[3]


def test_queue_snapshot_limit_is_a_prefix():
    """queue_snapshot(limit=k) == queue_snapshot()[:k] (nsmallest path)."""
    env = Environment()
    # Scrambled deadlines with deliberate ties: the seq tie-break must
    # order them identically through both the sorted() and nsmallest()
    # paths.
    for i in range(50):
        env.timeout(float((i * 7) % 11))
    full = env.queue_snapshot()
    assert len(full) == 50
    for k in (0, 1, 7, 50, 99):
        assert env.queue_snapshot(limit=k) == full[:k]


def test_seq_numbers_are_consumed_per_scheduling():
    """Spawn/succeed/timeout each consume exactly one seq number."""
    env = Environment()
    env.timeout(1.0)
    before = env.queue_snapshot()
    assert [s for (_, _, s, _) in before] == [1]

    def proc(env):
        yield env.timeout(2.0)

    env.process(proc(env))  # bootstrap event: seq 2
    ev = env.event()
    ev.succeed("x")  # seq 3
    after = env.queue_snapshot()
    assert [s for (_, _, s, _) in after] == [2, 3, 1]  # urgent first at t=0
    env.run()
