"""Tests for the partitioned-horizon parallel engine (repro.sim.parallel).

The contract under test, in order of importance:

* ``shards=1`` is **bit-identical** to the serial engine — same digest
  over every behavior-visible field of the result.
* Sharded runs are **deterministic**: a fixed ``(seed, shards)`` pair
  reproduces the same digest run over run, and the process driver
  matches the inline driver exactly.
* Sharding never loses work: every shard count completes the serial
  run's requests and moves the same bytes, and the cross-shard
  conservation ledger agrees (``xshard_conserved``).
* Fault plans compose with sharding: partitioned injectors replay the
  serial transition log (modulo shard tags), recovery telemetry merges
  at the coordinator, and client retry works across the mailbox.
* Features the protocol cannot support (barriers, collectives) fail
  loudly, not wrongly.
* The experiment-matrix cache treats the shard count as context: a
  result computed at one shard count is never replayed at another.
"""

import warnings

import pytest

from repro.config import ClusterConfig
from repro.devices.base import Op
from repro.errors import ConfigError, WorkloadError
from repro.experiments import common as exp_common
from repro.experiments.common import measure, warn_if_oversubscribed
from repro.faults import FaultPlan, fail_slow
from repro.pfs.cluster import Cluster
from repro.sim.parallel import (analyze_shard_profile, format_shard_profile,
                                run_digest, run_sharded_workload)
from repro.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.mpi_io_test import MpiIoTest


def _cfg(**overrides) -> ClusterConfig:
    return ClusterConfig(num_servers=4, client_jitter=0.0, **overrides)


def _workload(op: Op = Op.READ) -> MpiIoTest:
    # 4 ranks on 4 client nodes: a 2-shard split owns 2 nodes each.
    return MpiIoTest(nprocs=4, request_size=65 * KiB, file_size=2 * MiB,
                     op=op)


# ------------------------------------------------------- bit-identity
def test_shards1_is_bit_identical_to_serial():
    serial = run_workload(Cluster(_cfg()), _workload())
    sharded = run_sharded_workload(_cfg(shards=1), _workload())
    assert run_digest(sharded) == run_digest(serial)


def test_sharded_runs_are_deterministic():
    cfg = _cfg(shards=2, shard_mode="inline")
    first = run_sharded_workload(cfg, _workload())
    second = run_sharded_workload(cfg, _workload())
    assert run_digest(first) == run_digest(second)
    assert first.extra["shards"] == 2.0
    assert first.extra["shard_windows"] > 0


def test_process_driver_matches_inline_driver():
    inline = run_sharded_workload(_cfg(shards=2, shard_mode="inline"),
                                  _workload())
    proc = run_sharded_workload(_cfg(shards=2, shard_mode="process"),
                                _workload())
    assert run_digest(proc) == run_digest(inline)


def test_inline_sharded_run_leaves_serial_engine_bit_identical():
    # The inline driver swaps the module-global request-id counter per
    # shard call; a serial run after a sharded one must not notice.
    before = run_workload(Cluster(_cfg()), _workload())
    run_sharded_workload(_cfg(shards=2, shard_mode="inline"), _workload())
    after = run_workload(Cluster(_cfg()), _workload())
    assert run_digest(after) == run_digest(before)


# ------------------------------------------------------- conservation
@pytest.mark.parametrize("op", [Op.READ, Op.WRITE])
def test_sharded_run_completes_the_serial_requests(op):
    serial = run_workload(Cluster(_cfg()), _workload(op))
    sharded = run_sharded_workload(_cfg(shards=2), _workload(op))
    assert len(sharded.requests) == len(serial.requests)
    assert (sum(r.nbytes for r in sharded.requests)
            == sum(r.nbytes for r in serial.requests))
    # Same request population, keyed by identity (ids are per-shard).
    def key(r):
        return (r.rank, r.offset, r.nbytes, r.op)
    assert sorted(map(key, sharded.requests)) == \
        sorted(map(key, serial.requests))
    assert all(r.complete_time is not None for r in sharded.requests)
    assert sharded.extra["xshard_conserved"] == 1.0


def test_sharded_strict_audit_passes():
    cfg = _cfg(shards=2).with_audit()
    result = run_sharded_workload(cfg, _workload(Op.WRITE))
    assert result.audit_verdict["ok"]
    # ``checks`` lists only checks that *violated* (serial semantics);
    # a clean run records conservation in extra instead.
    assert "xshard-conservation" not in result.audit_verdict["checks"]
    assert result.extra["xshard_conserved"] == 1.0


def test_sharded_ibridge_with_warm_pass_runs_clean():
    cfg = _cfg(shards=2).with_ibridge(ssd_partition=8 * MiB).with_audit()
    first = run_sharded_workload(cfg, _workload(), warm_runs=1)
    second = run_sharded_workload(cfg, _workload(), warm_runs=1)
    assert first.audit_verdict["ok"]
    assert run_digest(first) == run_digest(second)
    assert 0.0 <= first.ssd_fraction <= 1.0


# ---------------------------------------------------- barrier profiler
def test_barrier_profile_accounts_window_wall_time_exactly():
    result = run_sharded_workload(_cfg(shards=2, shard_mode="inline"),
                                  _workload())
    profile = result.extra["shard_profile"]
    assert profile["nshards"] == 2
    assert profile["lookahead"] > 0
    windows = profile["windows"]
    assert len(windows) == int(result.extra["shard_windows"])
    for w in windows:
        assert w["width"] > 0
        for field in ("busy_ns", "idle_ns", "wait_ns", "events",
                      "sent", "recv"):
            assert len(w[field]) == 2
        # The accounting identity: every shard's busy + idle + wait
        # equals the window's wall time *exactly* (integer ns, no
        # float rounding), and the gating shard is the one that
        # waited zero.
        for k in range(2):
            assert (w["busy_ns"][k] + w["idle_ns"][k] + w["wait_ns"][k]
                    == w["wall_ns"])
        assert w["wait_ns"][w["gating"]] == 0


def test_barrier_profile_analysis_names_bottleneck():
    result = run_sharded_workload(_cfg(shards=2, shard_mode="inline"),
                                  _workload())
    profile = result.extra["shard_profile"]
    a = analyze_shard_profile(profile)
    assert a["nshards"] == 2 and a["windows"] == len(profile["windows"])
    # Totals are the column sums of the window records.
    for field in ("busy_ns", "idle_ns", "wait_ns", "events"):
        for k in range(2):
            assert a[field][k] == sum(w[field][k]
                                      for w in profile["windows"])
    assert sum(a["gated_windows"]) == a["windows"]
    assert a["bottleneck"] in (0, 1)
    assert 0.0 < a["efficiency"] <= 1.0
    table = format_shard_profile(profile)
    assert "parallel efficiency" in table
    assert f"bottleneck: shard {a['bottleneck']}" in table


def test_barrier_profile_is_excluded_from_run_digest():
    # The profile is host wall-clock telemetry: two identical simulated
    # runs profile differently, so the digest must not see it.
    result = run_sharded_workload(_cfg(shards=2, shard_mode="inline"),
                                  _workload())
    with_profile = run_digest(result)
    del result.extra["shard_profile"]
    assert run_digest(result) == with_profile


# ---------------------------------------------------- faults under shards
def _fault_plan() -> FaultPlan:
    # Targeted-only events (no broadcast kinds) with fixed windows, so
    # the merged transition log is comparable across shard counts.
    return FaultPlan(name="t", events=(
        fail_slow(0, 2.0, start=0.001, duration=0.01),
        fail_slow(3, 3.0, start=0.002, duration=0.01),
    ))


def test_faulted_shards1_is_bit_identical_to_serial():
    serial = run_workload(Cluster(_cfg(), fault_plan=_fault_plan()),
                          _workload())
    sharded = run_sharded_workload(_cfg(shards=1), _workload(),
                                   fault_plan=_fault_plan())
    assert run_digest(sharded) == run_digest(serial)


def test_faulted_sharded_run_is_deterministic_and_audited():
    cfg = _cfg(shards=2, shard_mode="inline").with_audit()
    first = run_sharded_workload(cfg, _workload(),
                                 fault_plan=_fault_plan())
    second = run_sharded_workload(cfg, _workload(),
                                  fault_plan=_fault_plan())
    assert run_digest(first) == run_digest(second)
    assert first.audit_verdict["ok"]
    assert first.recovery["timeouts"] == 0.0
    assert all(r.complete_time is not None for r in first.requests)


def test_injector_records_match_across_shard_counts():
    serial = run_workload(Cluster(_cfg(), fault_plan=_fault_plan()),
                          _workload())
    sharded = run_sharded_workload(_cfg(shards=2), _workload(),
                                   fault_plan=_fault_plan())

    def strip(events):
        return [{k: v for k, v in e.items() if k != "shard"}
                for e in events]

    assert strip(sharded.fault_events) == serial.fault_events
    # Every targeted event was driven by the shard owning its server.
    for e in sharded.fault_events:
        assert e["shard"] == e["event"]["server"] % 2


def test_crash_recovery_and_retry_across_the_mailbox():
    from repro.faults import server_outage
    plan = FaultPlan(name="crash", events=(
        server_outage(1, start=0.002, duration=0.01),))
    cfg = (_cfg(shards=2, shard_mode="inline")
           .with_retry(timeout=0.005, max_retries=20))
    first = run_sharded_workload(cfg, _workload(), fault_plan=plan)
    second = run_sharded_workload(cfg, _workload(), fault_plan=plan)
    assert run_digest(first) == run_digest(second)
    assert first.recovery["server_crashes"] == 1.0
    assert first.recovery["timeouts"] > 0
    assert first.recovery["retries"] > 0
    assert all(r.complete_time is not None for r in first.requests)


def test_net_fault_window_is_broadcast_and_deterministic():
    from repro.faults.plan import FaultEvent, FaultKind
    plan = FaultPlan(name="net", events=(
        FaultEvent(kind=FaultKind.NET_DROP, server=1, start=0.0,
                   duration=0.01, drop_prob=0.3),))
    cfg = (_cfg(shards=2, shard_mode="inline")
           .with_retry(timeout=0.005, max_retries=20))
    first = run_sharded_workload(cfg, _workload(), fault_plan=plan)
    second = run_sharded_workload(cfg, _workload(), fault_plan=plan)
    assert run_digest(first) == run_digest(second)
    # Broadcast kind: both shards installed the window on their fabric
    # view, so the merged log carries one begin/end pair per shard.
    begins = [e for e in first.fault_events if e["phase"] == "begin"]
    assert sorted(e["shard"] for e in begins) == [0, 1]
    assert all(r.complete_time is not None for r in first.requests)


def test_process_driver_matches_inline_driver_under_faults():
    inline = run_sharded_workload(_cfg(shards=2, shard_mode="inline"),
                                  _workload(), fault_plan=_fault_plan())
    proc = run_sharded_workload(_cfg(shards=2, shard_mode="process"),
                                _workload(), fault_plan=_fault_plan())
    assert run_digest(proc) == run_digest(inline)
    assert proc.fault_events == inline.fault_events


def test_measure_threads_fault_plans_to_the_sharded_engine():
    result, cluster = measure(_cfg(shards=2), _workload(),
                              fault_plan=_fault_plan())
    assert cluster is None
    assert result.extra["shards"] == 2.0
    assert len(result.fault_events) == 4
    assert result.recovery["timeouts"] == 0.0


# ------------------------------------------------ unsupported features
def test_barrier_workloads_are_rejected_with_shards():
    workload = MpiIoTest(nprocs=4, request_size=65 * KiB,
                         file_size=1 * MiB, use_barrier=True)
    with pytest.raises(WorkloadError):
        run_sharded_workload(_cfg(shards=2), workload)


def test_collective_workloads_are_rejected_with_shards():
    workload = MpiIoTest(nprocs=4, request_size=65 * KiB,
                         file_size=1 * MiB, collective=True)
    with pytest.raises(WorkloadError):
        run_sharded_workload(_cfg(shards=2), workload)


# ------------------------------------------------------- configuration
def test_shard_config_validation():
    with pytest.raises(ConfigError):
        _cfg(shards=0).validate()
    with pytest.raises(ConfigError):
        _cfg(shards=2, shard_mode="threads").validate()
    with pytest.raises(ConfigError):
        _cfg(shards=2, shard_lookahead=0.0).validate()
    cfg = _cfg().with_shards(4, shard_mode="inline")
    assert cfg.shards == 4 and cfg.shard_mode == "inline"


def test_measure_serial_fallback_when_cluster_needed():
    # Callers that inspect the finished cluster get the serial engine
    # (plus a one-time warning), never a silently missing cluster.
    exp_common._serial_fallback_warned = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result, cluster = measure(_cfg(shards=2), _workload(),
                                  need_cluster=True)
    assert cluster is not None
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    serial = run_workload(Cluster(_cfg()), _workload())
    assert run_digest(result) == run_digest(serial)


def test_oversubscription_warns_once(monkeypatch):
    monkeypatch.setattr(exp_common, "_oversubscribed_warned", False)
    import os
    cpus = os.cpu_count() or 1
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert warn_if_oversubscribed(jobs=cpus, shards=2) is True
        assert warn_if_oversubscribed(jobs=cpus, shards=2) is False
    assert len(caught) == 1
    monkeypatch.setattr(exp_common, "_oversubscribed_warned", False)
    assert warn_if_oversubscribed(jobs=1, shards=1) is False


def test_cache_key_includes_shard_context(tmp_path):
    from repro.experiments.runner import cell, run_cells
    cells = [cell("tests.test_runner:_probe_cell", a=11)]
    run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    exp_common.set_default_shards(2)
    try:
        second = run_cells(cells, jobs=1, cache=True,
                           cache_dir=str(tmp_path))
        assert second.executed == 1 and second.cached == 0
        third = run_cells(cells, jobs=1, cache=True,
                          cache_dir=str(tmp_path))
        assert third.executed == 0 and third.cached == 1
    finally:
        exp_common.set_default_shards(1)
    fourth = run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    assert fourth.executed == 0 and fourth.cached == 1
