"""Tests for metrics and report formatting."""

import pytest

from repro.analysis import (LatencyStats, RunResult, format_histogram,
                            format_table, improvement, reduction)
from repro.devices import Op
from repro.pfs.messages import ParentRequest
from repro.units import MiB


def make_request(latency, op=Op.READ, nbytes=1024):
    req = ParentRequest(op=op, handle=1, offset=0, nbytes=nbytes, rank=0)
    req.submit_time = 0.0
    req.complete_time = latency
    return req


def test_throughput_computation():
    res = RunResult(name="x", makespan=2.0, total_bytes=100 * MiB)
    assert res.throughput_mib_s == pytest.approx(50.0)


def test_zero_makespan_throughput_is_zero():
    res = RunResult(name="x", makespan=0.0, total_bytes=100)
    assert res.throughput_mib_s == 0.0


def test_latency_stats_by_op():
    reqs = [make_request(0.1, Op.READ), make_request(0.3, Op.WRITE),
            make_request(0.2, Op.READ)]
    res = RunResult(name="x", makespan=1.0, total_bytes=1, requests=reqs)
    assert res.latency_stats(Op.READ).count == 2
    assert res.latency_stats(Op.READ).mean == pytest.approx(0.15)
    assert res.latency_stats().max == pytest.approx(0.3)
    assert res.mean_service_time == pytest.approx(0.2)


def test_latency_stats_empty():
    stats = LatencyStats.from_latencies([])
    assert stats.count == 0
    assert stats.mean == 0.0


def test_latency_stats_single_sample():
    stats = LatencyStats.from_latencies([0.25])
    # Every summary statistic of a singleton collapses to the sample.
    assert stats.count == 1
    assert stats.mean == pytest.approx(0.25)
    assert stats.p50 == pytest.approx(0.25)
    assert stats.p95 == pytest.approx(0.25)
    assert stats.p99 == pytest.approx(0.25)
    assert stats.max == pytest.approx(0.25)


def test_latency_stats_all_equal():
    stats = LatencyStats.from_latencies([0.5] * 17)
    assert stats.count == 17
    assert stats.mean == pytest.approx(0.5)
    assert stats.p50 == stats.p95 == stats.p99 == stats.max
    assert stats.max == pytest.approx(0.5)


def test_latency_stats_p99_tiny_n():
    # With n=2, p99 interpolates inside [min, max]: it must stay
    # bounded by the extremes and ordered against p95/p50.
    stats = LatencyStats.from_latencies([0.1, 0.9])
    assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
    assert stats.p99 <= 0.9 + 1e-12
    assert stats.p99 >= 0.1
    assert stats.max == pytest.approx(0.9)
    # Order of the input must not matter.
    rev = LatencyStats.from_latencies([0.9, 0.1])
    assert rev.p99 == pytest.approx(stats.p99)


def test_improvement_and_reduction():
    assert improvement(100, 250) == pytest.approx(150.0)
    assert improvement(0, 10) == 0.0
    assert reduction(10.0, 4.0) == pytest.approx(60.0)
    assert reduction(0.0, 1.0) == 0.0


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.001]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_histogram_orders_by_fraction():
    out = format_histogram({128: 0.7, 2: 0.1, 16: 0.2})
    rows = out.splitlines()[2:]
    assert rows[0].startswith("128")
