"""Unit tests for the invariant auditor, watchdog and event trace.

Each detection test plants one deliberate inconsistency in a live
manager (the kind of slip a refactor could introduce) and asserts the
auditor reports it — strict mode raising :class:`AuditError` at the
check site, non-strict mode accumulating the violation record.
"""

import json

import pytest

from repro.audit import AuditRuntime, EventTrace
from repro.config import AuditConfig, ClusterConfig
from repro.core.mapping import CacheKind
from repro.devices import HardDisk, Op, profile_device
from repro.errors import AuditError
from repro.pfs.messages import SubRequest
from repro.pfs.server import DataServer
from repro.sim import Environment
from repro.units import KiB, MiB


def make_server(env=None, strict=True, **ib_overrides):
    env = env or Environment()
    ib_overrides.setdefault("ssd_partition", 4 * MiB)
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                        audit=AuditConfig(enabled=True, strict=strict))
    cfg = cfg.with_ibridge(**ib_overrides)
    profile = profile_device(HardDisk(cfg.hdd))
    return env, DataServer(env, 0, cfg, profile)


def sub(op=Op.WRITE, offset=0, size=4 * KiB, fragment=False, random=False,
        siblings=(), rank=0, handle=1):
    return SubRequest(parent_id=1, op=op, handle=handle, server=0,
                      local_offset=offset, nbytes=size, rank=rank,
                      is_fragment=fragment, is_random=random,
                      sibling_servers=tuple(siblings))


def serve(env, server, s):
    done = server.submit(s)
    env.run(until=done)
    return done.value


def cached_server(strict=True):
    """A server with one dirty cached fragment, plus its auditor."""
    env, server = make_server(strict=strict)
    serve(env, server, sub(size=2 * KiB, fragment=True, siblings=(1,)))
    mgr = server.ibridge
    assert mgr.mapping.entries, "setup: expected a cached entry"
    return env, server, mgr, mgr.audit


# ------------------------------------------------------- seeded violations
def test_clean_run_has_no_violations():
    env, server, mgr, auditor = cached_server()
    proc = env.process(server.drain(), name="drain")
    env.run(until=proc)
    auditor.final_check()
    assert server.audit.ok
    assert auditor.checks > 0


def test_partition_byte_corruption_detected():
    env, server, mgr, auditor = cached_server()
    mgr.partition._bytes[CacheKind.FRAGMENT] += 1
    with pytest.raises(AuditError, match="partition-bytes"):
        auditor.check("test")


def test_lbn_index_corruption_detected():
    env, server, mgr, auditor = cached_server()
    [entry] = mgr.mapping.entries
    del mgr._by_lbn[entry.ssd_lbn]
    with pytest.raises(AuditError, match="lbn-index"):
        auditor.check("test")


def test_log_accounting_corruption_detected():
    env, server, mgr, auditor = cached_server()
    [entry] = mgr.mapping.entries
    mgr._log.invalidate(entry.ssd_lbn)  # entry now points at dead space
    with pytest.raises(AuditError, match="log-extent"):
        auditor.check("test")


def test_dirty_ledger_drift_detected():
    env, server, mgr, auditor = cached_server()
    [entry] = mgr.mapping.entries
    entry.dirty = False  # cleaned without a writeback: bytes vanish
    with pytest.raises(AuditError, match="dirty-ledger"):
        auditor.check("test")


def test_read_conservation_violation_detected():
    env, server, mgr, auditor = cached_server()
    with pytest.raises(AuditError, match="read-conservation"):
        auditor.note_read(4 * KiB, 0, 0, 0)


def test_final_check_rejects_undrained_manager():
    env, server, mgr, auditor = cached_server()
    assert mgr.mapping.dirty_bytes > 0
    with pytest.raises(AuditError, match="final-dirty"):
        auditor.final_check()


def test_ftl_ledger_drift_detected():
    """The auditor folds the FTL's write-amplification ledger into its
    coherence sweep: a counter that drifts from the page-program
    identity is a model bug, not a timing artifact."""
    env = Environment()
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0,
                        audit=AuditConfig(enabled=True, strict=True))
    cfg = cfg.with_ibridge(ssd_partition=4 * MiB).with_ftl(capacity=16 * MiB)
    profile = profile_device(HardDisk(cfg.hdd))
    server = DataServer(env, 0, cfg, profile)
    serve(env, server, sub(size=2 * KiB, fragment=True, siblings=(1,)))
    mgr = server.ibridge
    assert server.ssd.ftl.host_pages_written > 0
    mgr.audit.check("test")                 # healthy ledger passes
    server.ssd.ftl.gc_pages_copied += 1     # break the identity
    with pytest.raises(AuditError, match="ftl-ledger"):
        mgr.audit.check("test")


def test_non_strict_mode_accumulates_violations():
    env, server, mgr, auditor = cached_server(strict=False)
    mgr.partition._bytes[CacheKind.FRAGMENT] += 1
    auditor.check("test")  # must not raise
    assert not server.audit.ok
    [record] = server.audit.violations
    assert record["check"] == "partition-bytes"
    assert record["kind"] == "violation"


def test_runtime_checkpoint_sweeps_all_managers():
    env, server, mgr, auditor = cached_server()
    mgr.partition._bytes[CacheKind.FRAGMENT] += 1
    with pytest.raises(AuditError):
        server.audit.checkpoint("sweep")


# --------------------------------------------------------------- watchdog
class _StallQueue:
    """A queue with pending work that never completes anything."""

    name = "stalled"
    busy = False
    dispatches = 0
    completed = 0
    pending = 1


def test_watchdog_fires_on_stalled_queue():
    env = Environment()
    runtime = AuditRuntime(env, AuditConfig(enabled=True,
                                            watchdog_window=0.01))
    runtime.watch_queue(_StallQueue())
    with pytest.raises(AuditError, match="livelock"):
        env.run(until=env.timeout(1.0))
    assert runtime.watchdog.fired == 1
    [dump] = runtime.trace.records("watchdog_stall")
    assert dump["queues"][0]["name"] == "stalled"
    assert dump["pending"] == 1


def test_watchdog_quiet_while_requests_complete():
    env = Environment()
    runtime = AuditRuntime(env, AuditConfig(enabled=True,
                                            watchdog_window=0.01))
    queue = _StallQueue()
    runtime.watch_queue(queue)

    def churn():
        while True:
            yield env.timeout(0.004)
            queue.completed += 1

    env.process(churn(), name="churn")
    env.run(until=env.timeout(0.5))  # must not raise
    assert runtime.watchdog.fired == 0
    assert runtime.ok


def test_watchdog_quiet_when_idle():
    env = Environment()
    runtime = AuditRuntime(env, AuditConfig(enabled=True,
                                            watchdog_window=0.01))
    queue = _StallQueue()
    queue.pending = 0
    runtime.watch_queue(queue)
    env.run(until=env.timeout(0.5))
    assert runtime.watchdog.fired == 0


def test_watchdog_stop_ends_the_process():
    env = Environment()
    runtime = AuditRuntime(env, AuditConfig(enabled=True,
                                            watchdog_window=0.01))
    runtime.watch_queue(_StallQueue())
    runtime.stop()
    # With the watchdog stopped the stalled queue never trips it.
    env.run(until=env.timeout(0.1))
    assert runtime.watchdog.fired == 0


# ------------------------------------------------------------ event trace
def test_trace_ring_is_bounded_but_counts_lifetime():
    trace = EventTrace(limit=4)
    for i in range(10):
        trace.emit(float(i), "tick", n=i)
    assert len(trace.records()) == 4
    assert trace.count("tick") == 10
    assert trace.records("tick")[-1]["n"] == 9


def test_trace_jsonl_mirror(tmp_path):
    path = tmp_path / "trace.jsonl"
    trace = EventTrace(str(path), limit=16)
    trace.emit(0.0, "hello", nbytes=1)
    trace.emit(1.0, "world", nbytes=2)
    trace.close()
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["kind"] for r in records] == ["hello", "world"]
    assert records[1]["t"] == 1.0


def test_trace_jsonl_mirror_appends_across_instances(tmp_path):
    """Sequential clusters sharing one trace path must not truncate each
    other's events; the path owner truncates once per invocation."""
    path = tmp_path / "trace.jsonl"
    first = EventTrace(str(path), limit=16)
    first.emit(0.0, "first_run")
    first.close()
    second = EventTrace(str(path), limit=16)
    second.emit(1.0, "second_run")
    second.close()
    kinds = [json.loads(line)["kind"]
             for line in path.read_text().strip().splitlines()]
    assert kinds == ["first_run", "second_run"]


def test_cluster_run_with_trace_path(tmp_path):
    from repro.pfs.cluster import Cluster
    path = tmp_path / "cluster.jsonl"
    cfg = ClusterConfig(num_servers=2,
                        audit=AuditConfig(enabled=True,
                                          trace_path=str(path)))
    cfg = cfg.with_ibridge(ssd_partition=8 * MiB)
    cluster = Cluster(cfg)
    handle = cluster.create_file(2 * MiB)
    client = cluster.client(0)
    done = client.submit(Op.WRITE, handle, 0, 65 * KiB, rank=0)
    cluster.env.run(until=done)
    cluster.drain()
    cluster.shutdown()
    assert cluster.audit.ok
    records = [json.loads(line)
               for line in path.read_text().strip().splitlines()]
    kinds = {r["kind"] for r in records}
    assert "client_write" in kinds
    assert "final_check" in kinds
