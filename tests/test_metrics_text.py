"""Prometheus text exposition: render, round-trip, and the CLI path."""

import math

import pytest

from repro.config import ObsConfig
from repro.obs.metrics import MetricsRegistry, parse_prometheus_text


def _loaded_registry():
    reg = MetricsRegistry()
    reg.counter("requests_total", server="s0", op="read").inc(5)
    reg.counter("requests_total", server="s1", op="read").inc(2)
    reg.counter("plain_total").inc()
    reg.gauge("queue_depth", lambda: 3.5, server="s0")
    hist = reg.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(v)
    return reg


def test_round_trip_preserves_types_and_values():
    text = _loaded_registry().to_prometheus_text()
    types, samples = parse_prometheus_text(text)
    assert types == {"requests_total": "counter", "plain_total": "counter",
                     "queue_depth": "gauge",
                     "latency_seconds": "histogram"}
    assert samples[("requests_total",
                    (("op", "read"), ("server", "s0")))] == 5
    assert samples[("requests_total",
                    (("op", "read"), ("server", "s1")))] == 2
    assert samples[("plain_total", ())] == 1
    assert samples[("queue_depth", (("server", "s0"),))] == 3.5


def test_histogram_buckets_are_cumulative():
    text = _loaded_registry().to_prometheus_text()
    _, samples = parse_prometheus_text(text)
    assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1
    assert samples[("latency_seconds_bucket", (("le", "1"),))] == 3
    assert samples[("latency_seconds_bucket", (("le", "10"),))] == 4
    assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 5
    assert samples[("latency_seconds_count", ())] == 5
    assert samples[("latency_seconds_sum", ())] == pytest.approx(56.05)


def test_type_line_emitted_once_per_family():
    text = _loaded_registry().to_prometheus_text()
    assert text.count("# TYPE requests_total counter") == 1


def test_gauges_read_live_at_render_time():
    reg = MetricsRegistry()
    box = {"v": 1.0}
    reg.gauge("live", lambda: box["v"])
    _, first = parse_prometheus_text(reg.to_prometheus_text())
    box["v"] = 9.0
    _, second = parse_prometheus_text(reg.to_prometheus_text())
    assert first[("live", ())] == 1.0
    assert second[("live", ())] == 9.0


def test_label_values_escape_and_round_trip():
    reg = MetricsRegistry()
    nasty = 'a"b\\c\nd'
    reg.counter("weird_total", path=nasty).inc(4)
    text = reg.to_prometheus_text()
    _, samples = parse_prometheus_text(text)
    assert samples[("weird_total", (("path", nasty),))] == 4


def test_metric_names_are_sanitized():
    reg = MetricsRegistry()
    reg.counter("ssd.log-occupancy").inc(2)
    types, samples = parse_prometheus_text(reg.to_prometheus_text())
    assert types == {"ssd_log_occupancy": "counter"}
    assert samples[("ssd_log_occupancy", ())] == 2


def test_special_float_values_render():
    reg = MetricsRegistry()
    reg.gauge("inf_gauge", lambda: float("inf"))
    reg.gauge("nan_gauge", lambda: float("nan"))
    _, samples = parse_prometheus_text(reg.to_prometheus_text())
    assert samples[("inf_gauge", ())] == float("inf")
    assert math.isnan(samples[("nan_gauge", ())])


def test_empty_registry_round_trips_to_nothing():
    reg = MetricsRegistry()
    text = reg.to_prometheus_text()
    types, samples = parse_prometheus_text(text)
    assert types == {} and samples == {}


def test_unobserved_histogram_exports_zero_buckets():
    reg = MetricsRegistry()
    reg.histogram("empty_seconds", buckets=(0.1, 1.0))
    _, samples = parse_prometheus_text(reg.to_prometheus_text())
    assert samples[("empty_seconds_bucket", (("le", "0.1"),))] == 0
    assert samples[("empty_seconds_bucket", (("le", "+Inf"),))] == 0
    assert samples[("empty_seconds_count", ())] == 0
    assert samples[("empty_seconds_sum", ())] == 0


def test_overflow_observations_land_only_in_inf_bucket():
    reg = MetricsRegistry()
    hist = reg.histogram("big_seconds", buckets=(0.1, 1.0))
    for v in (5.0, 50.0, 500.0):
        hist.observe(v)
    _, samples = parse_prometheus_text(reg.to_prometheus_text())
    assert samples[("big_seconds_bucket", (("le", "1"),))] == 0
    assert samples[("big_seconds_bucket", (("le", "+Inf"),))] == 3
    assert samples[("big_seconds_sum", ())] == pytest.approx(555.0)


def test_label_escaping_survives_adjacent_labels():
    # The regression shape: an escaped quote must not terminate the
    # label value early and eat the neighbouring label.
    reg = MetricsRegistry()
    reg.counter("pair_total", a='x",b="y', c="plain").inc(7)
    _, samples = parse_prometheus_text(reg.to_prometheus_text())
    assert samples[("pair_total",
                    (("a", 'x",b="y'), ("c", "plain")))] == 7


def test_parse_rejects_malformed_line():
    with pytest.raises(ValueError, match="malformed"):
        parse_prometheus_text("good_metric 1\n}{ nonsense\n")


def test_obs_runtime_writes_exposition_file(tmp_path):
    """The --metrics-text plumbing: finish_run snapshots the registry."""
    from repro.obs.runtime import ObsRuntime
    from repro.sim.core import Environment

    out = tmp_path / "metrics.prom"
    env = Environment()
    runtime = ObsRuntime(env, ObsConfig(
        enabled=True, trace=False, metrics=True,
        metrics_text_path=str(out)))
    runtime.registry.counter("svc_test_total", kind="unit").inc(3)
    runtime.finish_run()
    types, samples = parse_prometheus_text(
        out.read_text(encoding="utf-8"))
    assert types["svc_test_total"] == "counter"
    assert samples[("svc_test_total", (("kind", "unit"),))] == 3


def test_experiments_cli_metrics_text_flag(tmp_path, monkeypatch):
    """`ibridge-experiment --metrics-text` writes a parseable snapshot."""
    from repro.experiments.cli import main
    from repro.experiments.fig2 import _cell_throughput
    from repro.experiments.registry import EXPERIMENTS

    def tiny(scale=0.002):
        return _cell_throughput(scale=scale, nprocs=4, size=65536)

    monkeypatch.setitem(EXPERIMENTS, "tinytest", tiny)
    out = tmp_path / "cli.prom"
    rc = main(["tinytest", "--scale", "0.002", "--no-cache",
               "--metrics-text", str(out)])
    assert rc == 0
    types, samples = parse_prometheus_text(
        out.read_text(encoding="utf-8"))
    assert types, "exposition file declared no metric families"
    assert samples, "exposition file held no samples"
