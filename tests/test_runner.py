"""Tests for the parallel experiment-matrix runner (repro.experiments.runner).

The two properties the whole design hangs on:

* **Determinism** — ``run_cells(cells, jobs=N)`` returns bit-identical
  results for every ``N`` (cells are self-contained, seq-tie-broken
  simulations; the pool merge preserves input order).
* **Cache soundness** — a warm cache replays results without a single
  simulation step, and anything that could change a result (arguments,
  audit config, fault plan, package version) changes the cache key.
"""

import dataclasses
import enum

import pytest

from repro.config import AuditConfig
from repro.experiments import common as exp_common
from repro.experiments import fig2
from repro.experiments.runner import (Cell, ResultCache, cell, run_cells,
                                      set_sweep_defaults, stable_hash,
                                      stable_token, sweep)
from repro.sim import Environment
from repro.units import KiB


@pytest.fixture(autouse=True)
def _restore_sweep_defaults():
    yield
    set_sweep_defaults()  # jobs=1, uncached


# A module-level cell function: workers import it by path.
def _probe_cell(a, b=1):
    return {"sum": a + b, "product": a * b}


PROBE = f"{__name__}:_probe_cell"


# -- stable hashing ----------------------------------------------------
class _Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class _Point:
    x: float
    y: float


def test_stable_hash_distinguishes_close_floats():
    assert stable_hash(0.1) != stable_hash(0.1 + 1e-17) or 0.1 == 0.1 + 1e-17
    assert stable_hash(1.0) != stable_hash(1)  # float vs int
    assert stable_hash(0.30000000000000004) != stable_hash(0.3)


def test_stable_hash_is_order_insensitive_for_dicts_and_sets():
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
    assert stable_hash({3, 1, 2}) == stable_hash({2, 3, 1})
    # ...but order-sensitive for sequences.
    assert stable_hash([1, 2]) != stable_hash([2, 1])


def test_stable_hash_covers_dataclasses_and_enums():
    assert stable_hash(_Point(1.0, 2.0)) == stable_hash(_Point(1.0, 2.0))
    assert stable_hash(_Point(1.0, 2.0)) != stable_hash(_Point(2.0, 1.0))
    assert stable_hash(_Colour.RED) != stable_hash(_Colour.BLUE)
    assert stable_hash(AuditConfig()) == stable_hash(AuditConfig())
    assert stable_hash(AuditConfig()) != stable_hash(AuditConfig(enabled=True))


def test_stable_token_rejects_arbitrary_objects():
    with pytest.raises(TypeError):
        stable_token(object())


def test_cell_key_depends_on_args_and_context():
    c1 = cell(PROBE, a=1, b=2)
    c2 = cell(PROBE, a=1, b=3)
    assert c1.key() != c2.key()
    assert c1.key() == cell(PROBE, b=2, a=1).key()  # kwarg order
    assert c1.key({"audit": None}) != c1.key({"audit": "on"})


# -- execution ---------------------------------------------------------
def test_run_cells_preserves_input_order_serial_and_parallel():
    cells = [cell(PROBE, a=i, b=i + 1) for i in range(6)]
    serial = run_cells(cells, jobs=1, cache=False)
    parallel = run_cells(cells, jobs=3, cache=False)
    assert serial.results == parallel.results
    assert [r["sum"] for r in serial.results] == [2 * i + 1 for i in range(6)]
    assert serial.executed == parallel.executed == 6


def test_run_cells_rejects_bad_jobs_and_bad_fn_path():
    with pytest.raises(ValueError):
        run_cells([cell(PROBE, a=1)], jobs=0)
    with pytest.raises(ValueError):
        Cell(fn="not.a.path.no.colon", kwargs=()).resolve()


def test_sweep_uses_installed_defaults(tmp_path):
    cells = [cell(PROBE, a=i) for i in range(3)]
    set_sweep_defaults(jobs=1, cache=True, cache_dir=str(tmp_path))
    first = sweep(cells)
    second = sweep(cells)
    assert first == second
    # Explicit overrides beat the installed defaults.
    assert sweep(cells, cache=False) == first


# -- the headline property: fig2 serial == parallel --------------------
def test_fig2_values_identical_serial_vs_parallel():
    """fig2a at --jobs 1 and --jobs 4 produce bit-identical values."""
    kwargs = dict(scale=0.001, sizes_kib=(64, 65), procs=(2, 4))
    set_sweep_defaults(jobs=1, cache=False)
    serial = fig2.run_fig2a(**kwargs)
    set_sweep_defaults(jobs=4, cache=False)
    parallel = fig2.run_fig2a(**kwargs)
    assert serial.values == parallel.values
    assert serial.rows == parallel.rows
    assert len(serial.values) == 4


# -- cache soundness ---------------------------------------------------
def test_cache_hit_performs_zero_simulation_steps(tmp_path, monkeypatch):
    cells = [cell("repro.experiments.fig2:_cell_throughput",
                  scale=0.001, nprocs=2, size=65 * KiB)]
    cold = run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    assert cold.executed == 1 and cold.cached == 0

    # Any attempt to simulate now is an error: a warm hit must replay
    # the pickled result without building an engine at all.
    def _boom(self, *args, **kwargs):
        raise AssertionError("cache hit ran the simulator")

    monkeypatch.setattr(Environment, "run", _boom)
    monkeypatch.setattr(Environment, "step", _boom)
    warm = run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    assert warm.executed == 0 and warm.cached == 1
    assert warm.results == cold.results


def test_cache_key_includes_audit_and_fault_context(tmp_path):
    cells = [cell(PROBE, a=5)]
    run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    # Flipping the process-wide audit default must miss the cache (the
    # audit watchdog consumes seq numbers, changing schedules).
    old = exp_common._DEFAULT_AUDIT
    exp_common.set_default_audit(AuditConfig(enabled=True))
    try:
        second = run_cells(cells, jobs=1, cache=True,
                           cache_dir=str(tmp_path))
    finally:
        exp_common.set_default_audit(old)
    assert second.executed == 1 and second.cached == 0


def test_cache_key_includes_obs_context(tmp_path):
    from repro.config import ObsConfig
    cells = [cell(PROBE, a=7)]
    run_cells(cells, jobs=1, cache=True, cache_dir=str(tmp_path))
    # Flipping the process-wide obs default must miss the cache (the
    # metrics sampler is a sim process, consuming heap seq numbers).
    old = exp_common._DEFAULT_OBS
    exp_common.set_default_obs(ObsConfig(enabled=True))
    try:
        second = run_cells(cells, jobs=1, cache=True,
                           cache_dir=str(tmp_path))
        assert second.executed == 1 and second.cached == 0
        # Same obs context again: warm hit.
        third = run_cells(cells, jobs=1, cache=True,
                          cache_dir=str(tmp_path))
        assert third.executed == 0 and third.cached == 1
    finally:
        exp_common.set_default_obs(old)


def test_result_cache_roundtrip_and_torn_write_resistance(tmp_path):
    store = ResultCache(str(tmp_path))
    assert store.get("deadbeef") == (False, None)
    store.put("deadbeef", {"x": [1, 2, 3]})
    assert store.get("deadbeef") == (True, {"x": [1, 2, 3]})
    # A corrupt cache file reads as a miss, not an error.
    path = store._path("deadbeef")
    with open(path, "wb") as fh:
        fh.write(b"\x80garbage")
    hit, _ = store.get("deadbeef")
    assert hit is False


def test_default_cache_dir_reads_env_at_call_time(tmp_path, monkeypatch):
    """REPRO_CACHE_DIR set *after* import must still take effect."""
    from repro.experiments.runner import default_cache_dir

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache_dir() == ".ibridge-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == str(tmp_path / "elsewhere")
    # ResultCache() with no directory resolves lazily too
    store = ResultCache()
    store.put("aa11", 42)
    assert (tmp_path / "elsewhere" / "aa" / "aa11.pkl").exists()


def test_encode_decode_result_roundtrip():
    from repro.experiments.runner import decode_result, encode_result

    value = {"throughput": 123.4, "rows": [(1, 2), (3, 4)]}
    blob = encode_result(value)
    assert isinstance(blob, bytes)
    assert decode_result(blob) == value


def test_cell_key_and_null_context_token(tmp_path):
    from repro.experiments.runner import (cell_key, default_context_token,
                                          null_context_token)

    c = cell(PROBE, a=1)
    # with no process-wide audit/fault/obs defaults, the default
    # context IS the null context — the service's shared-cache contract
    assert default_context_token() == null_context_token()
    assert cell_key(c) == c.key(default_context_token())
    assert cell_key(c, null_context_token()) == cell_key(c)
