"""Transient-error retry in the service HTTP client.

A worker's claim loop must survive a brief server restart: connection
errors retry with capped exponential backoff + jitter and are counted
in the ``svc_client_retries`` metric, while HTTP errors (the server
answered) surface immediately as :class:`ServiceError`.
"""

import io
import json
import urllib.error

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.svc.client import HttpQueue, ServiceClient, ServiceError


class _FakeResponse:
    status = 200

    def __init__(self, payload):
        self._payload = json.dumps(payload).encode("utf-8")

    def read(self):
        return self._payload

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _no_sleep(monkeypatch, sleeps):
    monkeypatch.setattr("repro.svc.client.time.sleep", sleeps.append)


def test_transient_errors_retry_then_succeed(monkeypatch):
    calls, sleeps = [], []
    _no_sleep(monkeypatch, sleeps)

    def fake_urlopen(req, timeout=None):
        calls.append(req.full_url)
        if len(calls) < 3:
            raise urllib.error.URLError(ConnectionRefusedError(111))
        return _FakeResponse({"ok": True})

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    reg = MetricsRegistry()
    client = ServiceClient("http://svc.test", retries=3, backoff=0.1,
                           backoff_cap=2.0, metrics=reg)
    assert client._get("/healthz") == {"ok": True}
    assert len(calls) == 3
    assert client.retries_total == 2
    assert reg.counter("svc_client_retries").value == 2.0
    # Backoff grows and carries jitter in [0.5, 1.0] of the nominal.
    assert len(sleeps) == 2
    assert 0.05 <= sleeps[0] <= 0.1
    assert 0.1 <= sleeps[1] <= 0.2


def test_retries_exhausted_reraises_the_transport_error(monkeypatch):
    sleeps = []
    _no_sleep(monkeypatch, sleeps)
    attempts = []

    def fake_urlopen(req, timeout=None):
        attempts.append(1)
        raise urllib.error.URLError("down")

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    client = ServiceClient("http://svc.test", retries=2)
    with pytest.raises(urllib.error.URLError):
        client._get("/jobs")
    assert len(attempts) == 3  # initial try + 2 retries
    assert client.retries_total == 2


def test_http_errors_are_never_retried(monkeypatch):
    sleeps = []
    _no_sleep(monkeypatch, sleeps)
    attempts = []

    def fake_urlopen(req, timeout=None):
        attempts.append(1)
        raise urllib.error.HTTPError(
            req.full_url, 404, "nope", hdrs=None,
            fp=io.BytesIO(json.dumps({"error": "no such job"}).encode()))

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    client = ServiceClient("http://svc.test", retries=5)
    with pytest.raises(ServiceError) as err:
        client._get("/jobs/99")
    assert err.value.code == 404
    assert "no such job" in str(err.value)
    assert len(attempts) == 1
    assert client.retries_total == 0
    assert not sleeps


def test_backoff_is_capped(monkeypatch):
    sleeps = []
    _no_sleep(monkeypatch, sleeps)

    def fake_urlopen(req, timeout=None):
        raise urllib.error.URLError("down")

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    client = ServiceClient("http://svc.test", retries=6, backoff=0.1,
                           backoff_cap=0.25)
    with pytest.raises(urllib.error.URLError):
        client._get("/jobs")
    assert len(sleeps) == 6
    assert all(s <= 0.25 for s in sleeps)


def test_http_queue_exposes_retry_config_and_count(monkeypatch):
    sleeps = []
    _no_sleep(monkeypatch, sleeps)
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(1)
        if len(calls) == 1:
            raise urllib.error.URLError("restarting")
        return _FakeResponse({"ok": True})

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    reg = MetricsRegistry()
    queue = HttpQueue("http://svc.test", retries=2, metrics=reg)
    assert queue.heartbeat("w0", 1, lease=5.0) is True
    assert queue.retries_total == 1
    assert reg.counter("svc_client_retries").value == 1.0
