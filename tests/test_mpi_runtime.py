"""Tests for the simulated MPI runtime."""

import pytest

from repro.config import ClusterConfig
from repro.errors import WorkloadError
from repro.mpi import MPIRun
from repro.pfs import Cluster
from repro.units import KiB, MiB


def small_cluster(**kw):
    return Cluster(ClusterConfig(num_servers=2, client_jitter=0.0, **kw))


def test_ranks_run_and_complete():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB)
    seen = []

    def body(ctx):
        got = yield ctx.read_at(handle, ctx.rank * 64 * KiB, 64 * KiB)
        seen.append((ctx.rank, got.nbytes))

    run = MPIRun(cluster, nprocs=4)
    run.run_to_completion(body)
    assert sorted(r for r, _ in seen) == [0, 1, 2, 3]
    assert all(n == 64 * KiB for _, n in seen)


def test_barrier_synchronizes_ranks():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB)
    after_barrier = []

    def body(ctx):
        # Rank 0 does extra I/O first; the barrier makes everyone wait.
        if ctx.rank == 0:
            for i in range(4):
                yield ctx.read_at(handle, i * 64 * KiB, 64 * KiB)
        yield ctx.barrier()
        after_barrier.append((ctx.rank, ctx.env.now))

    run = MPIRun(cluster, nprocs=3)
    run.run_to_completion(body)
    times = [t for _r, t in after_barrier]
    assert max(times) == pytest.approx(min(times))


def test_compute_advances_time_without_io():
    cluster = small_cluster()

    def body(ctx):
        yield ctx.compute(1.5)

    run = MPIRun(cluster, nprocs=2)
    end = run.run_to_completion(body)
    assert end == pytest.approx(1.5)


def test_write_then_read_roundtrip():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB, preallocate=False)

    def body(ctx):
        yield ctx.write_at(handle, ctx.rank * 128 * KiB, 128 * KiB)
        yield ctx.read_at(handle, ctx.rank * 128 * KiB, 128 * KiB)

    run = MPIRun(cluster, nprocs=2)
    run.run_to_completion(body)
    assert len(cluster.requests) == 4


def test_client_nodes_pack_ranks():
    cluster = small_cluster()
    run = MPIRun(cluster, nprocs=8, client_nodes=2)
    ctxs = [__import__("repro.mpi.runtime", fromlist=["RankContext"])
            .RankContext(run, r) for r in range(8)]
    names = {c._client.name for c in ctxs}
    assert names == {"client0", "client1"}


def test_invalid_nprocs():
    cluster = small_cluster()
    with pytest.raises(WorkloadError):
        MPIRun(cluster, nprocs=0)


def test_rank_requests_recorded_with_latency():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB)

    def body(ctx):
        yield ctx.read_at(handle, 0, 64 * KiB)

    MPIRun(cluster, nprocs=1).run_to_completion(body)
    (req,) = cluster.requests
    assert req.latency is not None and req.latency > 0
    assert req.rank == 0
