"""Integration tests for the iBridge server-side manager.

Driven through a real DataServer (devices, queues, local stores) with
hand-built sub-requests, so these cover the full redirect / cache /
coherence / writeback machinery.
"""

from repro.config import ClusterConfig, ReturnPolicy
from repro.core.mapping import CacheKind
from repro.core.service_model import TReport
from repro.devices import HardDisk, Op, profile_device
from repro.pfs.messages import SubRequest
from repro.pfs.server import DataServer
from repro.sim import Environment
from repro.units import KiB, MiB


def make_server(env=None, **ib_overrides):
    env = env or Environment()
    ib_overrides.setdefault("ssd_partition", 4 * MiB)
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        **ib_overrides)
    profile = profile_device(HardDisk(cfg.hdd))
    server = DataServer(env, 0, cfg, profile)
    return env, server


def sub(op=Op.WRITE, offset=0, size=4 * KiB, fragment=False, random=False,
        siblings=(), rank=0, handle=1):
    return SubRequest(parent_id=1, op=op, handle=handle, server=0,
                      local_offset=offset, nbytes=size, rank=rank,
                      is_fragment=fragment, is_random=random,
                      sibling_servers=tuple(siblings))


def serve(env, server, s):
    done = server.submit(s)
    env.run(until=done)
    return done.value


def drain(env, server):
    proc = env.process(server.drain(), name="drain")
    env.run(until=proc)


def test_small_random_write_redirected_to_ssd():
    env, server = make_server()
    serve(env, server, sub(random=True))
    st = server.ibridge.stats
    assert st.ssd_redirected_writes == 1
    assert server.ssd.stats.writes == 1
    assert server.hdd.stats.writes == 0
    assert server.ibridge.mapping.dirty_bytes == 4 * KiB


def test_large_write_goes_to_disk():
    env, server = make_server()
    serve(env, server, sub(size=64 * KiB))
    assert server.hdd.stats.writes >= 1
    assert server.ibridge.stats.ssd_redirected_writes == 0


def test_fragment_write_redirected():
    env, server = make_server()
    serve(env, server, sub(size=2 * KiB, fragment=True, siblings=(1,)))
    assert server.ibridge.stats.ssd_redirected_writes == 1
    assert server.ibridge.stats.fragments_seen == 1


def test_threshold_gates_classification():
    env, server = make_server(fragment_threshold=1 * KiB)
    serve(env, server, sub(size=2 * KiB, fragment=True, siblings=(1,)))
    # 2 KiB >= 1 KiB threshold: not a candidate, goes to disk.
    assert server.ibridge.stats.ssd_redirected_writes == 0
    assert server.hdd.stats.writes >= 1


def test_read_hit_served_from_ssd():
    env, server = make_server()
    serve(env, server, sub(op=Op.WRITE, random=True))
    before = server.hdd.stats.reads
    serve(env, server, sub(op=Op.READ, random=True))
    assert server.hdd.stats.reads == before  # no disk read
    assert server.ibridge.stats.ssd_read_hits == 1


def test_read_miss_served_from_disk_then_admitted_when_idle():
    env, server = make_server()
    # Preallocate backing data so the read is legal.
    server.disk_store.preallocate(1, 1 * MiB)
    serve(env, server, sub(op=Op.READ, random=True))
    assert server.ibridge.stats.bytes_from_disk == 4 * KiB
    # Let the fill daemon run during idle time.
    env.run(until=env.now + 1.0)
    assert server.ibridge.stats.fill_bytes == 4 * KiB
    # A re-read now hits the SSD cache (the rerun scenario).
    before = server.hdd.stats.reads
    serve(env, server, sub(op=Op.READ, random=True))
    assert server.hdd.stats.reads == before


def test_admit_reads_disabled():
    env, server = make_server(admit_reads=False)
    server.disk_store.preallocate(1, 1 * MiB)
    serve(env, server, sub(op=Op.READ, random=True))
    env.run(until=env.now + 1.0)
    assert server.ibridge.stats.fill_bytes == 0


def test_dirty_data_flushed_on_drain():
    env, server = make_server()
    serve(env, server, sub(op=Op.WRITE, random=True))
    assert server.ibridge.mapping.dirty_bytes > 0
    drain(env, server)
    assert server.ibridge.mapping.dirty_bytes == 0
    assert server.hdd.stats.writes >= 1  # the writeback reached the disk
    assert server.ibridge.stats.writeback_bytes == 4 * KiB


def test_disk_read_sees_latest_ssd_data():
    """Coherence: dirty SSD data must serve reads that overlap it."""
    env, server = make_server()
    server.disk_store.preallocate(1, 1 * MiB)
    serve(env, server, sub(op=Op.WRITE, offset=8 * KiB, size=4 * KiB,
                           random=True))
    disk_reads_before = server.hdd.stats.bytes_read
    # A large read overlapping the dirty extent: the dirty piece must
    # come from the SSD, the rest from the disk.
    serve(env, server, sub(op=Op.READ, offset=0, size=64 * KiB))
    assert server.ssd.stats.bytes_read >= 4 * KiB
    assert (server.hdd.stats.bytes_read - disk_reads_before) == 60 * KiB


def test_large_disk_write_invalidates_and_preserves_dirty_tail():
    """A disk write overlapping a dirty entry flushes the uncovered
    part first, so no newer bytes are lost."""
    env, server = make_server()
    serve(env, server, sub(op=Op.WRITE, offset=0, size=8 * KiB, random=True))
    assert server.ibridge.mapping.dirty_bytes == 8 * KiB
    # Overwrite only the first half with a large (disk-bound) write.
    serve(env, server, sub(op=Op.WRITE, offset=0, size=4 * KiB))
    # The entry is gone; its uncovered tail got flushed beforehand.
    assert server.ibridge.mapping.dirty_bytes == 0
    assert server.ibridge.stats.writeback_bytes == 8 * KiB


def test_eviction_under_capacity_pressure():
    env, server = make_server(ssd_partition=64 * KiB,
                              dynamic_partition=False,
                              static_split=(0.0, 1.0))
    # 16 KiB class capacity is the whole 64 KiB for fragments; write
    # five 16 KiB fragments: the first must eventually be evicted.
    for i in range(5):
        serve(env, server, sub(op=Op.WRITE, offset=i * 16 * KiB,
                               size=16 * KiB, fragment=True, siblings=(1,)))
    used = server.ibridge.partition.used(CacheKind.FRAGMENT)
    assert used <= 64 * KiB
    assert server.ibridge.stats.writeback_bytes >= 16 * KiB


def test_zero_partition_disables_redirection():
    env, server = make_server(ssd_partition=0)
    serve(env, server, sub(op=Op.WRITE, random=True))
    assert server.ibridge.stats.ssd_redirected_writes == 0
    assert server.hdd.stats.writes >= 1


def test_paper_return_policy_rarely_redirects():
    """The literal Eq. 1 policy: per-request averages make small
    requests look cheap, so nothing gets redirected (DESIGN.md §5)."""
    env, server = make_server(return_policy=ReturnPolicy.PAPER)
    for i in range(8):
        serve(env, server, sub(op=Op.WRITE, offset=i * 64 * KiB,
                               size=64 * KiB))  # large writes raise T a bit
    for i in range(4):
        serve(env, server, sub(op=Op.WRITE, offset=(100 + i) * 16 * KiB,
                               size=4 * KiB, random=True))
    assert server.ibridge.stats.ssd_redirected_writes <= 1


def test_sibling_term_uses_broadcast_table():
    env, server = make_server()
    # The sibling's broadcast T is tiny, so this server's live T gates
    # the striped request and the fragment's return gains the
    # (T - T_sibling_max) * n boost.
    t_sibling = 1e-4
    server.ibridge.t_table.update(TReport(server=1, t_value=t_sibling,
                                          time=0.0))
    t_live = server.ibridge.model.t_value
    assert t_live > t_sibling
    serve(env, server, sub(op=Op.WRITE, size=2 * KiB, fragment=True,
                           siblings=(1,)))
    [entry] = server.ibridge.mapping.entries
    # base > 0 is required for redirection, so ret exceeds the boost.
    assert entry.ret > t_live - t_sibling


def test_sibling_term_ignores_stale_self_report():
    """A stale broadcast entry for *this* server must not shadow the
    live T: the boost compares live T against the other servers only."""
    env, server = make_server()
    t_sibling = 1e-4
    # Absurdly high stale self-report; the buggy Eq. 3 would have used
    # it as T^max and inflated the boost to ~1 s.
    server.ibridge.t_table.update(TReport(server=0, t_value=1.0, time=0.0))
    server.ibridge.t_table.update(TReport(server=1, t_value=t_sibling,
                                          time=0.0))
    serve(env, server, sub(op=Op.WRITE, size=2 * KiB, fragment=True,
                           siblings=(1,)))
    [entry] = server.ibridge.mapping.entries
    assert entry.ret < 0.5


def test_sibling_term_suppressed_when_sibling_slower():
    """When a sibling's disk is slower, that disk gates the parent
    request and this server's fragment gets no magnification."""
    env, server = make_server()
    server.ibridge.t_table.update(TReport(server=1, t_value=10.0, time=0.0))
    serve(env, server, sub(op=Op.WRITE, size=2 * KiB, fragment=True,
                           siblings=(1,)))
    entries = list(server.ibridge.mapping.entries)
    if entries:  # redirected on base return alone
        assert entries[0].ret < 1e-2


def test_log_cleaning_relocates_live_data():
    env, server = make_server(ssd_partition=64 * KiB,
                              dynamic_partition=False,
                              static_split=(0.0, 1.0))
    # Partition 64 KiB -> log region 128 KiB, 16 KiB segments.  Fill and
    # overwrite to generate garbage and force cleaning.
    for round_ in range(6):
        for i in range(3):
            serve(env, server, sub(op=Op.WRITE, offset=i * 16 * KiB,
                                   size=15 * KiB, fragment=True,
                                   siblings=(1,)))
    log = server.ibridge._log
    assert log.live_bytes <= 64 * KiB
    drain(env, server)
