"""Tests for the degraded-disk extension experiment and hdd_overrides."""

import pytest

from repro.config import ClusterConfig, HDDConfig
from repro.errors import ConfigError
from repro.experiments import get
from repro.experiments.degraded import degraded_hdd
from repro.pfs import Cluster
from repro.units import KiB, MiB
from repro.workloads import MpiIoTest, run_workload

SMALL = 1 / 320


def test_degraded_hdd_scales_mechanics_only():
    base = HDDConfig()
    slow = degraded_hdd(base, factor=2.0)
    assert slow.rotational_miss == 2 * base.rotational_miss
    assert slow.seek_full == 2 * base.seek_full
    assert slow.seq_read_bw == base.seq_read_bw  # transfer unchanged


def test_hdd_overrides_apply_to_one_server():
    base = ClusterConfig(num_servers=4, client_jitter=0.0)
    cluster = Cluster(base, hdd_overrides={2: degraded_hdd(base.hdd)})
    normal = cluster.servers[0].hdd.config.rotational_miss
    slow = cluster.servers[2].hdd.config.rotational_miss
    assert slow == 2 * normal


def test_hdd_overrides_validated():
    base = ClusterConfig(num_servers=2)
    with pytest.raises(ConfigError):
        Cluster(base, hdd_overrides={0: HDDConfig(capacity=0)})


def test_degraded_server_slows_the_whole_system():
    # Unaligned writes with arrival jitter: positioning-dominated, so a
    # slow spindle on one server gates the striped requests.  (Aligned
    # in-order reads stream via forward skips and would not notice.)
    from repro.devices import Op
    base = ClusterConfig(num_servers=4)

    def run_with(overrides):
        cluster = Cluster(base, hdd_overrides=overrides)
        wl = MpiIoTest(nprocs=8, request_size=65 * KiB, file_size=8 * MiB,
                       op=Op.WRITE)
        return run_workload(cluster, wl).throughput_mib_s

    healthy = run_with(None)
    degraded = run_with({1: degraded_hdd(base.hdd, factor=3.0)})
    assert degraded < 0.8 * healthy


def test_degraded_experiment_eq3_matters_under_literal_policy():
    res = get("degraded")(scale=SMALL, nprocs=32)
    on = res.get("iBridge literal, Eq.3 on", "slow_redirects")
    off = res.get("iBridge literal, Eq.3 off", "slow_redirects")
    assert on > 2 * max(1.0, off)
    assert (res.get("iBridge literal, Eq.3 on", "throughput")
            > res.get("iBridge literal, Eq.3 off", "throughput"))
    # Every iBridge variant beats the degraded stock system.
    assert (res.get("iBridge efficiency-policy", "throughput")
            > res.get("stock", "throughput"))
