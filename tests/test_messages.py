"""Tests for protocol message objects."""

import pytest

from repro.devices import Op
from repro.pfs.messages import ParentRequest, SubRequest


def test_parent_latency_requires_both_timestamps():
    req = ParentRequest(op=Op.READ, handle=1, offset=0, nbytes=10, rank=0)
    assert req.latency is None
    req.submit_time = 1.0
    assert req.latency is None
    req.complete_time = 3.5
    assert req.latency == pytest.approx(2.5)


def test_request_ids_unique():
    a = ParentRequest(op=Op.READ, handle=1, offset=0, nbytes=1, rank=0)
    b = ParentRequest(op=Op.READ, handle=1, offset=0, nbytes=1, rank=0)
    assert a.id != b.id


def test_subrequest_geometry():
    sub = SubRequest(parent_id=1, op=Op.WRITE, handle=2, server=3,
                     local_offset=100, nbytes=50, rank=4)
    assert sub.local_end == 150
    assert not sub.is_small


def test_subrequest_small_flags():
    frag = SubRequest(parent_id=1, op=Op.READ, handle=1, server=0,
                      local_offset=0, nbytes=10, rank=0, is_fragment=True)
    rand = SubRequest(parent_id=1, op=Op.READ, handle=1, server=0,
                      local_offset=0, nbytes=10, rank=0, is_random=True)
    assert frag.is_small and rand.is_small


def test_op_is_write():
    assert Op.WRITE.is_write and not Op.READ.is_write
