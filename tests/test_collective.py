"""Tests for two-phase collective I/O and data sieving."""

import pytest

from repro.config import ClusterConfig
from repro.devices import Op
from repro.errors import WorkloadError
from repro.mpi import MPIRun
from repro.mpi.collective import sieve_plan, sieved_io
from repro.pfs import Cluster
from repro.units import KiB, MiB


def small_cluster(ibridge=False):
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0)
    if ibridge:
        cfg = cfg.with_ibridge(ssd_partition=16 * MiB)
    return Cluster(cfg)


# ---------------------------------------------------------------- sieving
def test_sieve_plan_coalesces_small_holes():
    pieces = [(0, 4 * KiB), (8 * KiB, 4 * KiB), (16 * KiB, 4 * KiB)]
    plan = sieve_plan(pieces, max_hole=8 * KiB)
    assert plan == [(0, 20 * KiB)]


def test_sieve_plan_splits_on_large_holes():
    pieces = [(0, 4 * KiB), (1 * MiB, 4 * KiB)]
    plan = sieve_plan(pieces, max_hole=64 * KiB)
    assert plan == [(0, 4 * KiB), (1 * MiB, 4 * KiB)]


def test_sieve_plan_respects_max_extent():
    pieces = [(i * 64 * KiB, 32 * KiB) for i in range(100)]
    plan = sieve_plan(pieces, max_hole=64 * KiB, max_extent=1 * MiB)
    assert all(n <= 1 * MiB for _off, n in plan)
    assert len(plan) > 1


def test_sieve_plan_rejects_overlaps_and_bad_pieces():
    with pytest.raises(WorkloadError):
        sieve_plan([(0, 8 * KiB), (4 * KiB, 8 * KiB)])
    with pytest.raises(WorkloadError):
        sieve_plan([(0, 0)])
    assert sieve_plan([]) == []


def test_sieved_read_issues_covering_extents():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB)
    plans = []

    def body(ctx):
        pieces = [(0, 4 * KiB), (8 * KiB, 4 * KiB)]
        plan = yield from sieved_io(ctx, Op.READ, handle, pieces,
                                    max_hole=16 * KiB)
        plans.append(plan)

    MPIRun(cluster, nprocs=1).run_to_completion(body)
    assert plans == [[(0, 12 * KiB)]]
    # One covering request, not two.
    assert len(cluster.requests) == 1
    assert cluster.requests[0].nbytes == 12 * KiB


def test_sieved_write_is_read_modify_write():
    cluster = small_cluster()
    handle = cluster.create_file(1 * MiB)

    def body(ctx):
        yield from sieved_io(ctx, Op.WRITE, handle,
                             [(0, 4 * KiB), (8 * KiB, 4 * KiB)],
                             max_hole=16 * KiB)

    MPIRun(cluster, nprocs=1).run_to_completion(body)
    ops = [(r.op, r.nbytes) for r in cluster.requests]
    assert (Op.READ, 12 * KiB) in ops
    assert (Op.WRITE, 12 * KiB) in ops


# ---------------------------------------------------------------- collective
def test_collective_write_completes_all_ranks():
    cluster = small_cluster()
    handle = cluster.create_file(2 * MiB)
    finished = []

    def body(ctx):
        offset = ctx.rank * 65 * KiB
        yield ctx.write_at_all(handle, offset, 65 * KiB)
        finished.append(ctx.rank)

    MPIRun(cluster, nprocs=8).run_to_completion(body)
    assert sorted(finished) == list(range(8))


def test_collective_requests_are_stripe_aligned():
    cluster = small_cluster()
    handle = cluster.create_file(4 * MiB)
    unit = cluster.config.stripe_unit

    def body(ctx):
        offset = ctx.rank * 65 * KiB  # unaligned application pattern
        yield ctx.write_at_all(handle, offset, 65 * KiB)

    MPIRun(cluster, nprocs=8).run_to_completion(body)
    # Aggregator requests (negative ranks) start stripe-aligned and are
    # large; at most the final domain end is unaligned.
    agg = [r for r in cluster.requests if r.rank < 0]
    assert agg, "no aggregator requests recorded"
    for r in agg:
        assert r.offset % unit == 0
    assert max(r.nbytes for r in agg) >= unit


def test_collective_rounds_match_by_call_order():
    cluster = small_cluster()
    handle = cluster.create_file(8 * MiB)
    log = []

    def body(ctx):
        for it in range(2):
            offset = (it * 4 + ctx.rank) * 64 * KiB
            yield ctx.write_at_all(handle, offset, 64 * KiB)
            log.append((it, ctx.rank, ctx.env.now))

    MPIRun(cluster, nprocs=4).run_to_completion(body)
    # All ranks leave each collective at the same simulated time.
    by_iter = {}
    for it, _rank, t in log:
        by_iter.setdefault(it, set()).add(round(t, 12))
    assert all(len(times) == 1 for times in by_iter.values())


def test_collective_double_join_rejected():
    cluster = small_cluster()
    run = MPIRun(cluster, nprocs=2)
    engine = run.collective
    engine.submit(0, Op.WRITE, 1, 0, 1024, call_id=0)
    with pytest.raises(WorkloadError):
        engine.submit(0, Op.WRITE, 1, 0, 1024, call_id=0)


def test_collective_converts_unaligned_to_aligned_dispatches():
    """The middleware fix: collective buffering removes fragments."""
    cfg = ClusterConfig(num_servers=4, client_jitter=0.0).with_ibridge(
        ssd_partition=16 * MiB)
    cluster = Cluster(cfg)
    handle = cluster.create_file(8 * MiB, preallocate=False)

    def body(ctx):
        for it in range(4):
            offset = (it * 8 + ctx.rank) * 65 * KiB
            yield ctx.write_at_all(handle, offset, 65 * KiB)

    MPIRun(cluster, nprocs=8).run_to_completion(body)
    cluster.drain()
    stats = cluster.ibridge_stats()
    # Nothing for iBridge to do: the aggregated requests shed almost no
    # fragments (only the ragged final domain can).
    assert stats.ssd_redirected_writes <= 2
