"""Tests for the repro.faults subsystem: plans, injection, recovery.

The three ISSUE-mandated scenarios — SSD fail-stop mid-writeback under
the strict auditor, retry exhaustion raising a typed error, and replay
determinism — plus unit coverage of the wrapper/queue/network/crash
mechanics the injector composes.
"""

import json

import pytest

from repro.config import ClusterConfig, NetworkConfig
from repro.devices import HardDisk, Op
from repro.errors import (DeviceFailedError, FaultError, ReproError,
                          RequestTimeoutError)
from repro.faults import (FaultEvent, FaultKind, FaultPlan, FaultableDevice,
                          fail_slow, faultable, gc_storm, server_outage,
                          ssd_outage)
from repro.net import Network, NetFault
from repro.pfs import Cluster
from repro.sim import Environment
from repro.units import KiB, MiB, US
from repro.util.rng import rng_stream
from repro.workloads import MpiIoTest, run_workload


def write_workload(nprocs=8, request_size=65 * KiB, file_size=4 * MiB):
    return MpiIoTest(nprocs=nprocs, request_size=request_size,
                     file_size=file_size, op=Op.WRITE)


def ibridge_config(**overrides):
    cfg = ClusterConfig(num_servers=4, **overrides)
    return cfg.with_ibridge(ssd_partition=64 * MiB)


# ---------------------------------------------------------------- plans

def test_plan_round_trips_through_dict_and_json():
    plan = FaultPlan(events=(
        fail_slow(1, 3.0, start=0.5, duration=2.0),
        ssd_outage(0, start=1.0, duration=1.0, policy="drain"),
        FaultEvent(kind=FaultKind.NET_DROP, duration=0.5, drop_prob=0.25),
    ), name="round-trip")
    clone = FaultPlan.from_dict(json.loads(plan.to_json()))
    assert clone == plan
    assert clone.name == "round-trip"
    # Defaults are elided from the serialized form.
    assert "disk" not in plan.events[0].to_dict()


def test_plan_from_file(tmp_path):
    path = tmp_path / "plan.json"
    plan = FaultPlan.single(server_outage(2, start=0.1, duration=0.2),
                            name="file-plan")
    path.write_text(plan.to_json(), encoding="utf-8")
    assert FaultPlan.from_file(str(path)) == plan
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(FaultError):
        FaultPlan.from_file(str(bad))


@pytest.mark.parametrize("event", [
    dict(kind="no_such_kind"),
    dict(kind="device_slow", server=0, latency_mult=2.0, mystery_field=1),
    dict(kind="device_slow", server=0),           # both multipliers 1 → no-op
    dict(kind="device_slow", latency_mult=2.0),   # no target server
    dict(kind="device_fail", server=0),           # fail-stop needs an end
    dict(kind="server_crash", server=0, start=-1.0, duration=1.0),
    dict(kind="net_drop", drop_prob=1.5, duration=1.0),
    dict(kind="ssd_fail", server=0, duration=1.0, policy="shrug"),
])
def test_plan_validation_rejects(event):
    with pytest.raises(FaultError):
        FaultEvent.from_dict(event)


def test_injector_rejects_out_of_range_targets():
    cfg = ClusterConfig(num_servers=2)
    plan = FaultPlan.single(fail_slow(5, 2.0))
    with pytest.raises(FaultError):
        Cluster(cfg, fault_plan=plan)


def test_typed_errors_are_repro_errors():
    assert issubclass(RequestTimeoutError, FaultError)
    assert issubclass(FaultError, ReproError)


# ---------------------------------------------------- faultable device

def test_faultable_scales_timing_but_forwards_state():
    hdd = HardDisk()
    wrapper = faultable(hdd)
    assert faultable(wrapper) is wrapper  # idempotent
    base = hdd.estimate_service_time(Op.READ, 10 * MiB, 64 * KiB)
    wrapper.set_slowdown(latency_mult=3.0, bw_mult=2.0)
    pos = hdd.positioning_time(Op.READ, 10 * MiB, 64 * KiB)
    xfer = hdd.transfer_time(Op.READ, 64 * KiB)
    scaled = wrapper.estimate_service_time(Op.READ, 10 * MiB, 64 * KiB)
    assert scaled == pytest.approx(3.0 * pos + 2.0 * xfer)
    assert scaled > base
    # State reads/writes pass through to the wrapped device.
    wrapper.serve(Op.READ, 10 * MiB, 64 * KiB)
    assert hdd._head == 10 * MiB + 64 * KiB
    assert wrapper.stats.reads == hdd.stats.reads == 1
    wrapper.clear_slowdown()
    assert not wrapper.degraded


def test_faultable_fail_stop_is_a_hard_backstop():
    wrapper = faultable(HardDisk())
    wrapper.fail_stop()
    with pytest.raises(DeviceFailedError):
        wrapper.serve(Op.WRITE, 0, 4 * KiB)
    wrapper.recover()
    wrapper.serve(Op.WRITE, 0, 4 * KiB)


def test_paused_queue_holds_requests_until_resume():
    from repro.block import BlockQueue, make_scheduler
    from repro.config import SchedulerConfig
    env = Environment()
    queue = BlockQueue(env, HardDisk(), make_scheduler(SchedulerConfig()))
    queue.pause()
    req = queue.submit(Op.READ, 10 * MiB, 64 * KiB)
    env.run(until=env.timeout(10.0))
    assert not req.done.triggered
    assert queue.idle_duration() == 0.0  # paused is not idle
    queue.resume()
    env.run(until=req.done)
    assert req.complete_time > 10.0


# ------------------------------------------------------------- network

def _flat_net(env):
    return Network(env, NetworkConfig(latency=10 * US, bandwidth=1000 * MiB,
                                      message_overhead=0.0))


def test_net_fault_adds_delay_inside_window_only():
    env = Environment()
    net = _flat_net(env)
    fault = net.add_fault(NetFault(delay=5 * US))
    done = net.send("a", "b", 0)
    env.run(until=done)
    assert env.now == pytest.approx(15 * US)
    net.remove_fault(fault)
    start = env.now
    env.run(until=net.send("a", "b", 0))
    assert env.now - start == pytest.approx(10 * US)
    assert net.stats.fault_delay_time == pytest.approx(5 * US)


def test_net_fault_drop_eats_the_message():
    env = Environment()
    net = _flat_net(env)
    net.add_fault(NetFault(drop_prob=1.0, rng=rng_stream(1, "drop")))
    done = net.send("a", "b", 0)
    env.run()
    assert not done.triggered
    assert net.stats.dropped == 1


def test_net_fault_endpoints_scope_the_window():
    env = Environment()
    net = _flat_net(env)
    net.add_fault(NetFault(delay=5 * US, endpoints={"b"}))
    hit = net.send("a", "b", 0)
    env.run(until=hit)
    assert env.now == pytest.approx(15 * US)
    start = env.now
    env.run(until=net.send("a", "c", 0))
    assert env.now - start == pytest.approx(10 * US)


# -------------------------------------------- mandated scenario tests

def test_ssd_fail_stop_mid_writeback_survives_strict_audit():
    # Conftest runs every cluster strictly audited: the forfeited-bytes
    # ledger and coherence checks abort the run on any miscount.
    wl = write_workload()
    baseline = run_workload(Cluster(ibridge_config()), write_workload())
    assert baseline.ssd_fraction > 0
    window = ssd_outage(0, start=baseline.makespan * 0.25,
                        duration=baseline.makespan * 0.4)
    cluster = Cluster(ibridge_config(),
                      fault_plan=FaultPlan.single(window, name="mid-wb"))
    res = run_workload(cluster, wl)
    assert res.recovery["ssd_outages"] == 1.0
    assert res.recovery["forfeited_bytes"] >= 0.0
    stats = cluster.ibridge_stats()
    assert stats.ssd_outages == 1
    # The injector logged both transitions and the SSD is back.
    phases = [r.phase for r in cluster.faults.records]
    assert phases == ["begin", "end"]
    assert all(u.ibridge.ssd_available
               for s in cluster.servers for u in s.disks)
    cluster.audit.final_check()


def test_ssd_drain_policy_forfeits_nothing():
    wl = write_workload()
    baseline = run_workload(Cluster(ibridge_config()), write_workload())
    window = ssd_outage(0, start=baseline.makespan * 0.25,
                        duration=baseline.makespan * 0.4, policy="drain")
    cluster = Cluster(ibridge_config(),
                      fault_plan=FaultPlan.single(window, name="drain"))
    res = run_workload(cluster, wl)
    assert res.recovery["ssd_outages"] == 1.0
    assert res.recovery["forfeited_bytes"] == 0.0
    cluster.audit.final_check()


def test_retry_exhaustion_raises_typed_error():
    cfg = ClusterConfig(num_servers=2).with_retry(
        timeout=0.02, max_retries=2, backoff_base=0.001, backoff_cap=0.01)
    plan = FaultPlan.single(
        FaultEvent(kind=FaultKind.NET_DROP, drop_prob=1.0), name="blackout")
    cluster = Cluster(cfg, fault_plan=plan)
    with pytest.raises(RequestTimeoutError) as err:
        run_workload(cluster, write_workload(nprocs=2, file_size=1 * MiB))
    assert "attempts" in str(err.value)
    # 1 original + 2 retries for the failing sub-request, all timed out.
    # Exactly one parent request records the give-up: its failure stops
    # the run before any other in-flight request can exhaust.
    assert sum(c.timeouts for c in cluster._clients.values()) >= 3
    assert sum(c.failures for c in cluster._clients.values()) == 1


def test_retry_rides_out_server_crash():
    cfg = ClusterConfig(num_servers=4).with_retry(
        timeout=0.05, max_retries=8, backoff_base=0.01, backoff_cap=0.05)
    baseline = run_workload(Cluster(cfg), write_workload())
    plan = FaultPlan.single(
        server_outage(1, start=baseline.makespan * 0.2,
                      duration=baseline.makespan * 0.2),
        name="crash")
    cluster = Cluster(cfg, fault_plan=plan)
    res = run_workload(cluster, write_workload())
    assert res.recovery["server_crashes"] == 1.0
    assert res.recovery["retries"] >= 1.0
    assert not cluster.servers[1].crashed
    assert cluster.servers[1].epoch == 1


def test_fail_slow_window_slows_the_run():
    cfg = ClusterConfig(num_servers=4)
    healthy = run_workload(Cluster(cfg), write_workload())
    plan = FaultPlan.single(fail_slow(1, 4.0, bw_mult=3.0), name="aging")
    degraded = run_workload(Cluster(cfg, fault_plan=plan), write_workload())
    assert degraded.makespan > 1.2 * healthy.makespan


def test_gc_storm_fleet_window_slows_ssds_and_reverts():
    cfg = ibridge_config()
    healthy = run_workload(Cluster(cfg), write_workload())
    plan = FaultPlan.single(gc_storm(start=0.0, duration=30.0),
                            name="correlated-storm")
    cluster = Cluster(cfg, fault_plan=plan)
    stormy = run_workload(cluster, write_workload())
    # Every drive stalled (the window is fleet-wide) and the makespan
    # carries the per-command gc_slice charges.
    assert all(s.ssd.gc_stall_time > 0.0 for s in cluster.servers)
    assert stormy.makespan > healthy.makespan
    begin = [r for r in cluster.faults.records if r.phase == "begin"]
    assert begin and begin[0].detail.get("drives") == len(cluster.servers)


def test_gc_storm_single_server_scopes_and_restores():
    cfg = ibridge_config()
    plan = FaultPlan.single(gc_storm(start=0.0, duration=0.05, server=1),
                            name="one-drive-storm")
    cluster = Cluster(cfg, fault_plan=plan)
    run_workload(cluster, write_workload())
    assert all(s.ssd._storm_depth == 0 for s in cluster.servers)
    assert cluster.servers[1].ssd.gc_stall_time > 0.0
    others = [s.ssd.gc_stall_time for s in cluster.servers if s.id != 1]
    assert all(t == 0.0 for t in others)


def test_gc_storm_requires_finite_window():
    with pytest.raises(FaultError):
        FaultPlan.single(FaultEvent(kind=FaultKind.GC_STORM)).validate()


def test_replay_is_deterministic():
    # A stochastic plan (message loss) twice under the same seed: the
    # transition log, the recovery counters, and the clock must match
    # bit-for-bit.
    cfg = ClusterConfig(num_servers=4).with_retry(
        timeout=0.05, max_retries=10, backoff_base=0.01, backoff_cap=0.05)
    plan = FaultPlan.single(
        FaultEvent(kind=FaultKind.NET_DROP, drop_prob=0.3, duration=0.5),
        name="lossy")

    def one_run():
        cluster = Cluster(cfg, fault_plan=plan)
        res = run_workload(cluster, write_workload())
        faults = [r for r in cluster.audit.trace.records()
                  if r["kind"] in ("fault_begin", "fault_end")]
        return (cluster.faults.signature(), res.recovery, res.makespan,
                faults)

    first, second = one_run(), one_run()
    assert first == second
    assert first[1]["net_dropped"] > 0  # the faults actually fired


def test_faults_experiment_is_registered():
    from repro.experiments import EXPERIMENTS
    assert "faults" in EXPERIMENTS
