"""Tests for the FTL/GC model: page mapping, the write-amplification
ledger, foreground GC charging, fleet coordination policies, and the
GC-storm device hook."""

import dataclasses

import pytest

from repro.config import SSDConfig
from repro.devices import Op, SolidStateDrive
from repro.devices.ftl import FlashTranslationLayer, GCCoordinator
from repro.errors import ConfigError, StorageError
from repro.units import KiB, MiB


def make_ftl(logical=64 * KiB, page=4 * KiB, ppb=4, op=1.0):
    return FlashTranslationLayer(logical, page, ppb, op)


def gc_ssd(**overrides):
    """A drive small enough for tests to wrap (4 MiB, 20 erase blocks)."""
    overrides.setdefault("capacity", 4 * MiB)
    overrides.setdefault("ftl_enabled", True)
    overrides.setdefault("gc_low_watermark", 0.30)
    overrides.setdefault("gc_high_watermark", 0.55)
    return SolidStateDrive(SSDConfig(**overrides))


def wrap_writes(ssd, passes=3, step=64 * KiB):
    """Sequential whole-drive write passes (idle_gap=0: no idle GC)."""
    stalls = []
    for _ in range(passes):
        for lbn in range(0, ssd.capacity, step):
            ssd.serve(Op.WRITE, lbn, step)
            stalls.append(ssd.last_gc_stall)
    return stalls


# ----------------------------------------------------------------- FTL unit
def test_host_write_programs_pages_and_ledger_balances():
    ftl = make_ftl()
    assert ftl.host_write(0, 8 * KiB) == 2
    assert ftl.host_write(4 * KiB + 1, 1) == 1   # sub-page still programs one
    assert ftl.host_pages_written == 3
    assert ftl.device_pages_written == 3
    assert ftl.write_amplification == 1.0
    assert len(ftl.page_map) == 2                 # page 1 was overwritten
    ftl.verify()


def test_overwrite_invalidates_and_collect_reclaims():
    ftl = make_ftl()
    for _ in range(2):                            # write logical space twice
        for lpn in range(ftl.logical_pages):
            ftl.host_write(lpn * ftl.page_size, ftl.page_size)
    free_before = ftl.free_blocks
    copied = ftl.collect_one()
    assert copied is not None and copied < ftl.pages_per_block
    assert ftl.free_blocks == free_before + 1
    assert ftl.erases == 1
    assert ftl.device_pages_written == ftl.host_pages_written + copied
    assert ftl.write_amplification >= 1.0
    ftl.verify()


def test_trim_invalidates_only_fully_covered_pages():
    ftl = make_ftl()
    ftl.host_write(0, 8 * KiB)                    # pages 0 and 1
    assert ftl.trim(1 * KiB, 4 * KiB) == 0        # straddles, covers neither
    assert len(ftl.page_map) == 2
    assert ftl.trim(0, 4 * KiB) == 1              # exactly page 0
    assert len(ftl.page_map) == 1
    assert ftl.trim(0, 4 * KiB) == 0              # already gone
    ftl.verify()


def test_collect_one_refuses_empty_and_fully_live():
    ftl = make_ftl()
    assert ftl.collect_one() is None              # nothing sealed yet
    for lpn in range(ftl.logical_pages):          # unique pages: all live
        ftl.host_write(lpn * ftl.page_size, ftl.page_size)
    assert ftl.collect_one() is None              # copying reclaims nothing
    ftl.verify()


def test_out_of_blocks_raises_then_gc_unblocks():
    ftl = make_ftl()
    with pytest.raises(StorageError):
        while True:                               # overwrite page 0 forever
            ftl.host_write(0, ftl.page_size)
    assert ftl.free_blocks == 0
    assert ftl.collect_one() is not None          # all-garbage victims
    ftl.host_write(0, ftl.page_size)              # and writes flow again
    ftl.verify()


def test_verify_catches_ledger_and_map_tampering():
    ftl = make_ftl()
    ftl.host_write(0, 16 * KiB)
    ftl.device_pages_written += 1
    with pytest.raises(StorageError, match="ledger"):
        ftl.verify()
    ftl.device_pages_written -= 1
    block, slot = ftl.page_map[0]
    block.pages[slot] = 7                         # stale mapping
    with pytest.raises(StorageError):
        ftl.verify()


def test_reset_restores_factory_state():
    ftl = make_ftl()
    for _ in range(3):
        for lpn in range(ftl.logical_pages):
            ftl.host_write(lpn * ftl.page_size, ftl.page_size)
        while ftl.collect_one() is not None:
            pass
    ftl.reset()
    assert ftl.host_pages_written == 0 and ftl.erases == 0
    assert ftl.free_blocks == ftl.total_blocks - 1   # fresh active block
    assert not ftl.page_map
    ftl.verify()


def test_geometry_validation():
    with pytest.raises(StorageError):
        make_ftl(op=0.0)                          # no spare space
    with pytest.raises(StorageError):
        make_ftl(ppb=1)
    with pytest.raises(ConfigError):
        SSDConfig(ftl_enabled=True, capacity=1 * MiB).validate()
    with pytest.raises(ConfigError):
        SSDConfig(gc_low_watermark=0.5, gc_high_watermark=0.4).validate()
    with pytest.raises(ConfigError):
        SSDConfig(gc_mode="eager").validate()
    with pytest.raises(ConfigError):
        SSDConfig(gc_policy="psychic").validate()


# ------------------------------------------------------------ GC charging
def test_sustained_writes_pay_foreground_gc_pauses():
    ssd = gc_ssd(gc_mode="pause")
    stalls = wrap_writes(ssd)
    assert ssd.ftl.erases > 0
    assert ssd.ftl.write_amplification > 1.0
    assert ssd.gc_stall_time > 0.0
    # A pause-mode stall covers at least one whole collection step.
    assert max(stalls) >= ssd.config.gc_erase_time
    ssd.ftl.verify()


def test_throttle_mode_bounds_per_command_stall():
    ssd = gc_ssd(gc_mode="throttle")
    stalls = wrap_writes(ssd)
    assert ssd.gc_stall_time > 0.0
    # Writes never jitter, so every instalment is capped by gc_slice.
    assert max(stalls) <= ssd.config.gc_slice + 1e-12
    ssd.ftl.verify()


def test_stall_lands_in_service_time_and_busy_time():
    ssd = gc_ssd(gc_mode="pause")
    wrap_writes(ssd, passes=2)
    base = ssd.transfer_time(Op.WRITE, 64 * KiB)
    busy_before = ssd.stats.busy_time
    ssd.serve(Op.WRITE, 0, 64 * KiB)
    while ssd.last_gc_stall == 0.0:
        ssd.serve(Op.WRITE, (ssd.stats.writes * 64 * KiB) % ssd.capacity,
                  64 * KiB)
    t = ssd.serve(Op.WRITE, 0, 64 * KiB, idle_gap=0.0)
    # Not every command stalls; but cumulative busy time carries them.
    assert ssd.stats.busy_time - busy_before >= ssd.gc_stall_time * 0.0
    assert t >= base


def test_idle_gaps_absorb_gc_but_overrun_spills_forward():
    busy = gc_ssd(gc_mode="pause")
    idle = gc_ssd(gc_mode="pause")
    for ssd in (busy, idle):
        wrap_writes(ssd, passes=2)       # same pressure on both
    busy_stall, idle_stall = 0.0, 0.0
    for lbn in range(0, busy.capacity, 64 * KiB):
        busy.serve(Op.WRITE, lbn, 64 * KiB)
        busy_stall += busy.last_gc_stall
        idle.serve(Op.WRITE, lbn, 64 * KiB, idle_gap=0.5)   # huge gaps
        idle_stall += idle.last_gc_stall
    assert idle_stall < busy_stall       # idle time hides collection
    # A gap smaller than one collection step still charges the overrun.
    tiny = gc_ssd(gc_mode="pause")
    wrap_writes(tiny, passes=2)
    tiny.notice_idle(1e-9)
    if tiny.ftl.gc_runs:                 # a burst ran: overrun is debt
        assert tiny._gc_debt >= 0.0


def test_estimate_service_time_stays_side_effect_free():
    ssd = gc_ssd()
    wrap_writes(ssd, passes=1)
    host = ssd.ftl.host_pages_written
    heads = dict(ssd._heads)
    ssd.estimate_service_time(Op.WRITE, 0, 64 * KiB)
    assert ssd.ftl.host_pages_written == host
    assert ssd._heads == heads


def test_gc_read_jitter_is_seeded_and_deterministic():
    def run(seed):
        ssd = SolidStateDrive(SSDConfig(), seed=seed, name="jitter-probe")
        ssd.gc_storm_begin()             # force a GC window, no FTL needed
        return [ssd.serve(Op.READ, i * 64 * KiB, 4 * KiB)
                for i in range(16)]
    a, b, c = run(1), run(1), run(2)
    assert a == b                        # same seed: bit-identical
    assert a != c                        # different stream
    plain = SolidStateDrive(SSDConfig(), seed=1, name="jitter-probe")
    base = [plain.serve(Op.READ, i * 64 * KiB, 4 * KiB) for i in range(16)]
    assert all(x >= y for x, y in zip(a, base))   # jitter only adds


# ------------------------------------------------------------- gc storms
def test_gc_storm_charges_every_command_until_released():
    ssd = SolidStateDrive(SSDConfig())   # no FTL: storms work regardless
    quiet = ssd.serve(Op.WRITE, 0, 64 * KiB)
    ssd.gc_storm_begin()
    ssd.gc_storm_begin()                 # nested windows stack
    stormy = ssd.serve(Op.WRITE, 64 * KiB, 64 * KiB)
    assert stormy == pytest.approx(quiet + ssd.config.gc_slice)
    ssd.gc_storm_end()
    assert ssd.gc_active                 # still one window deep
    ssd.gc_storm_end()
    ssd.gc_storm_end()                   # extra end is harmless
    calm = ssd.serve(Op.WRITE, 128 * KiB, 64 * KiB)
    assert calm == pytest.approx(quiet)


# ---------------------------------------------------------- coordination
class _FakeEnv:
    def __init__(self):
        self.now = 0.0


def _register(policy, slot=0.02, n=2):
    env = _FakeEnv()
    coord = GCCoordinator(env, policy, slot)
    drives = [SolidStateDrive(SSDConfig(), name=f"d{i}") for i in range(n)]
    for d in drives:
        coord.register(d)
    return env, coord, drives


def test_sync_policy_clears_whole_fleet_together():
    env, coord, (a, b) = _register("sync")
    assert not coord.should_collect(a, pressured=False)
    assert coord.should_collect(a, pressured=True)   # a under pressure
    assert coord.should_collect(b, pressured=False)  # b joins the window
    assert not coord.should_collect(a, pressured=False)  # window closes


def test_stagger_policy_grants_only_the_slot_owner():
    env, coord, (a, b) = _register("stagger", slot=0.02)
    env.now = 0.01                       # slot 0 -> drive a's turn
    assert coord.should_collect(a, pressured=True)
    assert coord.should_collect(a, pressured=False)  # proactive in-slot
    assert not coord.should_collect(b, pressured=True)
    env.now = 0.03                       # slot 1 -> drive b's turn
    assert coord.should_collect(b, pressured=True)
    assert not coord.should_collect(a, pressured=True)


def test_coordinator_rejects_unknown_policy():
    with pytest.raises(StorageError):
        GCCoordinator(_FakeEnv(), "unsync", 0.02)


def test_emergency_trickle_overrides_a_denying_coordinator():
    """An out-of-slot drive under hard page pressure still collects the
    floor it needs: policy shapes the tail, it never wedges a drive."""
    env = _FakeEnv()
    coord = GCCoordinator(env, "stagger", slot=1e9)   # never this drive
    ssd = gc_ssd()
    other = SolidStateDrive(SSDConfig(), name="slot-owner")
    coord.register(other)                # slot 0 forever belongs to other
    coord.register(ssd)
    wrap_writes(ssd, passes=4)           # would exhaust without trickle
    assert ssd.ftl.free_blocks >= 1      # never wedged
    assert ssd.ftl.erases > 0            # the trickle did collect
    ssd.ftl.verify()


def test_ftl_reset_clears_gc_state():
    ssd = gc_ssd(gc_mode="pause")
    wrap_writes(ssd, passes=3)
    ssd.ftl_reset()
    assert ssd.ftl.host_pages_written == 0
    assert not ssd.gc_active
    assert ssd.last_gc_stall == 0.0
