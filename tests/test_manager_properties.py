"""Property-based tests of iBridge cache-accounting invariants.

Drives a real DataServer with random sequences of reads and writes of
random sizes/offsets/flags, then checks the invariants the manager must
preserve no matter what:

* partition byte accounting equals the mapping table's contents,
* every cached entry's log extent is live, with correct sizes,
* cached ranges never overlap,
* per-class usage never exceeds the partition capacity (after drain),
* after drain, no dirty data remains and the disk holds everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core.manager import TABLE_ENTRY_BYTES
from repro.core.mapping import CacheKind
from repro.devices import HardDisk, Op, profile_device
from repro.pfs.messages import SubRequest
from repro.pfs.server import DataServer
from repro.sim import Environment
from repro.units import KiB, MiB

_PROFILE = None


def get_profile(cfg):
    global _PROFILE
    if _PROFILE is None:
        _PROFILE = profile_device(HardDisk(cfg.hdd))
    return _PROFILE


op_strategy = st.tuples(
    st.booleans(),                      # is_write
    st.integers(0, 63),                 # offset slot (4 KiB units)
    st.sampled_from([1, 2, 3, 4, 6, 8, 15]),  # size in 4 KiB units
    st.sampled_from(["none", "random", "fragment"]),
    st.integers(0, 7),                  # rank
)


def check_invariants(server):
    ib = server.ibridge
    entries = ib.mapping.entries

    # 1. Partition accounting matches the mapping table exactly.
    by_kind = {CacheKind.RANDOM: 0, CacheKind.FRAGMENT: 0}
    for e in entries:
        by_kind[e.kind] += e.nbytes
    assert ib.partition.used(CacheKind.RANDOM) == by_kind[CacheKind.RANDOM]
    assert ib.partition.used(CacheKind.FRAGMENT) == by_kind[CacheKind.FRAGMENT]

    # 2. Every entry's log extent is live, sized exactly data + the
    # persisted mapping-table entry — both admission paths (redirected
    # writes and read-miss fills) must charge the log identically.
    log = ib._log
    for e in entries:
        assert e.ssd_lbn in log._extents
        _seg, size = log._extents[e.ssd_lbn]
        assert size == e.nbytes + TABLE_ENTRY_BYTES

    # 3. Cached ranges never overlap (per handle).
    seen = {}
    for e in entries:
        ranges = seen.setdefault(e.handle, [])
        for s, t in ranges:
            assert e.end <= s or e.start >= t, "overlapping cache entries"
        ranges.append((e.start, e.end))

    # 4. Log live accounting is the sum of segment accounting.
    assert log.live_bytes == sum(seg.live_bytes for seg in log.segments)
    assert all(seg.live_bytes >= 0 for seg in log.segments)
    assert all(seg.live_bytes <= seg.write_cursor for seg in log.segments)


@settings(max_examples=25, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=40))
def test_random_ops_preserve_invariants(ops):
    env = Environment()
    cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
        ssd_partition=256 * KiB)
    server = DataServer(env, 0, cfg, get_profile(cfg))
    server.disk_store.preallocate(1, 4 * MiB)  # backing data for reads

    for is_write, slot, units, flag, rank in ops:
        sub = SubRequest(
            parent_id=1, op=Op.WRITE if is_write else Op.READ, handle=1,
            server=0, local_offset=slot * 4 * KiB, nbytes=units * 4 * KiB,
            rank=rank,
            is_fragment=(flag == "fragment"),
            is_random=(flag == "random"),
            sibling_servers=(1,) if flag == "fragment" else (),
        )
        done = server.submit(sub)
        env.run(until=done)
        check_invariants(server)

    # Drain: writeback completes, nothing dirty remains, usage bounded.
    proc = env.process(server.drain(), name="drain")
    env.run(until=proc)
    check_invariants(server)
    ib = server.ibridge
    assert ib.mapping.dirty_bytes == 0
    assert ib.partition.used() <= ib.partition.capacity


@settings(max_examples=10, deadline=None)
@given(st.lists(op_strategy, min_size=5, max_size=30), st.integers(0, 3))
def test_determinism_across_runs(ops, seed_salt):
    """Identical op sequences produce identical simulated timings."""
    def run_once():
        env = Environment()
        cfg = ClusterConfig(num_servers=2, client_jitter=0.0).with_ibridge(
            ssd_partition=256 * KiB)
        server = DataServer(env, 0, cfg, get_profile(cfg))
        server.disk_store.preallocate(1, 4 * MiB)
        for is_write, slot, units, flag, rank in ops:
            sub = SubRequest(
                parent_id=1, op=Op.WRITE if is_write else Op.READ, handle=1,
                server=0, local_offset=slot * 4 * KiB,
                nbytes=units * 4 * KiB, rank=rank,
                is_fragment=(flag == "fragment"),
                is_random=(flag == "random"),
                sibling_servers=(1,) if flag == "fragment" else (),
            )
            done = server.submit(sub)
            env.run(until=done)
        return env.now, server.hdd.stats.busy_time, server.ssd.stats.busy_time

    assert run_once() == run_once()
