#!/usr/bin/env python3
"""Fault-injection demo: break the cluster on a schedule, watch it heal.

Part 1 runs an unaligned write workload while the only SSD partition a
server has dies mid-run — once forfeiting its dirty log (hard
fail-stop) and once draining it first (graceful removal).  The strict
invariant auditor is on for both: the conservation ledgers account
every forfeited byte, and iBridge degrades to disk-only service until
the replacement SSD is admitted.

Part 2 runs the same workload through a crash of one data server plus
a lossy network window, recovered entirely by the client's
timeout/retry machinery, and prints the per-window fault report.

Run:  python examples/faults_demo.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.analysis import fault_report
from repro.config import AuditConfig
from repro.faults import (FaultEvent, FaultKind, FaultPlan, server_outage,
                          ssd_outage)
from repro.units import KiB, MiB


def make_config() -> ClusterConfig:
    cfg = ClusterConfig(num_servers=4,
                        audit=AuditConfig(enabled=True, strict=True))
    return cfg.with_ibridge(ssd_partition=32 * MiB)


def make_workload() -> MpiIoTest:
    return MpiIoTest(nprocs=16, request_size=65 * KiB,
                     file_size=16 * MiB, op=Op.WRITE)


def run_plan(cfg: ClusterConfig, plan):
    cluster = Cluster(cfg, fault_plan=plan)
    result = run_workload(cluster, make_workload())
    return cluster, result


def part_one() -> float:
    print("=== Part 1: SSD dies mid-run (strict audit on) ===")
    cfg = make_config()
    baseline = run_workload(Cluster(cfg), make_workload())
    span = baseline.makespan
    print(f"fault-free: {baseline.throughput_mib_s:.1f} MiB/s, "
          f"{baseline.ssd_fraction * 100:.1f}% of bytes via SSD")
    for policy in ("forfeit", "drain"):
        window = ssd_outage(0, start=span * 0.25, duration=span * 0.5,
                            policy=policy)
        cluster, res = run_plan(cfg, FaultPlan.single(window,
                                                      name=f"ssd-{policy}"))
        rec = res.recovery
        print(f"{policy:>8}: {res.throughput_mib_s:.1f} MiB/s, "
              f"forfeited {rec['forfeited_bytes'] / KiB:.0f} KiB, "
              f"audit ok={cluster.audit.ok}")
    print()
    return span


def part_two(span: float) -> None:
    print("=== Part 2: server crash + lossy network, retry recovers ===")
    # The deadline must clear the congested tail but re-issue well
    # within the crash window; see docs/FAULTS.md on calibration.
    cfg = make_config().with_retry(timeout=span * 0.1, max_retries=10,
                                   backoff_base=span * 0.01,
                                   backoff_cap=span * 0.1)
    plan = FaultPlan(events=(
        server_outage(1, start=span * 0.2, duration=span * 0.15),
        FaultEvent(kind=FaultKind.NET_DROP, start=0.0, duration=span * 0.5,
                   drop_prob=0.05),
    ), name="rough-day")
    cluster, res = run_plan(cfg, plan)
    rec = res.recovery
    print(f"completed at {res.throughput_mib_s:.1f} MiB/s despite "
          f"{int(rec['net_dropped'])} dropped messages and "
          f"{int(rec['server_crashes'])} crash "
          f"({int(rec['timeouts'])} timeouts, "
          f"{int(rec['retries'])} retries, 0 failures)")
    print()
    print(fault_report(res))


def main() -> None:
    span = part_one()
    part_two(span)


if __name__ == "__main__":
    main()
