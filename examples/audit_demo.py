#!/usr/bin/env python3
"""Audit demo: run an audited simulation, then catch a planted bug.

Part 1 runs an unaligned mpi-io-test workload with the invariant
auditor and livelock watchdog enabled.  Every iBridge admission,
writeback, eviction and log-clean is cross-checked against independent
byte ledgers; the run finishes with a conservation proof (every client
byte reached a device exactly once) and a trace summary.

Part 2 deliberately corrupts the partition accounting of a live
manager — the kind of bookkeeping slip an eviction-policy patch could
introduce — and shows the auditor catching it at the next check, with
the structured violation record a real debugging session would start
from.

Run:  python examples/audit_demo.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.config import AuditConfig
from repro.units import KiB, MiB


def audited_config(strict: bool = True) -> ClusterConfig:
    base = ClusterConfig(num_servers=4,
                         audit=AuditConfig(enabled=True, strict=strict))
    return base.with_ibridge(ssd_partition=32 * MiB)


def part_one() -> None:
    print("=== Part 1: audited unaligned write run ===")
    cluster = Cluster(audited_config(strict=True))
    workload = MpiIoTest(nprocs=16, request_size=65 * KiB,
                         file_size=16 * MiB, op=Op.WRITE)
    result = run_workload(cluster, workload)
    audit = cluster.audit
    print(f"throughput: {result.throughput_mib_s:.1f} MiB/s "
          f"({result.ssd_fraction * 100:.1f}% of bytes via SSD)")
    print(f"audit: ok={audit.ok}, violations={len(audit.violations)}")
    print("trace event counts:")
    for kind, count in sorted(audit.summary().items()):
        print(f"  {kind:>14}: {count}")
    print("Every client write byte was matched against a disk write,")
    print("an SSD redirection, a writeback, or a superseding overwrite;")
    print("the final check proved end-of-run conservation on each disk.")


def part_two() -> None:
    print()
    print("=== Part 2: planting a bookkeeping bug ===")
    cluster = Cluster(audited_config(strict=False))
    handle = cluster.create_file(8 * MiB)
    client = cluster.client(0)
    # Unaligned 65 KiB writes leave a fragment on one server each; a
    # short burst is enough for the model to start redirecting them.
    for i in range(24):
        done = client.submit(Op.WRITE, handle, i * 65 * KiB, 65 * KiB,
                             rank=0)
        cluster.env.run(until=done)

    # Corrupt the fragment-class byte counter of the first manager that
    # actually cached something — as if an eviction forgot to debit it.
    victim = None
    for server in cluster.servers:
        for unit in server.disks:
            mgr = unit.ibridge
            if mgr is not None and mgr.mapping.entries:
                victim = mgr
                break
        if victim is not None:
            break
    assert victim is not None, "expected at least one cached fragment"
    kind = next(iter(victim.mapping.entries)).kind
    victim.partition._bytes[kind] += 4 * KiB  # the planted bug

    cluster.audit.checkpoint("demo")
    cluster.shutdown()

    audit = cluster.audit
    print(f"audit: ok={audit.ok}, violations={len(audit.violations)}")
    for record in audit.violations[:1]:
        print("first violation record:")
        for key in sorted(record):
            print(f"  {key}: {record[key]}")
    print("In strict mode (the default) this would have raised AuditError")
    print("at the exact event that first observed the inconsistency.")


def main() -> None:
    part_one()
    part_two()


if __name__ == "__main__":
    main()
