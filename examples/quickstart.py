#!/usr/bin/env python3
"""Quickstart: measure the unaligned-access penalty and iBridge's fix.

Builds the paper's eight-server PVFS2-like cluster, runs mpi-io-test
with aligned (64 KiB) and unaligned (65 KiB) requests on the stock
system and with iBridge, and prints a small comparison table.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.analysis import format_table
from repro.units import KiB, MiB


def throughput(config, request_size, op=Op.WRITE, nprocs=32,
               file_size=64 * MiB):
    """One mpi-io-test run on a fresh cluster; returns MiB/s."""
    cluster = Cluster(config)
    workload = MpiIoTest(nprocs=nprocs, request_size=request_size,
                         file_size=file_size, op=op)
    result = run_workload(cluster, workload)
    return result.throughput_mib_s, result.ssd_fraction


def main():
    stock = ClusterConfig(num_servers=8)
    # The SSD partition is scaled to the (small) working set here; the
    # paper pairs a 10 GB partition with a 10 GB file.
    ibridge = stock.with_ibridge(ssd_partition=64 * MiB)

    rows = []
    for label, size in [("aligned 64KiB", 64 * KiB),
                        ("unaligned 65KiB", 65 * KiB)]:
        tp_stock, _ = throughput(stock, size)
        tp_ib, ssd_frac = throughput(ibridge, size)
        gain = (tp_ib - tp_stock) / tp_stock * 100
        rows.append([label, f"{tp_stock:.1f}", f"{tp_ib:.1f}",
                     f"{gain:+.1f}%", f"{ssd_frac * 100:.1f}%"])

    print(format_table(
        ["request pattern", "stock MiB/s", "iBridge MiB/s", "gain",
         "data served by SSD"],
        rows,
        title="mpi-io-test writes, 32 processes, 8 data servers"))
    print()
    print("The 65KiB pattern leaves a small fragment on one server per")
    print("request; serving those fragments from the SSD log restores")
    print("most of the aligned throughput (paper Fig. 4).")


if __name__ == "__main__":
    main()
