#!/usr/bin/env python3
"""Run-over-run warming of the iBridge read cache.

For writes iBridge helps immediately; for reads it can only serve what
is already cached.  The paper's rationale (Section II-B): production
MPI programs run many times with consistent access patterns, so the
fragments identified in one run are pre-loaded for the next.

This example executes the same unaligned read workload five times on
one cluster and prints throughput per run: run 1 populates the cache
(misses admit data during idle periods), later runs hit it.

Run:  python examples/rerun_warming.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op
from repro.analysis import format_table
from repro.mpi import MPIRun
from repro.units import KiB, MiB


def main():
    config = ClusterConfig(num_servers=8).with_ibridge(
        ssd_partition=64 * MiB)
    cluster = Cluster(config)
    workload = MpiIoTest(nprocs=32, request_size=65 * KiB,
                         file_size=64 * MiB, op=Op.READ)
    workload.prepare(cluster)

    rows = []
    for run_no in range(1, 6):
        start = cluster.env.now
        cluster.requests.clear()
        MPIRun(cluster, workload.nprocs).run_to_completion(workload.body)
        cluster.drain()
        elapsed = cluster.env.now - start
        throughput = workload.total_bytes / (1024 * 1024) / elapsed
        cached = sum(len(s.ibridge.mapping) for s in cluster.servers)
        rows.append([run_no, f"{throughput:.1f}", cached])

    print(format_table(
        ["run", "MiB/s", "cached fragments (entries)"],
        rows,
        title="Same unaligned read workload, re-executed on one cluster"))
    print()
    print("Run 1 serves everything from the disks while the background")
    print("fill daemon copies hot fragments into the SSD log; later runs")
    print("serve those fragments from the SSDs and approach the aligned")
    print("throughput (paper Section II-B's pre-loading rationale).")


if __name__ == "__main__":
    main()
