#!/usr/bin/env python3
"""Small scattered writes (BTIO-style checkpointing) on three systems.

The paper's intro motivates iBridge with checkpoint/restart-style
workloads.  This example runs a scaled BTIO (compute phases alternating
with bursts of sub-KB..few-KB writes) on:

* the stock disk-backed system,
* an all-SSD system (files stored directly on the SSDs), and
* the disk system with iBridge.

It shows the paper's Fig. 9/10 story: iBridge removes almost all I/O
time, and matches/beats even the all-SSD system because its
log-structured writes avoid the SSD's random-write penalty.

Run:  python examples/checkpoint_small_writes.py
"""

from repro import BTIO, Cluster, ClusterConfig, run_workload
from repro.analysis import format_table
from repro.units import MiB


def run_system(label, config, workload_args):
    cluster = Cluster(config)
    workload = BTIO(**workload_args)
    result = run_workload(cluster, workload)
    compute = workload.steps * workload.compute_per_step
    io_time = max(0.0, result.makespan - compute)
    ssd_pos = sum(s.ssd.stats.positioning_time for s in cluster.servers)
    ssd_ops = sum(s.ssd.stats.total_requests for s in cluster.servers)
    return {
        "label": label,
        "exec": result.makespan,
        "io": io_time,
        "ssd_setup_ms": ssd_pos / ssd_ops * 1000 if ssd_ops else 0.0,
    }


def main():
    nprocs = 16
    workload_args = dict(nprocs=nprocs, steps=4, scale=1 / 320,
                         compute_per_step=1.0)
    systems = [
        ("disk-only (stock)", ClusterConfig(num_servers=8)),
        ("ssd-only", ClusterConfig(num_servers=8, primary_store="ssd")),
        ("disk + iBridge", ClusterConfig(num_servers=8).with_ibridge(
            ssd_partition=64 * MiB)),
    ]
    rows = []
    for label, config in systems:
        out = run_system(label, config, workload_args)
        rows.append([out["label"], f"{out['exec']:.2f}", f"{out['io']:.2f}",
                     f"{out['ssd_setup_ms']:.3f}"])
    print(format_table(
        ["system", "execution (s)", "I/O time (s)", "SSD setup ms/op"],
        rows,
        title=f"BTIO-style checkpointing, {nprocs} ranks "
              f"(compute 4x1.0s, tiny scattered writes)"))
    print()
    print("Tiny scattered writes devastate the disks (read-modify-write +")
    print("positioning per request).  The all-SSD system pays the SSD's")
    print("per-command setup on every random write; iBridge's log turns")
    print("them into sequential appends (zero setup) and writes the data")
    print("back to the disks later as one sorted sweep.")


if __name__ == "__main__":
    main()
