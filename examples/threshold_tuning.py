#!/usr/bin/env python3
"""Tune iBridge's request-size threshold (paper Section III-G, Fig. 13).

The threshold decides which sub-requests count as fragments / regular
random requests.  Higher thresholds redirect more data to the SSD:
throughput rises, but so does SSD wear.  The paper picks 20 KB as the
sweet spot.  This example sweeps the threshold and prints the same
normalized throughput / SSD usage trade-off, plus the dynamic partition
shares the servers converged to.

Run:  python examples/threshold_tuning.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.analysis import format_table
from repro.units import KiB, MiB


def main():
    nprocs, file_size = 32, 64 * MiB
    aligned = run_workload(
        Cluster(ClusterConfig(num_servers=8)),
        MpiIoTest(nprocs=nprocs, request_size=64 * KiB,
                  file_size=file_size, op=Op.WRITE))
    base_tp = aligned.throughput_mib_s

    rows = []
    for threshold_kib in (10, 20, 30, 40):
        config = ClusterConfig(num_servers=8).with_ibridge(
            ssd_partition=64 * MiB,
            fragment_threshold=threshold_kib * KiB,
            random_threshold=threshold_kib * KiB)
        cluster = Cluster(config)
        workload = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                             file_size=file_size, op=Op.WRITE)
        result = run_workload(cluster, workload)
        shares = cluster.servers[0].ibridge.partition.shares()
        rows.append([
            f"{threshold_kib}KiB",
            f"{result.throughput_mib_s:.1f}",
            f"{result.throughput_mib_s / base_tp:.2f}",
            f"{result.ssd_fraction * 100:.1f}%",
            f"{shares[0]:.2f}/{shares[1]:.2f}",
        ])

    print(format_table(
        ["threshold", "MiB/s", "vs aligned", "SSD usage",
         "random/fragment shares"],
        rows,
        title="65KiB writes: threshold vs throughput and SSD usage"))
    print()
    print("Bigger thresholds buy throughput with SSD lifetime; the paper")
    print("chooses 20KB, trading ~21% of the 40KB throughput for ~76%")
    print("less SSD traffic.")


if __name__ == "__main__":
    main()
