#!/usr/bin/env python3
"""Reproduce the paper's motivation study (Section I-A / Figure 2).

Sweeps Pattern II request sizes and Pattern III offsets on the stock
system, then shows the block-level dispatch-size distributions that
explain the throughput loss: unaligned requests collapse the disk's
dispatched request sizes.

Run:  python examples/unaligned_access_study.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.analysis import format_histogram, format_table
from repro.units import KiB, MiB


def run_case(request_size, offset=0, nprocs=32, trace=False):
    cluster = Cluster(ClusterConfig(num_servers=8), trace_disk=trace)
    workload = MpiIoTest(nprocs=nprocs, request_size=request_size,
                         file_size=64 * MiB, op=Op.READ,
                         offset_shift=offset)
    result = run_workload(cluster, workload)
    return result, cluster


def main():
    print("== Pattern II: request size vs throughput (reads) ==")
    rows = []
    base = None
    for size_kib in (64, 65, 74, 84, 94):
        result, _ = run_case(size_kib * KiB)
        if base is None:
            base = result.throughput_mib_s
        loss = (base - result.throughput_mib_s) / base * 100
        rows.append([f"{size_kib}KiB", f"{result.throughput_mib_s:.1f}",
                     f"-{loss:.0f}%" if loss > 0 else "ref"])
    print(format_table(["request size", "MiB/s", "vs aligned"], rows))

    print()
    print("== Pattern III: 64KiB requests at shifted offsets ==")
    rows = []
    for off_kib in (0, 1, 10, 32):
        result, _ = run_case(64 * KiB, offset=off_kib * KiB)
        rows.append([f"+{off_kib}KiB", f"{result.throughput_mib_s:.1f}"])
    print(format_table(["offset", "MiB/s"], rows))

    print()
    print("== Block-level dispatch sizes (Figs. 2c/2d) ==")
    for label, size, off in [("aligned 64KiB", 64 * KiB, 0),
                             ("unaligned 65KiB", 65 * KiB, 0)]:
        _result, cluster = run_case(size, off, trace=True)
        merged = {}
        for server in cluster.servers:
            for sectors, count in server.disk_tracer.size_histogram().items():
                merged[sectors] = merged.get(sectors, 0) + count
        total = sum(merged.values())
        dist = {s: c / total for s, c in merged.items()}
        print(f"-- {label}:")
        print(format_histogram(dist, top=5))
        print()


if __name__ == "__main__":
    main()
