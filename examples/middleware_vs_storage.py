#!/usr/bin/env python3
"""Middleware fix vs storage fix for unaligned access.

Two remedies exist for the fragment problem the paper attacks:

* **collective I/O** (ROMIO two-phase): ranks exchange data so that a
  few aggregators issue large stripe-aligned requests — the fragments
  never reach the servers;
* **iBridge**: the servers absorb the fragments on SSDs.

This example runs the unaligned 65 KiB mpi-io-test under both (and
their combination) and prints the comparison.  It shows why the paper
targets independent-I/O workloads: when collective buffering applies,
it solves alignment outright — but it requires every rank to
participate in every call, which checkpoint libraries and legacy codes
often cannot guarantee.

Run:  python examples/middleware_vs_storage.py
"""

from repro import Cluster, ClusterConfig, MpiIoTest, Op, run_workload
from repro.analysis import format_table
from repro.units import KiB, MiB


def measure(config, collective):
    cluster = Cluster(config)
    workload = MpiIoTest(nprocs=32, request_size=65 * KiB,
                         file_size=64 * MiB, op=Op.WRITE,
                         collective=collective)
    result = run_workload(cluster, workload)
    return result.throughput_mib_s, result.ssd_fraction


def main():
    stock = ClusterConfig(num_servers=8)
    bridge = stock.with_ibridge(ssd_partition=64 * MiB)
    rows = []
    for label, cfg, coll in [
        ("independent I/O (the problem)", stock, False),
        ("+ collective I/O", stock, True),
        ("+ iBridge", bridge, False),
        ("+ both", bridge, True),
    ]:
        tp, ssd = measure(cfg, coll)
        rows.append([label, f"{tp:.1f}", f"{ssd * 100:.1f}%"])
    print(format_table(
        ["system", "MiB/s", "SSD share"],
        rows,
        title="Unaligned 65KiB writes, 32 ranks: middleware vs storage fix"))
    print()
    print("Collective buffering re-aligns requests before they reach the")
    print("servers; iBridge absorbs the fragments at the servers. They")
    print("overlap almost completely — iBridge matters exactly where")
    print("collective I/O is not in use (independent I/O, uncoordinated")
    print("writers, small random requests).")


if __name__ == "__main__":
    main()
