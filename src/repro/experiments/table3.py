"""Table III: trace-replay request service times, stock vs iBridge.

The four synthesized scientific traces are replayed by a single process
(as the paper does with the Sandia traces); the metric is the average
request service time.  Expected: 14-30% reductions, larger for CTH and
S3D (more random/unaligned requests), and S3D's average about twice the
others' (much larger requests).
"""

from __future__ import annotations

from ..units import GiB
from ..workloads.replay import TraceReplay
from ..workloads.traces import APP_PROFILES, synthesize_trace
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, measure,
                     scaled_ibridge)

#: Paper Table III (ms): app -> (stock, iBridge).
PAPER_TABLE3 = {
    "ALEGRA-2744": (16.6, 14.2),
    "ALEGRA-5832": (17.2, 14.0),
    "CTH": (19.4, 14.4),
    "S3D": (36.0, 25.3),
}


def run(scale: float = DEFAULT_SCALE, requests: int = 600,
        seed: int = 20130520) -> ExperimentResult:
    result = ExperimentResult(
        name="table3",
        title="Table III — trace replay, mean request service time (ms)",
        headers=["app", "stock", "iBridge", "reduction%",
                 "paper stock", "paper iBridge"],
    )
    span = max(int(10 * GiB * scale), 64 * 1024 * 1024)
    for app in APP_PROFILES:
        trace = synthesize_trace(app, requests=requests, span=span, seed=seed)
        stock, _ = measure(base_config(),
                           TraceReplay(trace, span=span, name=f"replay-{app}"))
        ib_cfg = scaled_ibridge(base_config(), scale)
        ib, _ = measure(ib_cfg,
                        TraceReplay(trace, span=span, name=f"replay-{app}"),
                        warm_runs=1)
        s_ms = stock.mean_service_time * 1000
        i_ms = ib.mean_service_time * 1000
        red = (s_ms - i_ms) / s_ms * 100 if s_ms else 0
        ps, pi = PAPER_TABLE3[app]
        result.add_row([app, round(s_ms, 1), round(i_ms, 1), round(red, 1),
                        ps, pi],
                       stock_ms=s_ms, ibridge_ms=i_ms, reduction=red)
    result.notes.append("paper reductions: 13.9/18.7/25.9/29.8 %; CTH and "
                        "S3D gain more (more random/unaligned requests)")
    return result
