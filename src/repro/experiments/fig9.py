"""Figure 9: BTIO execution times with and without iBridge.

Computing scale C (6.8 GB over 40 steps); 9/16/64/100 processes.
Per-request sizes shrink from 2160 B to 640 B as the process count
grows, so every write is a regular random request and is served by the
SSDs.  The paper reports execution-time reductions of 45/55/61/59 %
and the I/O share of execution time dropping from 58% to 4%.
"""

from __future__ import annotations

from typing import Sequence

from ..workloads.btio import BTIO
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, measure,
                     scaled_ibridge)

PAPER_REDUCTIONS = {9: 45.0, 16: 55.0, 64: 61.0, 100: 59.0}


#: Estimated stock-system disk cost per BTIO write (reposition + RMW
#: settle + transfer), used only to pick a compute time.
_STOCK_WRITE_COST = 0.0095

def make_btio(nprocs: int, scale: float, steps: int = 10,
              num_servers: int = 8) -> BTIO:
    """A scaled BTIO instance.

    The modelled compute time per step is chosen so the *stock* system
    spends ~58% of its execution time in I/O, matching the paper's
    measurement — the reduction percentages are only comparable under
    the same I/O share.
    """
    probe = BTIO(nprocs=nprocs, steps=steps, scale=scale,
                 compute_per_step=0.0)
    total_requests = probe.requests_per_step * nprocs * steps
    stock_io_est = total_requests * _STOCK_WRITE_COST / num_servers
    compute_per_step = 0.72 * stock_io_est / steps
    return BTIO(nprocs=nprocs, steps=steps, scale=scale,
                compute_per_step=compute_per_step)


def run(scale: float = DEFAULT_SCALE,
        procs: Sequence[int] = (9, 16, 64, 100),
        steps: int = 10) -> ExperimentResult:
    result = ExperimentResult(
        name="fig9",
        title="Fig 9 — BTIO execution time (s)",
        headers=["nprocs", "stock", "iBridge", "reduction%", "paper red.%"],
    )
    stock_cfg = base_config()
    ib_cfg = scaled_ibridge(base_config(), scale)
    for np_ in procs:
        stock, _ = measure(stock_cfg, make_btio(np_, scale, steps))
        ib, _ = measure(ib_cfg, make_btio(np_, scale, steps))
        red = ((stock.makespan - ib.makespan) / stock.makespan * 100
               if stock.makespan else 0)
        result.add_row(
            [np_, round(stock.makespan, 2), round(ib.makespan, 2),
             round(red, 1), PAPER_REDUCTIONS.get(np_, float("nan"))],
            stock=stock.makespan, ibridge=ib.makespan, reduction=red)
    result.notes.append("paper: execution time reduced 45-61%; all BTIO "
                        "writes are below the 20KB threshold")
    return result
