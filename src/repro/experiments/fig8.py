"""Figure 8: ior-mpi-io throughput, stock vs iBridge.

64 processes each scanning a private chunk of a shared file — random
access from the file system's perspective.  Request sizes 33/64/65/129
KB; the paper reports larger gains for writes (+169% average) than
reads (+48%), and parity at the fully aligned 64 KB size.
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.ior import IorMpiIo
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        sizes_kib: Sequence[int] = (33, 64, 65, 129),
        op: Op | None = None) -> ExperimentResult:
    ops = (Op.WRITE, Op.READ) if op is None else (op,)
    result = ExperimentResult(
        name="fig8",
        title="Fig 8 — ior-mpi-io throughput (MiB/s), 64 procs",
        headers=["size/op", "stock", "iBridge", "gain%", "ssd%"],
    )
    stock_cfg = base_config()
    ib_cfg = scaled_ibridge(base_config(), scale)
    for the_op in ops:
        for s in sizes_kib:
            size = s * KiB
            args = dict(nprocs=nprocs, request_size=size,
                        file_size=file_bytes(scale, nprocs, size), op=the_op)
            stock, _ = measure(stock_cfg, IorMpiIo(**args))
            ib, _ = measure(ib_cfg, IorMpiIo(**args),
                            warm_runs=1 if the_op is Op.READ else 0)
            gain = ((ib.throughput_mib_s - stock.throughput_mib_s)
                    / stock.throughput_mib_s * 100 if stock.throughput_mib_s else 0)
            result.add_row(
                [f"{s}KiB/{the_op.value}", round(stock.throughput_mib_s, 1),
                 round(ib.throughput_mib_s, 1), round(gain, 1),
                 round(ib.ssd_fraction * 100, 1)],
                stock=stock.throughput_mib_s, ibridge=ib.throughput_mib_s,
                gain=gain, ssd_pct=ib.ssd_fraction * 100)
    result.notes.append(
        "paper: +169% average for writes, +48% for reads; no change at "
        "64 KiB; SSD shares 19%/10%/4% at 33/65/129 KiB")
    return result
