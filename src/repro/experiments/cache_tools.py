"""Maintenance for the on-disk result cache (``.ibridge-cache/``).

The cache grows without bound by design — every distinct cell ever run
leaves a pickle — which is fine for one developer and wrong for a
worker fleet sharing one directory.  ``ibridge-experiment cache``
exposes:

* ``stats`` — entry count, total bytes, age range;
* ``prune --max-age AGE`` — drop entries not touched for AGE;
* ``prune --max-bytes SIZE`` — then evict least-recently-used entries
  until the cache fits in SIZE.

"Recently used" is file mtime: :meth:`ResultCache.get` touches an
entry on every hit, so mtime is a true LRU clock (atime is unreliable
on ``noatime`` mounts).  Prune unlinks are racy-safe against concurrent
workers — a worker that loses its entry mid-run simply re-executes and
rewrites it (the cache is content-addressed, so this is always sound).
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .runner import default_cache_dir

_SIZE_UNITS = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3,
               "t": 1024 ** 4}
_AGE_UNITS = {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
              "w": 7 * 86400.0}


def parse_size(text: str) -> int:
    """``"500M"``/``"2g"``/``"1048576"`` -> bytes."""
    m = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kKmMgGtT]?)[bB]?\s*", text)
    if m is None:
        raise ValueError(f"cannot parse size {text!r} (try '500M', '2G')")
    return int(float(m.group(1)) * _SIZE_UNITS[m.group(2).lower()])


def parse_age(text: str) -> float:
    """``"7d"``/``"12h"``/``"90"`` (seconds) -> seconds."""
    m = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smhdwSMHDW]?)\s*", text)
    if m is None:
        raise ValueError(f"cannot parse age {text!r} (try '7d', '12h')")
    return float(m.group(1)) * _AGE_UNITS[m.group(2).lower()]


def _entries(directory: str) -> List[Tuple[str, int, float]]:
    """All cache entry files as ``(path, bytes, mtime)``."""
    out: List[Tuple[str, int, float]] = []
    for root, _dirs, files in os.walk(directory):
        for name in files:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # pruned/raced away
            out.append((path, st.st_size, st.st_mtime))
    return out


@dataclass
class CacheStats:
    """One ``cache stats`` snapshot."""

    directory: str
    files: int = 0
    bytes: int = 0
    oldest_age: Optional[float] = None
    newest_age: Optional[float] = None

    def format(self) -> str:
        lines = [f"cache {self.directory}: {self.files} entr"
                 f"{'y' if self.files == 1 else 'ies'}, "
                 f"{self.bytes / (1024 ** 2):.1f} MiB"]
        if self.files:
            lines.append(f"  oldest entry untouched for "
                         f"{self.oldest_age / 3600.0:.1f} h, newest for "
                         f"{self.newest_age / 3600.0:.1f} h")
        return "\n".join(lines)


def cache_stats(directory: Optional[str] = None,
                clock=time.time) -> CacheStats:
    directory = directory or default_cache_dir()
    stats = CacheStats(directory=directory)
    if not os.path.isdir(directory):
        return stats
    now = clock()
    ages = []
    for _path, size, mtime in _entries(directory):
        stats.files += 1
        stats.bytes += size
        ages.append(now - mtime)
    if ages:
        stats.oldest_age = max(ages)
        stats.newest_age = min(ages)
    return stats


@dataclass
class PruneReport:
    """What ``cache prune`` removed and what remains."""

    directory: str
    removed_files: int = 0
    removed_bytes: int = 0
    kept_files: int = 0
    kept_bytes: int = 0
    removed: List[str] = field(default_factory=list)

    def format(self) -> str:
        return (f"pruned {self.removed_files} entr"
                f"{'y' if self.removed_files == 1 else 'ies'} "
                f"({self.removed_bytes / (1024 ** 2):.1f} MiB) from "
                f"{self.directory}; kept {self.kept_files} "
                f"({self.kept_bytes / (1024 ** 2):.1f} MiB)")


def prune_cache(directory: Optional[str] = None,
                max_bytes: Optional[int] = None,
                max_age: Optional[float] = None,
                dry_run: bool = False,
                clock=time.time) -> PruneReport:
    """Evict by age, then by LRU until the cache fits ``max_bytes``."""
    if max_bytes is None and max_age is None:
        raise ValueError("prune needs --max-bytes and/or --max-age")
    directory = directory or default_cache_dir()
    report = PruneReport(directory=directory)
    if not os.path.isdir(directory):
        return report
    now = clock()
    entries = sorted(_entries(directory), key=lambda e: e[2])  # LRU first

    doomed: List[Tuple[str, int, float]] = []
    kept: List[Tuple[str, int, float]] = []
    if max_age is not None:
        for entry in entries:
            (doomed if now - entry[2] > max_age else kept).append(entry)
    else:
        kept = entries
    if max_bytes is not None:
        excess = sum(size for _p, size, _m in kept) - max_bytes
        still: List[Tuple[str, int, float]] = []
        for entry in kept:  # oldest first
            if excess > 0:
                doomed.append(entry)
                excess -= entry[1]
            else:
                still.append(entry)
        kept = still

    for path, size, _mtime in doomed:
        if not dry_run:
            try:
                os.unlink(path)
            except OSError:
                continue  # a concurrent prune/worker got there first
        report.removed_files += 1
        report.removed_bytes += size
        report.removed.append(path)
    for _path, size, _mtime in kept:
        report.kept_files += 1
        report.kept_bytes += size
    if not dry_run:
        _remove_empty_shards(directory)
    return report


def _remove_empty_shards(directory: str) -> None:
    """Drop now-empty two-hex shard subdirectories."""
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        shard = os.path.join(directory, name)
        if len(name) == 2 and os.path.isdir(shard):
            try:
                os.rmdir(shard)  # fails (correctly) unless empty
            except OSError:
                pass
