"""Registry of all experiments, keyed by the paper artifact they rebuild."""

from __future__ import annotations

from typing import Callable, Dict

from . import (ablation, collective, degraded, faults, fig2, fig3, fig4, fig5,
               fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, gc, table1,
               table2, table3)
from .common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2.run,
    "fig2a": fig2.run_fig2a,
    "fig2b": fig2.run_fig2b,
    "fig2cde": fig2.run_fig2cde,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "table3": table3.run,
    "ablation": ablation.run,
    "collective": collective.run,
    "degraded": degraded.run,
    "faults": faults.run,
    "gc": gc.run,
}


def get(name: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment by name (KeyError lists what exists)."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {', '.join(sorted(EXPERIMENTS))}") from None
