"""Figure 5: block-level dispatch sizes with iBridge, 64 KB + 10 KB offset.

The counterpart of Fig. 2(e): with the 10 KB fragments served by the
SSDs (cached in a prior run), the disks' dispatched read sizes return
to large (≥128-sector) requests.
"""

from __future__ import annotations

from typing import Dict

from ..devices.base import Op
from ..units import KiB
from ..workloads.base import run_workload
from ..workloads.mpi_io_test import MpiIoTest
from ..pfs.cluster import Cluster
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64) -> ExperimentResult:
    cfg = scaled_ibridge(base_config(), scale)
    size = 64 * KiB
    wl = MpiIoTest(nprocs=nprocs, request_size=size,
                   file_size=file_bytes(scale, nprocs, size),
                   op=Op.READ, offset_shift=10 * KiB)
    cluster = Cluster(cfg, trace_disk=True)
    run_workload(cluster, wl, warm_runs=1)
    merged: Dict[int, int] = {}
    for server in cluster.servers:
        for sz, count in server.disk_tracer.size_histogram(Op.READ).items():
            merged[sz] = merged.get(sz, 0) + count
    total = sum(merged.values()) or 1
    dist = {sz: c / total for sz, c in sorted(merged.items())}

    result = ExperimentResult(
        name="fig5",
        title="Fig 5 — disk dispatch sizes with iBridge (64KiB +10KiB reads)",
        headers=["metric", "value"],
    )
    top = sorted(dist.items(), key=lambda kv: -kv[1])[:5]
    big = sum(f for s, f in dist.items() if s >= 128)
    small = sum(f for s, f in dist.items() if s < 64)
    mean = sum(s * f for s, f in dist.items())
    result.add_row(["top sizes (sectors:frac%)",
                    " ".join(f"{s}:{f * 100:.0f}%" for s, f in top)])
    result.add_row(["fraction >= 128 sectors", round(big, 3)], frac_big=big)
    result.add_row(["fraction < 64 sectors", round(small, 3)], frac_small=small)
    result.add_row(["mean sectors", round(mean, 1)], mean_sectors=mean)
    result.notes.append(
        "paper: 128- and 256-sector requests predominate, in contrast to "
        "Fig 2(e)'s 80/176-sector mix on the stock system")
    return result
