"""Figure 11: BTIO I/O time as a function of SSD capacity.

The SSD partition available to iBridge shrinks from covering the whole
dataset down to zero; the paper observes an almost-linear relationship
between cached share and I/O time, with I/O time 12x longer at 0 GB
(total execution only 2.2x, computation being significant).
"""

from __future__ import annotations

from typing import Sequence

from ..workloads.btio import btio_io_time
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, measure,
                     scaled_ibridge)
from .fig9 import make_btio

#: Paper sweep: 8 GB down to 0 GB for a 6.8 GB dataset — expressed here
#: as fractions of the dataset so the sweep scales with the experiment.
CAPACITY_FRACTIONS = (1.2, 0.6, 0.3, 0.15, 0.0)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        steps: int = 10,
        fractions: Sequence[float] = CAPACITY_FRACTIONS) -> ExperimentResult:
    result = ExperimentResult(
        name="fig11",
        title="Fig 11 — BTIO I/O time vs SSD capacity",
        headers=["ssd/dataset", "io time (s)", "exec time (s)",
                 "io vs full-SSD x"],
    )
    probe = make_btio(nprocs, scale, steps)
    dataset = probe.io_bytes_written
    compute_time = probe.steps * probe.compute_per_step
    baseline_io = None
    for frac in fractions:
        capacity = int(dataset * frac)
        if capacity > 0:
            cfg = scaled_ibridge(base_config(), scale, ssd_partition=capacity)
        else:
            cfg = base_config()  # 0 GB: effectively the stock system
        res, _ = measure(cfg, make_btio(nprocs, scale, steps))
        io_time = btio_io_time(res, compute_time)
        if baseline_io is None:
            baseline_io = io_time
        ratio = io_time / baseline_io if baseline_io else 0.0
        result.add_row(
            [f"{frac:.2f}", round(io_time, 2), round(res.makespan, 2),
             round(ratio, 2)],
            io_time=io_time, exec_time=res.makespan, ratio=ratio)
    result.notes.append(
        "paper: ~linear I/O-time growth as capacity shrinks; 12x I/O time "
        "at 0 GB but only 2.2x total execution time")
    return result
