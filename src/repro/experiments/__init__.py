"""Per-table / per-figure reproduction experiments (see DESIGN.md §4)."""

from .common import DEFAULT_SCALE, ExperimentResult
from .registry import EXPERIMENTS, get

__all__ = ["ExperimentResult", "EXPERIMENTS", "get", "DEFAULT_SCALE"]
