"""Figure 13: effect of the request-size threshold.

mpi-io-test, 64 processes, 65 KB requests; the threshold for both
fragments and regular random requests sweeps 10/20/30/40 KB.  Reported:
throughput normalized to the aligned 64 KB run, and SSD usage
normalized to the total data accessed.  The paper picks 20 KB as the
default: 21% less throughput than 40 KB but 76% less SSD usage
(longevity trade-off).
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        thresholds_kib: Sequence[int] = (10, 20, 30, 40),
        op: Op = Op.WRITE) -> ExperimentResult:
    result = ExperimentResult(
        name="fig13",
        title="Fig 13 — threshold sweep (65KiB requests, normalized)",
        headers=["threshold", "throughput MiB/s", "normalized tp",
                 "ssd usage %"],
    )
    aligned_wl = MpiIoTest(nprocs=nprocs, request_size=64 * KiB,
                           file_size=file_bytes(scale, nprocs, 64 * KiB), op=op)
    aligned, _ = measure(base_config(), aligned_wl)
    base_tp = aligned.throughput_mib_s

    for thr in thresholds_kib:
        cfg = scaled_ibridge(base_config(), scale,
                             fragment_threshold=thr * KiB,
                             random_threshold=thr * KiB)
        wl = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                       file_size=file_bytes(scale, nprocs, 65 * KiB), op=op)
        res, _ = measure(cfg, wl)
        norm = res.throughput_mib_s / base_tp if base_tp else 0.0
        result.add_row(
            [f"{thr}KiB", round(res.throughput_mib_s, 1), round(norm, 3),
             round(res.ssd_fraction * 100, 1)],
            throughput=res.throughput_mib_s, normalized=norm,
            ssd_pct=res.ssd_fraction * 100)
    result.notes.append("paper: throughput rises with the threshold "
                        "(+56% from 10KB to 40KB) while SSD usage grows "
                        "3% -> 42%; 20KB chosen for SSD longevity")
    return result
