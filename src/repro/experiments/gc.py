"""Extension experiment: iBridge under SSD garbage collection.

Not a paper figure; the study the FTL/GC model
(:mod:`repro.devices.ftl`) enables.  The paper's premise — redirect
unaligned fragments into a log on the SSD because sequential SSD
writes are ~4.7x faster — quietly assumes the SSD serves at its
Table II speeds forever.  A real drive under sustained writes spends
time collecting garbage, and in an *array* of drives, per-device GC
that is unsynchronized across servers magnifies stripe stragglers:
some member of the stripe is almost always collecting (Zheng & Burns,
"Optimize Unsynchronized GC in an SSD Array"; Borge et al. on GC-window
read variability).

The same unaligned write workload runs four ways: FTL off (the plain
Table II model), and FTL on with each fleet GC policy — unsynchronized
(every drive collects on its own watermark), stop-the-fleet
synchronized (collection windows align across servers), and
stagger-coordinated (round-robin slots, at most one drive collecting).
Two warm passes push the small drive into steady-state GC pressure, so
the measured pass runs with collection active.  The table reports
throughput, stripe-request latency percentiles, the write-amplification
ledger, and total foreground GC stall time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..devices.base import Op
from ..units import KiB, MiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure)
from .runner import cell, sweep

#: Policy order is part of the table (and of the cache key).
POLICIES = ("ftl off", "unsync", "sync", "stagger")


def _config(policy: str, file_size: int):
    # The drive is sized so the warm passes wrap the FTL — a 120 GiB
    # drive would never collect under a CI-sized workload.  Roughly a
    # third of the file flows through the 8 SSD logs over 3 passes, so
    # capacity ~ file/10 per drive keeps collection pressure constant
    # across --scale; the log region is 2x the partition.
    partition = max(MiB, (file_size // 24 // MiB) * MiB)
    cfg = base_config(num_servers=8)
    # 48 KiB fragment threshold admits the 32 KiB tail piece every
    # 96 KiB request leaves on a 64 KiB stripe (the default 20 KiB
    # threshold would reject it and starve the log).
    cfg = cfg.with_ibridge(ssd_partition=partition,
                           fragment_threshold=48 * KiB)
    ssd = dataclasses.replace(cfg.ssd, capacity=2 * partition + 2 * MiB)
    if policy != "ftl off":
        ssd = dataclasses.replace(
            ssd,
            ftl_enabled=True,
            ftl_over_provision=0.25,
            gc_low_watermark=0.30,
            gc_high_watermark=0.55,
            gc_mode="pause",
            gc_policy=policy,
        )
    return cfg.replace(ssd=ssd)


def _workload_args(scale: float, nprocs: int) -> dict:
    # 96 KiB requests on a 64 KiB stripe: every request leaves a 32 KiB
    # fragment, so a third of the payload flows through the SSD log —
    # enough traffic to keep the small FTL under collection pressure.
    size = 96 * KiB
    return dict(nprocs=nprocs, request_size=size,
                file_size=file_bytes(scale, nprocs, size), op=Op.WRITE)


def _cell(scale: float, nprocs: int, policy: str) -> Dict[str, float]:
    """One policy's run; returns the row's raw figures."""
    args = _workload_args(scale, nprocs)
    cfg = _config(policy, args["file_size"])
    res, cluster = measure(cfg, MpiIoTest(**args), warm_runs=2,
                           need_cluster=True)
    lat = res.latency_stats()
    drives = [s.ssd for s in cluster.servers]
    ftls = [d.ftl for d in drives if d.ftl is not None]
    wa = (sum(f.write_amplification for f in ftls) / len(ftls)
          if ftls else 1.0)
    return {
        "throughput": res.throughput_mib_s,
        "p50": lat.p50,
        "p99": lat.p99,
        "wa": wa,
        "gc_stall": sum(d.gc_stall_time for d in drives),
        "erases": float(sum(f.erases for f in ftls)),
        "gc_runs": float(sum(f.gc_runs for f in ftls)),
    }


def run(scale: float = DEFAULT_SCALE, nprocs: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        name="gc",
        title="Extension — iBridge under SSD garbage collection "
              "(96KiB unaligned writes, fleet GC policies)",
        headers=["policy", "MiB/s", "p50 ms", "p99 ms", "WA",
                 "gc stall s", "erases"],
    )
    cells = [cell("repro.experiments.gc:_cell",
                  scale=scale, nprocs=nprocs, policy=policy)
             for policy in POLICIES]
    rows = sweep(cells)
    for policy, row in zip(POLICIES, rows):
        result.add_row(
            [policy, round(row["throughput"], 1),
             round(row["p50"] * 1e3, 2), round(row["p99"] * 1e3, 2),
             round(row["wa"], 2), round(row["gc_stall"], 3),
             int(row["erases"])],
            throughput=row["throughput"], p50=row["p50"], p99=row["p99"],
            wa=row["wa"], gc_stall=row["gc_stall"], erases=row["erases"],
            gc_runs=row["gc_runs"])
    result.notes.append(
        "unsynchronized per-drive GC scatters collection pauses across "
        "the fleet, so stripe tails inflate; coordinating the windows "
        "(sync aligns them, stagger serializes them) recovers most of "
        "the p99 gap at a small write-amplification cost")
    return result
