"""Figure 4: mpi-io-test throughput, stock vs iBridge, writes and reads.

64 processes; request sizes 33/65/129 KB (Pattern II) and 64 KB
requests at +1 KB / +10 KB offsets (Pattern III); '+0KB' is the aligned
reference where iBridge leaves everything on the disks.
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)

#: Paper: iBridge write-throughput gains over stock at 33/65/129 KB.
PAPER_WRITE_GAINS = {33: 105.0, 65: 183.0, 129: 171.0}
#: Paper: fully-aligned 64 KB throughput ~167 MB/s.
PAPER_ALIGNED = 167.0


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        op: Op | None = None) -> ExperimentResult:
    """Both sub-figures; restrict to one op by passing ``op``."""
    cases = [("33KiB", 33 * KiB, 0), ("65KiB", 65 * KiB, 0),
             ("129KiB", 129 * KiB, 0), ("+0KiB", 64 * KiB, 0),
             ("+1KiB", 64 * KiB, 1 * KiB), ("+10KiB", 64 * KiB, 10 * KiB)]
    ops: Sequence[Op] = (Op.WRITE, Op.READ) if op is None else (op,)
    result = ExperimentResult(
        name="fig4",
        title="Fig 4 — mpi-io-test throughput (MiB/s), 64 procs",
        headers=["case", "op", "stock", "iBridge", "gain%", "ssd%"],
    )
    stock_cfg = base_config()
    ib_cfg = scaled_ibridge(base_config(), scale)
    for the_op in ops:
        for label, size, shift in cases:
            wl_args = dict(nprocs=nprocs, request_size=size,
                           file_size=file_bytes(scale, nprocs, size),
                           op=the_op, offset_shift=shift)
            stock, _ = measure(stock_cfg, MpiIoTest(**wl_args))
            warm = 1 if the_op is Op.READ else 0
            ib, _ = measure(ib_cfg, MpiIoTest(**wl_args), warm_runs=warm)
            gain = ((ib.throughput_mib_s - stock.throughput_mib_s)
                    / stock.throughput_mib_s * 100 if stock.throughput_mib_s else 0)
            result.add_row(
                [f"{label}/{the_op.value}", the_op.value,
                 round(stock.throughput_mib_s, 1),
                 round(ib.throughput_mib_s, 1), round(gain, 1),
                 round(ib.ssd_fraction * 100, 1)],
                stock=stock.throughput_mib_s, ibridge=ib.throughput_mib_s,
                gain=gain, ssd_pct=ib.ssd_fraction * 100,
            )
    result.notes.append(
        "paper write gains: 33K +105%, 65K +183%, 129K +171%; SSD share of "
        "data: 19%/10%/4%; with +0KB offset iBridge equals stock")
    return result
