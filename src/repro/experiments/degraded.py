"""Extension experiment: a degraded disk and Eq. 3's sibling term.

Not a paper figure, but a direct test of the mechanism Eq. 3 exists
for: "fragments on a slow disk causing their completed sibling
sub-requests to wait will produce a larger average return value and
have greater SSD space allocated".

One data server gets an aging disk (doubled rotational latency and
seek times), expressed as a whole-run *fail-slow* fault window from
``repro.faults`` — the same mechanism ad-hoc failure studies use, so
the degradation composes with any other plan and shows up in the run's
fault telemetry.  Because a striped request completes only when its
slowest piece does, the degraded server gates *every* multi-server
request.  With the striping-magnification term enabled, that server's
higher broadcast T value boosts the return of its fragments, so its
SSD absorbs more of them; disabling the term removes that
prioritization.
"""

from __future__ import annotations

import dataclasses

from ..config import HDDConfig
from ..devices.base import Op
from ..faults import FaultPlan, fail_slow
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)

#: How much slower the degraded disk's mechanics are (CLI:
#: ``--degrade-factor``).
DEGRADE_FACTOR = 2.0


def degraded_hdd(base: HDDConfig, factor: float = DEGRADE_FACTOR) -> HDDConfig:
    """An aging disk as a *config*: slower positioning, same transfer.

    Kept for heterogeneous-hardware studies via ``Cluster``'s
    ``hdd_overrides``; the experiment itself now injects the slowdown
    as a fail-slow fault plan (see :func:`aging_disk_plan`), which
    models the same mechanics degradation on an unchanged config.
    """
    return dataclasses.replace(
        base,
        seek_base=base.seek_base * factor,
        seek_full=base.seek_full * factor,
        rotational_miss=base.rotational_miss * factor,
        write_settle=base.write_settle * factor,
    )


def aging_disk_plan(server: int, factor: float = DEGRADE_FACTOR) -> FaultPlan:
    """A whole-run fail-slow window on one server's disk mechanics."""
    return FaultPlan.single(fail_slow(server, factor),
                            name=f"aging-disk-s{server}-x{factor:g}")


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        degraded_server: int = 3,
        degrade_factor: float = DEGRADE_FACTOR) -> ExperimentResult:
    result = ExperimentResult(
        name="degraded",
        title=(f"Extension — degraded disk (fail-slow x{degrade_factor:g}) "
               f"on one server (65KiB writes, MiB/s)"),
        headers=["system", "throughput", "ssd%", "frag redirects@slow",
                 "frag redirects/other server"],
    )
    size = 65 * KiB
    wl_args = dict(nprocs=nprocs, request_size=size,
                   file_size=file_bytes(scale, nprocs, size), op=Op.WRITE)
    base = base_config()
    plan = aging_disk_plan(degraded_server, degrade_factor)

    # Eq. 3's contribution is evaluated under the *literal* Eq. 1 policy:
    # there the base return of a fragment hovers near zero, so the
    # striping-magnification boost is what pushes the gating fragments
    # on the slow disk over the admission threshold.  (Under the default
    # EFFICIENCY policy every fragment's return is already decisively
    # positive and Eq. 3 cannot change any decision.)
    from ..config import ReturnPolicy
    systems = [
        ("stock", base, None),
        ("iBridge efficiency-policy", scaled_ibridge(base, scale), None),
        ("iBridge literal, Eq.3 on",
         scaled_ibridge(base, scale, return_policy=ReturnPolicy.PAPER), True),
        ("iBridge literal, Eq.3 off",
         scaled_ibridge(base, scale, return_policy=ReturnPolicy.PAPER,
                        use_sibling_term=False), False),
    ]
    for label, cfg, _sib in systems:
        res, cluster = measure(cfg, MpiIoTest(**wl_args), fault_plan=plan,
                               need_cluster=True)
        if cfg.ibridge.enabled:
            slow = cluster.servers[degraded_server]
            others = [s for s in cluster.servers if s is not slow]
            slow_redir = sum(u.ibridge.stats.ssd_redirected_writes
                             for u in slow.disks)
            other_redir = (sum(u.ibridge.stats.ssd_redirected_writes
                               for s in others for u in s.disks)
                           / max(1, len(others)))
        else:
            slow_redir, other_redir = 0, 0.0
        result.add_row([label, round(res.throughput_mib_s, 1),
                        round(res.ssd_fraction * 100, 1),
                        slow_redir, round(other_redir, 1)],
                       throughput=res.throughput_mib_s,
                       ssd_pct=res.ssd_fraction * 100,
                       slow_redirects=float(slow_redir),
                       other_redirects=other_redir)
    result.notes.append(
        "Eq. 3 raises the return of fragments landing on the disk with "
        "the largest broadcast T; under the literal Eq. 1 policy this is "
        "what pushes the gating fragments over the admission threshold")
    return result
