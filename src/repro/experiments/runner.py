"""Parallel experiment-matrix runner with a deterministic on-disk cache.

Every experiment in this package is (or decomposes into) a matrix of
independent *cells*: one ``(experiment function, scale, seed,
config-override)`` combination that builds its own fresh
:class:`~repro.pfs.cluster.Cluster` and returns a small picklable
result.  Cells share nothing at runtime — the simulation is
deterministic per cell — so the matrix is embarrassingly parallel, the
standard shape for simulator sweeps (cf. Helix, ASPLOS 2025).

This module provides the sweep layer:

* :func:`cell` declares one cell as an import path plus keyword
  arguments (no callables cross process boundaries — workers import the
  function themselves).
* :func:`run_cells` executes a list of cells, optionally across a
  ``ProcessPoolExecutor``, and returns results **in input order**
  regardless of completion order, so serial (``jobs=1``) and parallel
  runs merge bit-identically.
* Results are cached on disk under ``.ibridge-cache/`` keyed by a
  stable hash of the cell (function path, canonicalized kwargs, the
  process-wide audit/fault-plan context, package version).  A cache hit
  performs zero simulation steps.

Determinism contract: a cell function must derive all randomness from
its arguments (every cluster seeds its RNG streams from
``ClusterConfig.seed``), must not read mutable module state other than
the audit/fault defaults (which are part of the cache key and are
re-installed in workers), and must return plain picklable data.  Under
that contract ``run_cells(cells, jobs=N)`` returns the same bytes for
every ``N`` — asserted by ``tests/test_runner.py``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .. import __version__

#: Bump when cached results become incompatible (cell wire format or
#: engine semantics change in a result-affecting way).
#: 3: the shard count joined the context token (partitioned-horizon
#: engine) — sharded and serial results must never share cache rows.
CACHE_SCHEMA = 3

#: Default cache location (relative to the working directory) when
#: ``REPRO_CACHE_DIR`` is unset.  Resolved lazily by
#: :func:`default_cache_dir` so a worker (or test) that sets the env
#: var after this module is imported still takes effect — the service
#: fleet relies on this to point every worker at one shared cache.
DEFAULT_CACHE_DIR = ".ibridge-cache"


def default_cache_dir() -> str:
    """The cache directory to use when none is configured explicitly.

    Read from ``REPRO_CACHE_DIR`` at *call* time (not import time).
    """
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


# --------------------------------------------------------------- hashing
def stable_token(obj: Any) -> Any:
    """Canonical JSON-able form of ``obj`` for hashing.

    Handles the types experiment kwargs are made of: scalars,
    sequences, dicts, enums, and (frozen) dataclasses such as
    ``ClusterConfig``/``AuditConfig``/``FaultPlan`` members.  Floats use
    ``float.hex()`` so the key distinguishes values that ``str`` would
    collapse and round-trips exactly.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": obj.hex()}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "value": stable_token(obj.value)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
                "fields": {f.name: stable_token(getattr(obj, f.name))
                           for f in dataclasses.fields(obj)}}
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (json.dumps(stable_token(k), sort_keys=True), stable_token(v))
            for k, v in obj.items())}
    if isinstance(obj, (list, tuple)):
        return [stable_token(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(stable_token(x), sort_keys=True)
                                  for x in obj)}
    raise TypeError(f"cannot build a stable cache token for {type(obj).__name__}: "
                    f"{obj!r} (pass plain data into cells)")


def stable_hash(obj: Any) -> str:
    """Hex digest of the canonical form of ``obj``."""
    blob = json.dumps(stable_token(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- cells
@dataclass(frozen=True)
class Cell:
    """One independent unit of the experiment matrix."""

    #: Import path ``"package.module:function"`` of a top-level callable.
    fn: str
    #: Canonically-sorted keyword arguments.
    kwargs: Tuple[Tuple[str, Any], ...]

    def resolve(self) -> Callable[..., Any]:
        mod_name, _, fn_name = self.fn.partition(":")
        if not fn_name:
            raise ValueError(f"cell fn must look like 'pkg.mod:func', got {self.fn!r}")
        return getattr(importlib.import_module(mod_name), fn_name)

    def key(self, context: Any = None) -> str:
        """Stable cache key: cell identity + run context + versions."""
        return stable_hash({
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "fn": self.fn,
            "kwargs": dict(self.kwargs),
            "context": context,
        })


def cell(fn: str, **kwargs: Any) -> Cell:
    """Declare a cell (kwargs are canonically sorted for hashing)."""
    return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())))


# --------------------------------------------------------------- context
def _current_context() -> Tuple[Any, Any, Any, Any]:
    """The process-wide defaults a cell's result depends on.

    The audit config changes event schedules (the watchdog process
    consumes heap sequence numbers), the obs config likewise (the
    metrics sampler is a sim process), the fault plan changes behaviour
    outright, and the shard count swaps the engine — all must be part
    of the cache key and must be re-installed inside worker processes.
    """
    from . import common
    return (common._DEFAULT_AUDIT, common._DEFAULT_FAULT_PLAN,
            common._DEFAULT_OBS, common._DEFAULT_SHARDS)


def _context_token(context: Tuple[Any, Any, Any, Any]) -> Any:
    audit, plan, obs, shards = context
    return {
        "audit": stable_token(audit),
        "fault_plan": None if plan is None else plan.to_dict(),
        "obs": stable_token(obs),
        "shards": int(shards),
    }


def _worker_init(context: Tuple[Any, Any, Any, Any]) -> None:
    """Install the parent's audit/fault/obs/shard defaults in a worker."""
    from .common import (set_default_audit, set_default_fault_plan,
                         set_default_obs, set_default_shards)
    audit, plan, obs, shards = context
    set_default_audit(audit)
    set_default_fault_plan(plan)
    set_default_obs(obs)
    set_default_shards(shards)


def _execute(spec: Tuple[str, Tuple[Tuple[str, Any], ...]]) -> Any:
    """Worker entry point: import and run one cell."""
    fn, kwargs = spec
    return Cell(fn=fn, kwargs=kwargs).resolve()(**dict(kwargs))


# ------------------------------------------------------ public key API
def default_context_token() -> Any:
    """Cache-key token for this process's audit/fault/obs defaults.

    This is exactly what :func:`run_cells` folds into every cell key;
    exposing it lets other layers (the experiment service) compute keys
    that agree with the CLI's cache.  A process with no defaults
    installed (no ``--audit``/``--fault-plan``/``--trace-out``) yields
    the *null* context token — service submissions use that, so a
    service-warmed cache hits for plain CLI runs and vice versa.
    """
    return _context_token(_current_context())


def null_context_token() -> Any:
    """Context token for a process with *no* defaults installed.

    Service submissions hash against this fixed token regardless of
    the submitting process's state, so the service cache stays
    interoperable with plain (flag-less) CLI runs.
    """
    return _context_token((None, None, None, 1))


def cell_key(c: Cell, context_token: Any = None) -> str:
    """Public stable cache key for a cell.

    ``context_token=None`` uses :func:`default_context_token` (the
    current process defaults); pass a stored token to reproduce a key
    from another process.
    """
    if context_token is None:
        context_token = default_context_token()
    return c.key(context_token)


# --------------------------------------------------------------- cache
# ------------------------------------------------- result serialization
def encode_result(value: Any) -> bytes:
    """Serialize one cell result to bytes (the cache/store wire format).

    Pickle at the highest protocol — cell results are plain picklable
    data by the determinism contract, and pickle (unlike JSON) keeps
    int dict keys, tuples, and float precision exact.  Deterministic
    for the same value, so equal results encode to equal bytes and the
    service can assert bit-identity across transports.
    """
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(blob: bytes) -> Any:
    """Inverse of :func:`encode_result`."""
    return pickle.loads(blob)


class ResultCache:
    """Pickle-per-key on-disk cache with atomic writes.

    ``directory=None`` resolves :func:`default_cache_dir` at call time,
    so ``REPRO_CACHE_DIR`` set after import still takes effect.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory if directory is not None \
            else default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        try:
            with open(self._path(key), "rb") as fh:
                value = decode_result(fh.read())
        except Exception:
            # Unpickling a truncated/corrupt file can raise nearly
            # anything (ValueError, EOFError, AttributeError...); any
            # unreadable entry is simply a miss and will be rewritten.
            return False, None
        try:
            # Touch on hit so `ibridge-experiment cache prune` can evict
            # least-recently-used entries by mtime.
            os.utime(self._path(key))
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Atomic publish: a concurrent reader sees the old file or the
        # new one, never a torn write.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(encode_result(value))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# --------------------------------------------------------------- report
@dataclass
class MatrixReport:
    """Results (in input order) plus execution accounting."""

    results: List[Any]
    executed: int = 0
    cached: int = 0
    jobs: int = 1


# --------------------------------------------------------------- runner
def run_cells(cells: Sequence[Cell], jobs: int = 1,
              cache: Optional[bool] = True,
              cache_dir: Optional[str] = None) -> MatrixReport:
    """Execute ``cells``; return results in input order.

    ``jobs`` > 1 fans misses out over a ``ProcessPoolExecutor``;
    ``jobs=1`` executes in-process (no pickling, exact same results).
    ``cache=False`` (or ``--no-cache`` on the CLI) bypasses the on-disk
    cache entirely — nothing is read or written.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    context = _current_context()
    ctx_token = _context_token(context)
    store = ResultCache(cache_dir) if cache else None

    results: List[Any] = [None] * len(cells)
    misses: List[int] = []
    keys: List[Optional[str]] = [None] * len(cells)
    for i, c in enumerate(cells):
        if store is not None:
            keys[i] = c.key(ctx_token)
            hit, value = store.get(keys[i])
            if hit:
                results[i] = value
                continue
        misses.append(i)

    report = MatrixReport(results=results, executed=len(misses),
                          cached=len(cells) - len(misses), jobs=jobs)
    if not misses:
        return report

    if jobs == 1 or len(misses) == 1:
        for i in misses:
            results[i] = _execute((cells[i].fn, cells[i].kwargs))
    else:
        from concurrent.futures import ProcessPoolExecutor
        specs = [(cells[i].fn, cells[i].kwargs) for i in misses]
        with ProcessPoolExecutor(max_workers=min(jobs, len(misses)),
                                 initializer=_worker_init,
                                 initargs=(context,)) as pool:
            # Executor.map preserves input order, so the merge below is
            # deterministic no matter which worker finishes first.
            for i, value in zip(misses, pool.map(_execute, specs)):
                results[i] = value

    if store is not None:
        for i in misses:
            store.put(keys[i], results[i])
    return report


# ------------------------------------------------------- sweep defaults
#: Process-wide sweep settings installed by the CLI (``--jobs``,
#: ``--no-cache``, ``--cache-dir``) so every experiment's internal
#: matrix picks them up without threading parameters through ``run()``.
_DEFAULT_JOBS = 1
_DEFAULT_CACHE: bool = False
_DEFAULT_CACHE_DIR: Optional[str] = None


def set_sweep_defaults(jobs: int = 1, cache: bool = False,
                       cache_dir: Optional[str] = None) -> None:
    """Install the sweep execution defaults (CLI/tests)."""
    global _DEFAULT_JOBS, _DEFAULT_CACHE, _DEFAULT_CACHE_DIR
    _DEFAULT_JOBS = max(1, int(jobs))
    _DEFAULT_CACHE = bool(cache)
    _DEFAULT_CACHE_DIR = cache_dir


def sweep(cells: Sequence[Cell], jobs: Optional[int] = None,
          cache: Optional[bool] = None,
          cache_dir: Optional[str] = None) -> List[Any]:
    """Run a matrix under the installed defaults (experiment helper).

    Experiments call this for their internal loops; with no CLI flags it
    degrades to in-process, uncached, loop-order execution — exactly the
    behaviour of the historical serial code.
    """
    return run_cells(cells,
                     jobs=_DEFAULT_JOBS if jobs is None else jobs,
                     cache=_DEFAULT_CACHE if cache is None else cache,
                     cache_dir=_DEFAULT_CACHE_DIR if cache_dir is None else cache_dir
                     ).results
