"""Table I: percentages of unaligned and random accesses per application.

Synthesizes the ALEGRA/CTH/S3D traces (the Sandia originals are not
redistributable) and classifies them with the paper's rules: a 64 KB
striping unit, requests > 1 unit and off-boundary are *unaligned*,
requests < 20 KB are *random*.
"""

from __future__ import annotations

from ..workloads.traces import APP_PROFILES, classify_trace, synthesize_trace
from .common import DEFAULT_SCALE, ExperimentResult

#: Paper Table I reference values: app -> (unaligned %, random %).
PAPER_TABLE1 = {
    "ALEGRA-2744": (35.2, 7.3),
    "ALEGRA-5832": (35.7, 6.9),
    "CTH": (24.3, 30.1),
    "S3D": (62.8, 5.8),
}


def run(scale: float = DEFAULT_SCALE, requests: int = 4000,
        seed: int = 20130520) -> ExperimentResult:
    """Generate and classify each application trace."""
    result = ExperimentResult(
        name="table1",
        title="Table I — unaligned/random request percentages (64KB unit)",
        headers=["app", "unaligned%", "random%", "total%",
                 "paper unaligned%", "paper random%", "paper total%"],
    )
    for app in APP_PROFILES:
        trace = synthesize_trace(app, requests=requests, seed=seed)
        cls = classify_trace(trace)
        pu, pr = PAPER_TABLE1[app]
        result.add_row(
            [app, round(cls.unaligned_pct, 1), round(cls.random_pct, 1),
             round(cls.total_pct, 1), pu, pr, round(pu + pr, 1)],
            unaligned=cls.unaligned_pct, random=cls.random_pct,
            total=cls.total_pct,
        )
    result.notes.append(
        "traces are synthesized to the paper's class mix and verified by "
        "an independent classifier (Sandia traces are not redistributable)")
    return result
