"""Figure 7: iBridge scalability with data-server count.

64 processes; per server count the aligned 64 KB stock run is the
reference, 65 KB stock shows the unaligned gap, and 65 KB iBridge
should nearly close it — with the gap (and therefore iBridge's gain)
growing as servers are added (striping magnification).
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        servers: Sequence[int] = (2, 4, 6, 8),
        op: Op | None = None) -> ExperimentResult:
    ops = (Op.WRITE, Op.READ) if op is None else (op,)
    result = ExperimentResult(
        name="fig7",
        title="Fig 7 — throughput vs data-server count (MiB/s)",
        headers=["servers/op", "aligned 64K stock", "65K stock", "65K iBridge",
                 "gap closed%"],
    )
    for the_op in ops:
        for ns in servers:
            stock_cfg = base_config(num_servers=ns)
            ib_cfg = scaled_ibridge(base_config(num_servers=ns), scale)
            aligned_wl = dict(nprocs=nprocs, request_size=64 * KiB,
                              file_size=file_bytes(scale, nprocs, 64 * KiB),
                              op=the_op)
            unaligned_wl = dict(nprocs=nprocs, request_size=65 * KiB,
                                file_size=file_bytes(scale, nprocs, 65 * KiB),
                                op=the_op)
            aligned, _ = measure(stock_cfg, MpiIoTest(**aligned_wl))
            stock, _ = measure(stock_cfg, MpiIoTest(**unaligned_wl))
            ib, _ = measure(ib_cfg, MpiIoTest(**unaligned_wl),
                            warm_runs=1 if the_op is Op.READ else 0)
            gap = aligned.throughput_mib_s - stock.throughput_mib_s
            closed = ((ib.throughput_mib_s - stock.throughput_mib_s) / gap * 100
                      if gap > 0 else 0.0)
            result.add_row(
                [f"{ns}/{the_op.value}", round(aligned.throughput_mib_s, 1),
                 round(stock.throughput_mib_s, 1),
                 round(ib.throughput_mib_s, 1), round(closed, 1)],
                aligned=aligned.throughput_mib_s, stock=stock.throughput_mib_s,
                ibridge=ib.throughput_mib_s, closed=closed)
    result.notes.append(
        "paper: all curves rise with server count; iBridge nearly closes "
        "the unaligned gap, and its advantage grows with more servers, "
        "especially for writes")
    return result
