"""Extension experiment: collective I/O vs iBridge for unaligned access.

Not a paper figure.  The paper's related work identifies MPI-IO
middleware optimizations (two-phase collective I/O, data sieving) as
the classic software remedies for unaligned access, and argues they are
not always applicable (they add synchronization and exchange costs, and
developers often use independent I/O).  This experiment quantifies the
comparison inside one model: the 65 KiB Pattern II workload served by

* the stock system with independent I/O (the problem),
* the stock system with two-phase collective I/O (the middleware fix),
* iBridge with independent I/O (the storage-side fix),
* both combined.
"""

from __future__ import annotations

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        op: Op = Op.WRITE) -> ExperimentResult:
    result = ExperimentResult(
        name="collective",
        title="Extension — collective I/O vs iBridge (65KiB, MiB/s)",
        headers=["system", "throughput", "ssd%"],
    )
    size = 65 * KiB
    stock_cfg = base_config()
    ib_cfg = scaled_ibridge(base_config(), scale)
    cases = [
        ("stock, independent", stock_cfg, False),
        ("stock, collective", stock_cfg, True),
        ("iBridge, independent", ib_cfg, False),
        ("iBridge, collective", ib_cfg, True),
    ]
    for label, cfg, collective in cases:
        wl = MpiIoTest(nprocs=nprocs, request_size=size,
                       file_size=file_bytes(scale, nprocs, size), op=op,
                       collective=collective)
        res, _ = measure(cfg, wl)
        result.add_row([label, round(res.throughput_mib_s, 1),
                        round(res.ssd_fraction * 100, 1)],
                       throughput=res.throughput_mib_s,
                       ssd_pct=res.ssd_fraction * 100)
    result.notes.append(
        "collective buffering removes fragments before they reach the "
        "servers; iBridge absorbs them at the servers — the two largely "
        "overlap, which is why the paper targets workloads where "
        "collective I/O is not in use")
    return result
