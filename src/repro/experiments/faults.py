"""Extension experiment: iBridge availability under injected failures.

Not a paper figure; a systems-behaviour study the ``repro.faults``
subsystem enables.  The same unaligned write workload runs under a
series of failure scenarios — SSD fail-stop (hard forfeit and graceful
drain), a data-server crash, a lossy network window, an aging disk —
and the table reports what each costs and what the recovery machinery
(SSD-bypass degraded mode, client timeout/retry, writeback-before-
removal) absorbed.

The fault windows are placed relative to the fault-free makespan, so
the scenarios stay meaningful across ``--scale`` values; RPC retry
timeouts are likewise scaled, since the simulated runs are far shorter
than the hour-scale jobs a real deployment times out against.

Execution shape: one calibration cell (the fault-free run, which fixes
window placement and retry deadlines), then one independent cell per
scenario — all routed through :mod:`repro.experiments.runner`, so
``--jobs N`` fans the scenarios out and ``--jobs 1`` reproduces them
bit-identically in order.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..devices.base import Op
from ..faults import (FaultEvent, FaultKind, FaultPlan, fail_slow,
                      server_outage, ssd_outage)
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)
from .runner import cell, sweep

#: Scenario order is part of the table (and of the cache key).
SCENARIOS = ("no faults", "ssd fail-stop, forfeit", "ssd removal, drain",
             "server crash + restart", "10% message loss", "aging disk x3")


def _scenario_plan(label: str, span: float) -> Optional[FaultPlan]:
    """Build the fault plan for one scenario from the calibrated span."""
    if label == "no faults":
        return None
    if label == "ssd fail-stop, forfeit":
        return FaultPlan.single(ssd_outage(0, start=span * 0.25,
                                           duration=span * 0.5),
                                name="x-ssd-forfeit")
    if label == "ssd removal, drain":
        return FaultPlan.single(ssd_outage(0, start=span * 0.25,
                                           duration=span * 0.5,
                                           policy="drain"),
                                name="x-ssd-drain")
    if label == "server crash + restart":
        return FaultPlan.single(server_outage(1, start=span * 0.25,
                                              duration=span * 0.1),
                                name="x-crash")
    if label == "10% message loss":
        return FaultPlan.single(FaultEvent(kind=FaultKind.NET_DROP, start=0.0,
                                           duration=span * 0.5, drop_prob=0.1),
                                name="x-drop")
    if label == "aging disk x3":
        return FaultPlan.single(fail_slow(2, 3.0), name="x-aging")
    raise KeyError(f"unknown fault scenario {label!r}")


def _workload_args(scale: float, nprocs: int) -> dict:
    size = 65 * KiB
    return dict(nprocs=nprocs, request_size=size,
                file_size=file_bytes(scale, nprocs, size), op=Op.WRITE)


def _cell_calibrate(scale: float, nprocs: int) -> Dict[str, float]:
    """Fault-free run fixing window placement and the retry deadline."""
    cfg = scaled_ibridge(base_config(), scale)
    baseline, _ = measure(cfg, MpiIoTest(**_workload_args(scale, nprocs)))
    span = max(baseline.makespan, 1e-3)
    # The deadline must be generous: it has to clear the tail latency
    # of the *degraded* scenarios too (an aging disk triples service
    # times; spurious timeouts duplicate load and snowball), while the
    # attempt budget still outlasts the longest lossy window even for a
    # request issued at its start.
    timeout = max(span * 0.1, 10 * baseline.latency_stats().p99)
    return {"span": span, "timeout": timeout}


def _cell_scenario(scale: float, nprocs: int, scenario: str, span: float,
                   timeout: float) -> Dict[str, float]:
    """Run one failure scenario; returns the row's raw figures."""
    cfg = scaled_ibridge(base_config(), scale)
    cfg = cfg.with_retry(timeout=timeout, max_retries=10,
                         backoff_base=timeout * 0.1, backoff_cap=timeout)
    plan = _scenario_plan(scenario, span)
    res, _cluster = measure(cfg, MpiIoTest(**_workload_args(scale, nprocs)),
                            fault_plan=plan)
    rec = res.recovery
    return {"throughput": res.throughput_mib_s,
            "retries": float(rec.get("retries", 0.0)),
            "forfeited_bytes": float(rec.get("forfeited_bytes", 0.0)),
            "dropped": float(rec.get("net_dropped", 0.0)),
            "ssd_fraction": res.ssd_fraction}


def run(scale: float = DEFAULT_SCALE, nprocs: int = 32) -> ExperimentResult:
    result = ExperimentResult(
        name="faults",
        title="Extension — recovery under injected faults "
              "(65KiB writes, iBridge on, MiB/s)",
        headers=["scenario", "throughput", "slowdown", "retries",
                 "forfeited KiB", "dropped msgs", "ssd%"],
    )
    # Calibrate window placement and RPC timeouts on a fault-free run.
    [calib] = sweep([cell("repro.experiments.faults:_cell_calibrate",
                          scale=scale, nprocs=nprocs)])
    span, timeout = calib["span"], calib["timeout"]

    cells = [cell("repro.experiments.faults:_cell_scenario",
                  scale=scale, nprocs=nprocs, scenario=label, span=span,
                  timeout=timeout)
             for label in SCENARIOS]
    rows = sweep(cells)

    base_tp = None
    for label, row in zip(SCENARIOS, rows):
        tp = row["throughput"]
        if base_tp is None:
            base_tp = tp
        slowdown = base_tp / tp if tp > 0 else float("inf")
        result.add_row(
            [label, round(tp, 1), f"{slowdown:.2f}x",
             int(row["retries"]),
             round(row["forfeited_bytes"] / KiB, 1),
             int(row["dropped"]),
             round(row["ssd_fraction"] * 100, 1)],
            throughput=tp, slowdown=slowdown,
            retries=row["retries"],
            forfeited_bytes=row["forfeited_bytes"],
            dropped=row["dropped"],
            ssd_pct=row["ssd_fraction"] * 100)
    result.notes.append(
        "every scenario completes and drains cleanly: SSD loss degrades "
        "to disk-only service (forfeit loses the dirty log, drain writes "
        "it back first), crashes and message loss are ridden out by "
        "client timeout/retry")
    return result
