"""Extension experiment: iBridge availability under injected failures.

Not a paper figure; a systems-behaviour study the ``repro.faults``
subsystem enables.  The same unaligned write workload runs under a
series of failure scenarios — SSD fail-stop (hard forfeit and graceful
drain), a data-server crash, a lossy network window, an aging disk —
and the table reports what each costs and what the recovery machinery
(SSD-bypass degraded mode, client timeout/retry, writeback-before-
removal) absorbed.

The fault windows are placed relative to the fault-free makespan, so
the scenarios stay meaningful across ``--scale`` values; RPC retry
timeouts are likewise scaled, since the simulated runs are far shorter
than the hour-scale jobs a real deployment times out against.
"""

from __future__ import annotations

from ..devices.base import Op
from ..faults import (FaultEvent, FaultKind, FaultPlan, fail_slow,
                      server_outage, ssd_outage)
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 32) -> ExperimentResult:
    result = ExperimentResult(
        name="faults",
        title="Extension — recovery under injected faults "
              "(65KiB writes, iBridge on, MiB/s)",
        headers=["scenario", "throughput", "slowdown", "retries",
                 "forfeited KiB", "dropped msgs", "ssd%"],
    )
    size = 65 * KiB
    wl_args = dict(nprocs=nprocs, request_size=size,
                   file_size=file_bytes(scale, nprocs, size), op=Op.WRITE)
    cfg = scaled_ibridge(base_config(), scale)

    # Calibrate window placement and RPC timeouts on a fault-free run.
    baseline, _ = measure(cfg, MpiIoTest(**wl_args))
    span = max(baseline.makespan, 1e-3)
    # The deadline must be generous: it has to clear the tail latency
    # of the *degraded* scenarios too (an aging disk triples service
    # times; spurious timeouts duplicate load and snowball), while the
    # attempt budget still outlasts the longest lossy window even for a
    # request issued at its start.
    timeout = max(span * 0.1, 10 * baseline.latency_stats().p99)
    cfg = cfg.with_retry(timeout=timeout, max_retries=10,
                         backoff_base=timeout * 0.1, backoff_cap=timeout)

    scenarios = [
        ("no faults", None),
        ("ssd fail-stop, forfeit",
         FaultPlan.single(ssd_outage(0, start=span * 0.25,
                                     duration=span * 0.5),
                          name="x-ssd-forfeit")),
        ("ssd removal, drain",
         FaultPlan.single(ssd_outage(0, start=span * 0.25,
                                     duration=span * 0.5, policy="drain"),
                          name="x-ssd-drain")),
        ("server crash + restart",
         FaultPlan.single(server_outage(1, start=span * 0.25,
                                        duration=span * 0.1),
                          name="x-crash")),
        ("10% message loss",
         FaultPlan.single(FaultEvent(kind=FaultKind.NET_DROP, start=0.0,
                                     duration=span * 0.5, drop_prob=0.1),
                          name="x-drop")),
        ("aging disk x3",
         FaultPlan.single(fail_slow(2, 3.0), name="x-aging")),
    ]

    base_tp = None
    for label, plan in scenarios:
        res, cluster = measure(cfg, MpiIoTest(**wl_args), fault_plan=plan)
        tp = res.throughput_mib_s
        if base_tp is None:
            base_tp = tp
        slowdown = base_tp / tp if tp > 0 else float("inf")
        rec = res.recovery
        result.add_row(
            [label, round(tp, 1), f"{slowdown:.2f}x",
             int(rec.get("retries", 0)),
             round(rec.get("forfeited_bytes", 0) / KiB, 1),
             int(rec.get("net_dropped", 0)),
             round(res.ssd_fraction * 100, 1)],
            throughput=tp, slowdown=slowdown,
            retries=rec.get("retries", 0.0),
            forfeited_bytes=rec.get("forfeited_bytes", 0.0),
            dropped=rec.get("net_dropped", 0.0),
            ssd_pct=res.ssd_fraction * 100)
    result.notes.append(
        "every scenario completes and drains cleanly: SSD loss degrades "
        "to disk-only service (forfeit loses the dirty log, drain writes "
        "it back first), crashes and message loss are ridden out by "
        "client timeout/retry")
    return result
