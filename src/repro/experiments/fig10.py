"""Figure 10: BTIO on disk-only, SSD-only, and iBridge configurations.

The SSD-only system stores the files directly on the SSDs — and still
loses to iBridge, because BTIO's small scattered writes land at random
SSD locations (30 MB/s random-write) while iBridge writes them into its
sequential log (140 MB/s).  This isolates the value of the
log-structured SSD store beyond raw device speed.
"""

from __future__ import annotations

from typing import Sequence

from .common import (DEFAULT_SCALE, ExperimentResult, base_config, measure,
                     scaled_ibridge)
from .fig9 import make_btio


def run(scale: float = DEFAULT_SCALE,
        procs: Sequence[int] = (9, 16, 64, 100),
        steps: int = 10) -> ExperimentResult:
    result = ExperimentResult(
        name="fig10",
        title="Fig 10 — BTIO execution time (s): disk-only / SSD-only / iBridge",
        headers=["nprocs", "disk-only", "ssd-only", "iBridge",
                 "iBridge vs ssd-only %", "ssd-only setup ms/req",
                 "iBridge setup ms/req"],
    )
    disk_cfg = base_config()
    ssd_cfg = base_config().replace(primary_store="ssd")
    ib_cfg = scaled_ibridge(base_config(), scale)

    def ssd_setup_per_request(cluster) -> float:
        """Mean SSD positioning cost per SSD write — the log-structuring
        signal: random in-place writes pay the per-command setup, the
        iBridge log does not."""
        pos = sum(s.ssd.stats.positioning_time for s in cluster.servers)
        n = sum(s.ssd.stats.writes for s in cluster.servers)
        return pos / n * 1000 if n else 0.0

    for np_ in procs:
        disk, _ = measure(disk_cfg, make_btio(np_, scale, steps))
        ssd, ssd_cluster = measure(ssd_cfg, make_btio(np_, scale, steps),
                                   need_cluster=True)
        ib, ib_cluster = measure(ib_cfg, make_btio(np_, scale, steps),
                                 need_cluster=True)
        vs_ssd = ((ssd.makespan - ib.makespan) / ssd.makespan * 100
                  if ssd.makespan else 0)
        ssd_setup = ssd_setup_per_request(ssd_cluster)
        ib_setup = ssd_setup_per_request(ib_cluster)
        result.add_row(
            [np_, round(disk.makespan, 2), round(ssd.makespan, 2),
             round(ib.makespan, 2), round(vs_ssd, 1),
             round(ssd_setup, 4), round(ib_setup, 4)],
            disk=disk.makespan, ssd=ssd.makespan, ibridge=ib.makespan,
            vs_ssd=vs_ssd, ssd_setup=ssd_setup, ib_setup=ib_setup)
    result.notes.append(
        "paper: iBridge beats even the all-SSD system because its "
        "log-structured writes avoid the SSD's random-write penalty")
    return result
