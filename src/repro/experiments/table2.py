"""Table II: 4 KB corner bandwidths of the SSD and HDD device models.

The SSD corners are calibrated and reproduce the paper's numbers; the
HDD sequential corners reproduce exactly while the HDD random corners
are documented deviations (the paper's spec-sheet numbers imply
deep-queue behaviour a per-request positioning model deliberately does
not show — see DESIGN.md §6).
"""

from __future__ import annotations

from ..devices import HardDisk, SolidStateDrive, table2_corners
from .common import DEFAULT_SCALE, ExperimentResult

#: Paper Table II, in MB/s: device -> corner -> value.
PAPER_TABLE2 = {
    "ssd": {"sequential_read": 160, "random_read": 60,
            "sequential_write": 140, "random_write": 30},
    "hdd": {"sequential_read": 85, "random_read": 15,
            "sequential_write": 80, "random_write": 5},
}


def run(scale: float = DEFAULT_SCALE, requests: int = 2000) -> ExperimentResult:
    result = ExperimentResult(
        name="table2",
        title="Table II — device corner bandwidths, 4KB requests (MiB/s)",
        headers=["device/corner", "measured", "paper"],
    )
    for name, device in (("ssd", SolidStateDrive()), ("hdd", HardDisk())):
        corners = table2_corners(device, requests=requests)
        for corner, measured in corners.items():
            key = f"{name}/{corner}"
            result.add_row([key, round(measured, 1), PAPER_TABLE2[name][corner]],
                           mib_s=measured)
    result.notes.append(
        "HDD random corners deviate by design: the model charges full "
        "per-request positioning (QD1), the paper quotes deep-queue "
        "spec-sheet numbers")
    return result
