"""Shared infrastructure for the per-table / per-figure experiments.

Every experiment exposes ``run(scale=DEFAULT_SCALE, **overrides) ->
ExperimentResult``.  ``scale`` is the fraction of the paper's 10 GB
working set simulated (the shapes are scale-stable; EXPERIMENTS.md
records results at the documented scale).  Results carry the paper's
reference values next to the measured ones so the comparison is
self-contained.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..config import AuditConfig, ClusterConfig, ObsConfig
from ..devices.base import Op
from ..pfs.cluster import Cluster
from ..units import GiB, KiB, MiB
from ..workloads.base import Workload, run_workload

#: Default fraction of the paper's 10 GB dataset (128 MiB) — big enough
#: for stable shapes, small enough for seconds-scale runs.
DEFAULT_SCALE = 1.0 / 80.0

#: The paper's working-set size.
PAPER_FILE_BYTES = 10 * GiB


@dataclass
class ExperimentResult:
    """One experiment's output: a printable table plus raw rows."""

    name: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Raw keyed values for tests/benches ({(row_key, col_key): value}).
    values: Dict[tuple, float] = field(default_factory=dict)

    def add_row(self, row: Sequence[object], **keyed: float) -> None:
        self.rows.append(list(row))
        for key, value in keyed.items():
            self.values[(row[0], key)] = value

    def get(self, row_key: object, col_key: str) -> float:
        return self.values[(row_key, col_key)]

    def __str__(self) -> str:
        out = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def file_bytes(scale: float, nprocs: int = 1, request_size: int = 64 * KiB,
               min_iterations: int = 4) -> int:
    """Scaled file size, floored so every rank gets min_iterations."""
    base = int(PAPER_FILE_BYTES * scale)
    floor = nprocs * request_size * min_iterations
    return max(base, floor)


#: Process-wide audit default applied by :func:`base_config` — set by
#: the CLI's ``--audit`` flag (or tests) so every experiment in a run
#: is audited without threading a parameter through each ``run()``.
_DEFAULT_AUDIT: Optional[AuditConfig] = None


def set_default_audit(audit: Optional[AuditConfig]) -> None:
    """Install (or clear, with ``None``) the audit config experiments use."""
    global _DEFAULT_AUDIT
    _DEFAULT_AUDIT = audit


#: Process-wide fault-plan default applied by :func:`measure` — set by
#: the CLI's ``--fault-plan`` flag so any experiment can be re-run under
#: an injected failure scenario without code changes.
_DEFAULT_FAULT_PLAN = None


def set_default_fault_plan(plan) -> None:
    """Install (or clear, with ``None``) the fault plan experiments use."""
    global _DEFAULT_FAULT_PLAN
    _DEFAULT_FAULT_PLAN = plan


#: Process-wide observability default applied by :func:`base_config` —
#: set by the CLI's ``--trace-out``/``--metrics-out`` flags so every
#: cluster in a run is traced without per-experiment plumbing.  Like the
#: audit config, it perturbs event schedules (the metrics sampler is a
#: sim process), so it is part of the runner's cache key.
_DEFAULT_OBS: Optional[ObsConfig] = None


def set_default_obs(obs: Optional[ObsConfig]) -> None:
    """Install (or clear, with ``None``) the obs config experiments use."""
    global _DEFAULT_OBS
    _DEFAULT_OBS = obs


#: Process-wide shard-count default applied by :func:`base_config` — set
#: by the CLI's ``--shards`` flag so every experiment cluster is
#: partitioned without per-experiment plumbing.  Like audit/obs it is
#: part of the runner's cache-key context (``shards=1`` is bit-identical
#: to serial, but >1 changes the engine and must never share cache rows
#: with serial results).
_DEFAULT_SHARDS: int = 1


def set_default_shards(shards: int) -> None:
    """Install the shard count experiments use (1 restores serial)."""
    global _DEFAULT_SHARDS
    _DEFAULT_SHARDS = max(1, int(shards))


def default_shards() -> int:
    return _DEFAULT_SHARDS


#: Warn-once latch for :func:`warn_if_oversubscribed`.
_oversubscribed_warned = False


def warn_if_oversubscribed(jobs: int = 1, shards: int = 1) -> bool:
    """Warn (once per process) when the requested parallelism exceeds
    the machine: ``jobs * shards`` worker processes beyond
    ``os.cpu_count()`` only add context-switch overhead.  Returns True
    if the warning fired."""
    global _oversubscribed_warned
    import os
    import warnings
    cpus = os.cpu_count() or 1
    want = max(1, jobs) * max(1, shards)
    if want <= cpus or _oversubscribed_warned:
        return False
    _oversubscribed_warned = True
    warnings.warn(
        f"requested {want} workers (jobs={jobs} x shards={shards}) on a "
        f"{cpus}-CPU host; runs will timeshare rather than speed up",
        RuntimeWarning, stacklevel=2)
    return True


def base_config(num_servers: int = 8, ibridge: bool = False,
                **overrides) -> ClusterConfig:
    """The paper's testbed configuration (Section III-A)."""
    if _DEFAULT_AUDIT is not None and "audit" not in overrides:
        overrides["audit"] = _DEFAULT_AUDIT
    if _DEFAULT_OBS is not None and "obs" not in overrides:
        overrides["obs"] = _DEFAULT_OBS
    if _DEFAULT_SHARDS != 1 and "shards" not in overrides:
        overrides["shards"] = _DEFAULT_SHARDS
    cfg = ClusterConfig(num_servers=num_servers, **overrides)
    if ibridge:
        cfg = cfg.with_ibridge()
    cfg.validate()
    return cfg


def scaled_ibridge(cfg: ClusterConfig, scale: float,
                   **overrides) -> ClusterConfig:
    """Enable iBridge with the SSD partition scaled like the dataset.

    The paper pairs a 10 GB SSD partition with a 10 GB dataset; keeping
    the ratio preserves capacity-pressure behaviour at small scales.
    """
    partition = overrides.pop("ssd_partition",
                              max(8 * MiB, int(10 * GiB * scale)))
    return cfg.with_ibridge(ssd_partition=partition, **overrides)


def measure(cfg: ClusterConfig, workload: Workload, warm_runs: int = 0,
            trace_disk: bool = False, fault_plan=None,
            need_cluster: bool = False):
    """Build a fresh cluster, run the workload, return (result, cluster).

    ``fault_plan`` (or, when omitted, the process-wide default installed
    by :func:`set_default_fault_plan`) runs the workload under injected
    faults; the result then carries the fault/recovery telemetry.

    ``cfg.shards > 1`` routes the run through the partitioned-horizon
    engine (:func:`repro.sim.parallel.run_sharded_workload`); the
    returned cluster is then ``None`` (each shard's cluster lives and
    dies in its worker).  Callers that inspect the cluster afterwards
    pass ``need_cluster=True`` (``trace_disk`` implies it) and get the
    serial engine with a one-time warning.  Fault plans compose with
    sharding: the plan is partitioned across per-shard injectors and
    the merged result carries cluster-wide fault/recovery telemetry.
    """
    plan = fault_plan if fault_plan is not None else _DEFAULT_FAULT_PLAN
    if cfg.shards > 1:
        if trace_disk or need_cluster:
            # The caller needs the finished cluster object (block
            # tracers, audit runtime, ...); the sharded engine discards
            # its per-shard clusters, so fall back to the serial engine.
            _warn_serial_fallback()
        else:
            from ..sim.parallel import run_sharded_workload
            result = run_sharded_workload(cfg, workload,
                                          warm_runs=warm_runs,
                                          fault_plan=plan)
            return result, None
    cluster = Cluster(cfg, trace_disk=trace_disk, fault_plan=plan)
    result = run_workload(cluster, workload, warm_runs=warm_runs)
    return result, cluster


_serial_fallback_warned = False


def _warn_serial_fallback() -> None:
    global _serial_fallback_warned
    if _serial_fallback_warned:
        return
    _serial_fallback_warned = True
    import warnings
    warnings.warn(
        "this experiment needs the finished cluster object; running it "
        "on the serial engine despite shards > 1",
        RuntimeWarning, stacklevel=3)


def stock_vs_ibridge(make_workload: Callable[[], Workload], scale: float,
                     num_servers: int = 8, warm_ibridge_reads: bool = False,
                     op: Optional[Op] = None, **ib_overrides):
    """Run the same workload on the stock system and with iBridge.

    Returns (stock_result, ibridge_result).  ``warm_ibridge_reads``
    performs the paper's prior-run warm pass for read workloads (the
    fragments identified in one run are cached for the next).
    """
    stock_cfg = base_config(num_servers=num_servers)
    ib_cfg = scaled_ibridge(base_config(num_servers=num_servers), scale,
                            **ib_overrides)
    stock, _ = measure(stock_cfg, make_workload())
    warm = 1 if (warm_ibridge_reads and (op is None or op is Op.READ)) else 0
    ib, _ = measure(ib_cfg, make_workload(), warm_runs=warm)
    return stock, ib
