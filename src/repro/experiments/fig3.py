"""Figure 3: the striping magnification effect.

Sixteen processes collectively issue constant-size synchronous requests
at stripe-cycle-aligned offsets.  A request of ``k * 64 KB`` is served
by servers 0..k-1; a request of ``k * 64 KB + 1 KB`` additionally drops
a 1 KB fragment on server k.  A competing program simultaneously reads
64 KB random segments from server k, so the fragment lands on a busy
disk.  Throughput is compared with and without the fragment, each with
and without a barrier between iterations — more servers involved means
a *larger* relative loss from the single lagging fragment.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import WorkloadError
from ..mpi.runtime import RankContext
from ..pfs.cluster import Cluster
from ..units import KiB, MiB
from ..util.rng import rng_stream
from ..workloads.base import Workload
from ..workloads.composite import CompositeWorkload
from .common import DEFAULT_SCALE, ExperimentResult, base_config, measure


class StridedRequester(Workload):
    """Constant-size requests at stripe-cycle-aligned offsets."""

    def __init__(self, nprocs: int, request_size: int, cycle: int,
                 iterations: int, use_barrier: bool) -> None:
        if request_size > cycle:
            raise WorkloadError("request larger than one stripe cycle")
        self._nprocs = nprocs
        self.request_size = request_size
        self.cycle = cycle
        self.iterations = iterations
        self.use_barrier = use_barrier
        self.handle: int | None = None
        self.name = f"strided[{request_size}]"

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def total_bytes(self) -> int:
        return self.iterations * self._nprocs * self.request_size

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is None:
            span = self.iterations * self._nprocs * self.cycle + self.cycle
            self.handle = cluster.create_file(span)

    def body(self, ctx: RankContext):
        for j in range(self.iterations):
            offset = (j * self._nprocs + ctx.rank) * self.cycle
            yield ctx.read_at(self.handle, offset, self.request_size)
            if self.use_barrier:
                yield ctx.barrier()


class RandomServerReader(Workload):
    """Reads 64 KB random stripes that all live on one target server."""

    def __init__(self, target_server: int, num_servers: int, unit: int,
                 iterations: int, nprocs: int = 4, span_stripes: int = 4096,
                 seed: int = 7) -> None:
        self._nprocs = nprocs
        self.target = target_server
        self.num_servers = num_servers
        self.unit = unit
        self.iterations = iterations
        self.span_stripes = span_stripes
        self.seed = seed
        self.handle: int | None = None
        self.name = f"random-reader[s{target_server}]"

    @property
    def nprocs(self) -> int:
        return self._nprocs

    @property
    def total_bytes(self) -> int:
        return self.iterations * self._nprocs * self.unit

    def prepare(self, cluster: Cluster) -> None:
        if self.handle is None:
            span = self.span_stripes * self.unit * self.num_servers
            self.handle = cluster.create_file(span)

    def body(self, ctx: RankContext):
        rng = rng_stream(self.seed, f"fig3-reader-{ctx.rank}")
        for _ in range(self.iterations):
            stripe_cycle = int(rng.integers(0, self.span_stripes))
            offset = (stripe_cycle * self.num_servers + self.target) * self.unit
            yield ctx.read_at(self.handle, offset, self.unit)


def _part_throughput(requests, ranks: range) -> float:
    """MiB/s of one composite part, from its own request records."""
    mine = [r for r in requests if r.rank in ranks and r.latency is not None]
    if not mine:
        return 0.0
    start = min(r.submit_time for r in mine)
    end = max(r.complete_time for r in mine)
    nbytes = sum(r.nbytes for r in mine)
    return nbytes / MiB / max(1e-9, end - start)


def run(scale: float = DEFAULT_SCALE, ks: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
        nprocs: int = 16) -> ExperimentResult:
    cfg = base_config()
    unit = cfg.stripe_unit
    cycle = unit * cfg.num_servers
    iterations = max(4, int(DEFAULT_SCALE / scale * 0) + int(40 * scale / DEFAULT_SCALE))
    iterations = max(4, iterations)
    result = ExperimentResult(
        name="fig3",
        title="Fig 3 — striping magnification (main-program MiB/s)",
        headers=["k servers", "no-frag", "frag", "loss%",
                 "no-frag+barrier", "frag+barrier", "loss% (barrier)"],
    )
    for k in ks:
        row: List[object] = [k]
        losses = []
        for barrier in (False, True):
            tps = []
            for frag in (False, True):
                size = k * unit + (KiB if frag else 0)
                main = StridedRequester(nprocs, size, cycle, iterations, barrier)
                reader = RandomServerReader(min(k, cfg.num_servers - 1),
                                            cfg.num_servers, unit,
                                            iterations=iterations * 2)
                wl = CompositeWorkload([main, reader], name=f"fig3-k{k}")
                _res, cluster = measure(cfg, wl, need_cluster=True)
                tps.append(_part_throughput(cluster.requests, wl.rank_range(0)))
            loss = (tps[0] - tps[1]) / tps[0] * 100 if tps[0] else 0.0
            losses.append(loss)
            row.extend([round(tps[0], 1), round(tps[1], 1)])
            row.insert(len(row), round(loss, 1))
        result.add_row(row, loss_nobarrier=losses[0], loss_barrier=losses[1])
    result.notes.append(
        "paper: throughput grows more slowly with server count when "
        "fragments are present; barriers amplify the fragment penalty")
    return result
