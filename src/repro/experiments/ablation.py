"""Ablations of iBridge design choices (DESIGN.md §5).

Not a paper figure: these isolate the mechanisms the reproduction
depends on so regressions in any of them are visible:

* ``return_policy`` — the literal per-request Eq. 1 form vs the
  efficiency-normalized form (the literal form fails to bootstrap).
* ``use_sibling_term`` — Eq. 3's striping magnification term.
* ``log_structured`` — SSD log vs in-place SSD writes (Fig. 10's
  ssd-only configuration shows the device-level version of this).
* ``global_merge`` — Linux-style cross-process insert merging.
"""

from __future__ import annotations

import dataclasses

from ..config import ReturnPolicy
from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def _mio(scale: float, nprocs: int = 64, op: Op = Op.WRITE) -> MpiIoTest:
    return MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                     file_size=file_bytes(scale, nprocs, 65 * KiB), op=op)


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation",
        title="Ablations — 65KiB reads (warm), 64 procs (MiB/s)",
        headers=["variant", "throughput", "ssd%"],
    )

    # Reads expose the literal Eq. 1 policy's failure to bootstrap: a
    # fragment's per-request disk estimate is *smaller* than the EWMA of
    # full-size pieces, so nothing is ever admitted to the cache.
    variants = [
        ("stock", base_config(), 0),
        ("iBridge (default)", scaled_ibridge(base_config(), scale), 1),
        ("return policy: literal Eq.1",
         scaled_ibridge(base_config(), scale,
                        return_policy=ReturnPolicy.PAPER), 1),
        ("no sibling term (Eq.3 off)",
         scaled_ibridge(base_config(), scale, use_sibling_term=False), 1),
    ]
    for label, cfg, warm in variants:
        res, _ = measure(cfg, _mio(scale, nprocs, op=Op.READ),
                         warm_runs=warm)
        result.add_row([label, round(res.throughput_mib_s, 1),
                        round(res.ssd_fraction * 100, 1)],
                       throughput=res.throughput_mib_s,
                       ssd_pct=res.ssd_fraction * 100)

    # Scheduler ablation: per-stream-only merging (write workload, where
    # cross-process merging matters most).
    cfg = base_config()
    cfg = cfg.replace(hdd_scheduler=dataclasses.replace(cfg.hdd_scheduler,
                                                        global_merge=False))
    res, _ = measure(cfg, _mio(scale, nprocs, op=Op.WRITE))
    result.add_row(["stock, per-stream merge only",
                    round(res.throughput_mib_s, 1), 0.0],
                   throughput=res.throughput_mib_s, ssd_pct=0.0)

    result.notes.append(
        "the literal Eq.1 policy has near-zero mean return for fragments "
        "(a fragment's per-request time is below the EWMA of full-size "
        "pieces); it admits only through seek-distance noise, so its "
        "cache fills more slowly but converges on repeated runs")
    result.notes.append(
        "per-stream-only merging (no Linux-style global elevator merge) "
        "roughly halves stock write throughput — cross-process merging "
        "matters even under uncoordinated arrivals")
    return result
