"""Figure 12: heterogeneous workloads and dynamic SSD partitioning.

mpi-io-test (65 KB writes — fragments) runs concurrently with BTIO
(tiny writes — regular random requests).  Compared: the stock system,
iBridge with static 1:1 and 1:2 (random:fragment) SSD splits, and
iBridge's dynamic return-proportional partitioning.  The paper reports
+53% aggregate over stock for dynamic, and +13%/+5% over the static
1:1/1:2 splits.
"""

from __future__ import annotations


from ..devices.base import Op
from ..units import KiB, MiB
from ..workloads.btio import BTIO
from ..workloads.composite import CompositeWorkload
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def _part_throughput(requests, ranks: range) -> float:
    mine = [r for r in requests if r.rank in ranks and r.latency is not None]
    if not mine:
        return 0.0
    start = min(r.submit_time for r in mine)
    end = max(r.complete_time for r in mine)
    return sum(r.nbytes for r in mine) / MiB / max(1e-9, end - start)


def _make_workload(scale: float, nprocs: int, steps: int):
    mio = MpiIoTest(nprocs=nprocs, request_size=65 * KiB,
                    file_size=file_bytes(scale, nprocs, 65 * KiB),
                    op=Op.WRITE)
    btio = BTIO(nprocs=nprocs, steps=steps, scale=scale,
                compute_per_step=0.5)
    return CompositeWorkload([mio, btio], name="fig12")


def run(scale: float = DEFAULT_SCALE, nprocs: int = 64,
        steps: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        name="fig12",
        title="Fig 12 — heterogeneous mix (MiB/s)",
        headers=["system", "mpi-io-test", "BTIO", "aggregate"],
    )
    # SSD partition sized like the paper's 8 GB for ~17 GB of data.
    probe = _make_workload(scale, nprocs, steps)
    partition = max(8 * MiB, int(probe.total_bytes * 0.45))
    systems = [
        ("stock", base_config()),
        ("static 1:1", scaled_ibridge(base_config(), scale,
                                      ssd_partition=partition,
                                      dynamic_partition=False,
                                      static_split=(0.5, 0.5))),
        ("static 1:2", scaled_ibridge(base_config(), scale,
                                      ssd_partition=partition,
                                      dynamic_partition=False,
                                      static_split=(1 / 3, 2 / 3))),
        ("dynamic", scaled_ibridge(base_config(), scale,
                                   ssd_partition=partition)),
    ]
    for label, cfg in systems:
        wl = _make_workload(scale, nprocs, steps)
        res, cluster = measure(cfg, wl, need_cluster=True)
        tp_mio = _part_throughput(cluster.requests, wl.rank_range(0))
        tp_btio = _part_throughput(cluster.requests, wl.rank_range(1))
        agg = res.throughput_mib_s
        result.add_row([label, round(tp_mio, 1), round(tp_btio, 1),
                        round(agg, 1)],
                       mpiiotest=tp_mio, btio=tp_btio, aggregate=agg)
    result.notes.append("paper: dynamic = 84 MB/s aggregate, +53% over "
                        "stock, +13%/+5% over static 1:1 / 1:2")
    return result
