"""Figure 2: the effects of unaligned access on the stock system.

(a) Pattern II — request sizes 64/65/74/84/94 KB across process counts;
(b) Pattern III — 64 KB requests at offsets 0/1/10 KB across process
    counts;
(c,d,e) block-level dispatch-size distributions for aligned 64 KB,
    65 KB, and 64 KB + 10 KB-offset requests.

All on the stock system (no iBridge): this is the motivation study.

Each measured point is an independent cell of the experiment matrix
(fresh cluster, fixed seed) executed through
:mod:`repro.experiments.runner` — serial and ``--jobs N`` runs produce
bit-identical results, merged in loop order.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure)
from .runner import cell, sweep

#: Paper reference points (MB/s) quoted in Section I-A.
PAPER_POINTS = {
    ("fig2a", 16, 64): 159.6,
    ("fig2a", 16, 65): 77.4,
    ("fig2a", 16, 74): 88.1,
    ("fig2a", 512, 64): 116.2,
    ("fig2b", 512, 1): 102.1,
    ("fig2b", 512, 10): 81.8,
}


def _cell_throughput(scale: float, nprocs: int, size: int,
                     offset_shift: int = 0) -> float:
    """One (nprocs, request size, offset) point on the stock system."""
    cfg = base_config()
    wl = MpiIoTest(nprocs=nprocs, request_size=size,
                   file_size=file_bytes(scale, nprocs, size), op=Op.READ,
                   offset_shift=offset_shift)
    res, _ = measure(cfg, wl)
    return res.throughput_mib_s


def run_fig2a(scale: float = DEFAULT_SCALE,
              sizes_kib: Sequence[int] = (64, 65, 74, 84, 94),
              procs: Sequence[int] = (16, 64, 128, 512)) -> ExperimentResult:
    """Pattern II: unaligned request sizes vs process count (reads)."""
    result = ExperimentResult(
        name="fig2a",
        title="Fig 2(a) — throughput (MiB/s), Pattern II request sizes",
        headers=["nprocs"] + [f"{s}KiB" for s in sizes_kib],
    )
    cells = [cell("repro.experiments.fig2:_cell_throughput",
                  scale=scale, nprocs=np_, size=s * KiB)
             for np_ in procs for s in sizes_kib]
    values = iter(sweep(cells))
    for np_ in procs:
        row: list = [np_]
        keyed: Dict[str, float] = {}
        for s in sizes_kib:
            tp = next(values)
            row.append(round(tp, 1))
            keyed[f"s{s}"] = tp
        result.add_row(row, **keyed)
    result.notes.append("paper: 16 procs — 64K:159.6, 65K:77.4, 74K:88.1; "
                        "throughput declines with process count")
    return result


def run_fig2b(scale: float = DEFAULT_SCALE,
              offsets_kib: Sequence[int] = (0, 1, 10),
              procs: Sequence[int] = (16, 64, 128, 512)) -> ExperimentResult:
    """Pattern III: 64 KB requests at stripe-shifted offsets (reads)."""
    result = ExperimentResult(
        name="fig2b",
        title="Fig 2(b) — throughput (MiB/s), Pattern III offsets (64KiB reqs)",
        headers=["nprocs"] + [f"+{o}KiB" for o in offsets_kib],
    )
    size = 64 * KiB
    cells = [cell("repro.experiments.fig2:_cell_throughput",
                  scale=scale, nprocs=np_, size=size, offset_shift=off * KiB)
             for np_ in procs for off in offsets_kib]
    values = iter(sweep(cells))
    for np_ in procs:
        row: list = [np_]
        keyed: Dict[str, float] = {}
        for off in offsets_kib:
            tp = next(values)
            row.append(round(tp, 1))
            keyed[f"off{off}"] = tp
        result.add_row(row, **keyed)
    result.notes.append("paper (512 procs): +0:116.2, +1:102.1, +10:81.8; "
                        "offsets degrade throughput at every process count")
    return result


def _cell_dispatch_histogram(scale: float, request_size: int, offset: int,
                             nprocs: int = 64) -> Dict[int, float]:
    """Merged dispatch-size distribution for one unaligned pattern."""
    cfg = base_config()
    wl = MpiIoTest(nprocs=nprocs, request_size=request_size,
                   file_size=file_bytes(scale, nprocs, request_size),
                   op=Op.READ, offset_shift=offset)
    _res, cluster = measure(cfg, wl, trace_disk=True)
    merged: Dict[int, int] = {}
    for server in cluster.servers:
        for size, count in server.disk_tracer.size_histogram(Op.READ).items():
            merged[size] = merged.get(size, 0) + count
    total = sum(merged.values()) or 1
    return {size: count / total for size, count in sorted(merged.items())}


def run_fig2cde(scale: float = DEFAULT_SCALE, nprocs: int = 64) -> ExperimentResult:
    """Block-level dispatch-size distributions (sectors of 0.5 KB)."""
    result = ExperimentResult(
        name="fig2cde",
        title="Fig 2(c,d,e) — block-level dispatch sizes (top-3 fractions)",
        headers=["case", "top sizes (sectors:frac%)", "frac >=128 sectors",
                 "mean sectors"],
    )
    cases = [
        ("c: 64KiB aligned", 64 * KiB, 0),
        ("d: 65KiB", 65 * KiB, 0),
        ("e: 64KiB +10KiB", 64 * KiB, 10 * KiB),
    ]
    cells = [cell("repro.experiments.fig2:_cell_dispatch_histogram",
                  scale=scale, request_size=size, offset=off, nprocs=nprocs)
             for _label, size, off in cases]
    for (label, _size, _off), raw in zip(cases, sweep(cells)):
        # Cached/pickled dict keys stay ints; JSON-free transport keeps
        # the histogram exact.
        dist = {int(k): v for k, v in raw.items()}
        top = sorted(dist.items(), key=lambda kv: -kv[1])[:3]
        top_s = " ".join(f"{s}:{f * 100:.0f}%" for s, f in top)
        big = sum(f for s, f in dist.items() if s >= 128)
        mean = sum(s * f for s, f in dist.items())
        result.add_row([label, top_s, round(big, 3), round(mean, 1)],
                       frac_big=big, mean_sectors=mean)
    result.notes.append(
        "paper: (c) 72% at 128 sectors, 18% at 256; (d) many small sizes; "
        "(e) dominant sizes 80 and 176 sectors (40KB/88KB)")
    return result


def run(scale: float = DEFAULT_SCALE) -> ExperimentResult:
    """Aggregate Fig 2 driver (sub-figures also callable individually)."""
    a = run_fig2a(scale, procs=(16, 64))
    b = run_fig2b(scale, procs=(16, 64))
    c = run_fig2cde(scale)
    combined = ExperimentResult(
        name="fig2",
        title="Fig 2 — unaligned access effects (see sub-results)",
        headers=["sub-figure", "rows"],
    )
    for sub in (a, b, c):
        combined.add_row([sub.name, len(sub.rows)])
        combined.notes.append(str(sub))
    return combined
