"""Figure 6: iBridge scalability with process count (65 KB requests).

Process counts 16/64/128/512; reads and writes; the paper reports a
154% average improvement with ~10% of data served by the SSDs, and a
moderate throughput dip at 512 processes from access interference.
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import Op
from ..units import KiB
from ..workloads.mpi_io_test import MpiIoTest
from .common import (DEFAULT_SCALE, ExperimentResult, base_config, file_bytes,
                     measure, scaled_ibridge)


def run(scale: float = DEFAULT_SCALE,
        procs: Sequence[int] = (16, 64, 128, 512)) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6",
        title="Fig 6 — 65KiB requests vs process count (MiB/s)",
        headers=["nprocs", "op", "stock", "iBridge", "gain%"],
    )
    size = 65 * KiB
    stock_cfg = base_config()
    ib_cfg = scaled_ibridge(base_config(), scale)
    gains = []
    for np_ in procs:
        for op in (Op.READ, Op.WRITE):
            args = dict(nprocs=np_, request_size=size,
                        file_size=file_bytes(scale, np_, size), op=op)
            stock, _ = measure(stock_cfg, MpiIoTest(**args))
            ib, _ = measure(ib_cfg, MpiIoTest(**args),
                            warm_runs=1 if op is Op.READ else 0)
            gain = ((ib.throughput_mib_s - stock.throughput_mib_s)
                    / stock.throughput_mib_s * 100 if stock.throughput_mib_s else 0)
            gains.append(gain)
            result.add_row(
                [f"{np_}/{op.value}", op.value,
                 round(stock.throughput_mib_s, 1),
                 round(ib.throughput_mib_s, 1), round(gain, 1)],
                stock=stock.throughput_mib_s, ibridge=ib.throughput_mib_s,
                gain=gain)
    result.add_row(["mean", "-", "-", "-", round(sum(gains) / len(gains), 1)],
                   mean_gain=sum(gains) / len(gains))
    result.notes.append("paper: +154% average; ~10% of data served by SSDs; "
                        "512 procs moderately slower than smaller counts")
    return result
