"""Command-line driver: ``ibridge-experiment <name> [--scale S]``.

Runs one experiment (or ``all``) and prints its table(s).  The scale is
the fraction of the paper's 10 GB working set to simulate.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import List, Optional

from ..config import AuditConfig
from .common import DEFAULT_SCALE, set_default_audit, set_default_fault_plan
from .registry import EXPERIMENTS, get


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ibridge-experiment",
        description="Reproduce a table/figure from the iBridge paper.")
    parser.add_argument("name", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"fraction of the paper's 10GB working set "
                             f"(default {DEFAULT_SCALE:.4f})")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--audit", action="store_true",
                        help="run with the invariant auditor + livelock "
                             "watchdog enabled (strict: first violation "
                             "aborts the experiment)")
    parser.add_argument("--audit-trace", metavar="PATH", default=None,
                        help="mirror audit trace events to a JSONL file "
                             "(implies --audit)")
    parser.add_argument("--fault-plan", metavar="PATH", default=None,
                        help="run the experiment under the fault plan in "
                             "PATH (JSON, or YAML with PyYAML installed); "
                             "applies to every cluster the experiment "
                             "builds via measure()")
    parser.add_argument("--degrade-factor", type=float, default=None,
                        help="slowdown factor for experiments with a "
                             "degraded-disk knob (e.g. 'degraded')")
    args = parser.parse_args(argv)

    if args.fault_plan:
        from ..faults import FaultPlan
        set_default_fault_plan(FaultPlan.from_file(args.fault_plan))

    if args.audit or args.audit_trace:
        if args.audit_trace:
            # EventTrace appends so that multi-cluster experiments keep
            # every cluster's events; truncate once per CLI invocation.
            open(args.audit_trace, "w", encoding="utf-8").close()
        set_default_audit(AuditConfig(enabled=True,
                                      trace_path=args.audit_trace))

    if args.list or args.name is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    # "all" runs each artifact once (fig2's sub-figures fold into fig2).
    names = sorted(n for n in EXPERIMENTS
                   if n not in ("fig2a", "fig2b", "fig2cde")) \
        if args.name == "all" else [args.name]
    for name in names:
        runner = get(name)
        kwargs = {"scale": args.scale}
        # Optional knobs are forwarded only to experiments that take
        # them, so 'all' keeps working with any flag combination.
        if args.degrade_factor is not None:
            params = inspect.signature(runner).parameters
            if "degrade_factor" in params:
                kwargs["degrade_factor"] = args.degrade_factor
        start = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - start
        print(result)
        print(f"  [{name} finished in {elapsed:.1f}s wall time]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
