"""Command-line driver: ``ibridge-experiment <name> [--scale S]``.

Runs one experiment (or ``all``) and prints its table(s).  The scale is
the fraction of the paper's 10 GB working set to simulate.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..config import AuditConfig
from .common import DEFAULT_SCALE, set_default_audit
from .registry import EXPERIMENTS, get


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ibridge-experiment",
        description="Reproduce a table/figure from the iBridge paper.")
    parser.add_argument("name", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"fraction of the paper's 10GB working set "
                             f"(default {DEFAULT_SCALE:.4f})")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--audit", action="store_true",
                        help="run with the invariant auditor + livelock "
                             "watchdog enabled (strict: first violation "
                             "aborts the experiment)")
    parser.add_argument("--audit-trace", metavar="PATH", default=None,
                        help="mirror audit trace events to a JSONL file "
                             "(implies --audit)")
    args = parser.parse_args(argv)

    if args.audit or args.audit_trace:
        if args.audit_trace:
            # EventTrace appends so that multi-cluster experiments keep
            # every cluster's events; truncate once per CLI invocation.
            open(args.audit_trace, "w", encoding="utf-8").close()
        set_default_audit(AuditConfig(enabled=True,
                                      trace_path=args.audit_trace))

    if args.list or args.name is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    # "all" runs each artifact once (fig2's sub-figures fold into fig2).
    names = sorted(n for n in EXPERIMENTS
                   if n not in ("fig2a", "fig2b", "fig2cde")) \
        if args.name == "all" else [args.name]
    for name in names:
        runner = get(name)
        start = time.time()
        result = runner(scale=args.scale)
        elapsed = time.time() - start
        print(result)
        print(f"  [{name} finished in {elapsed:.1f}s wall time]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
