"""Command-line driver: ``ibridge-experiment <name> [--scale S]``.

Runs one experiment (or ``all``) and prints its table(s).  The scale is
the fraction of the paper's 10 GB working set to simulate.

Sweep execution (``--jobs``, ``--no-cache``, ``--cache-dir``) is routed
through :mod:`repro.experiments.runner`: experiments that decompose
into independent cells fan them out over a process pool and reuse
cached cell results across invocations.  Serial and parallel runs are
bit-identical by construction; ``--no-cache`` forces every cell to
simulate from scratch.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import List, Optional

from ..config import AuditConfig, ObsConfig
from .common import (DEFAULT_SCALE, set_default_audit, set_default_fault_plan,
                     set_default_obs, set_default_shards,
                     warn_if_oversubscribed)
from .registry import EXPERIMENTS, get
from .runner import default_cache_dir, set_sweep_defaults


def _profiled(runner, kwargs, limit: int = 25):
    """Run one experiment under cProfile; print top-``limit`` entries.

    The same idea as the offline device profiling in
    ``repro.devices.profiling`` — measure the thing we are about to
    optimize — applied to the simulator itself: the printout names the
    engine hot paths (event dispatch, scheduler select, device serve)
    so a perf regression is visible before a wall-clock trend is.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = runner(**kwargs)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(limit)
    return result


def cache_main(argv: List[str]) -> int:
    """``ibridge-experiment cache stats|prune`` — result-cache upkeep."""
    from .cache_tools import cache_stats, parse_age, parse_size, prune_cache

    parser = argparse.ArgumentParser(
        prog="ibridge-experiment cache",
        description="Inspect or prune the on-disk result cache.")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help=f"cache location (default "
                             f"{default_cache_dir()!r})")
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("stats", help="entry count, bytes, age range")
    prune = sub.add_parser("prune", help="evict by age and/or LRU size cap")
    prune.add_argument("--max-bytes", metavar="SIZE", default=None,
                       help="shrink the cache to at most SIZE "
                            "(e.g. 500M, 2G), evicting least-recently-"
                            "used entries first")
    prune.add_argument("--max-age", metavar="AGE", default=None,
                       help="drop entries not touched for AGE "
                            "(e.g. 7d, 12h)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be removed; remove nothing")
    args = parser.parse_args(argv)

    if args.action == "stats":
        print(cache_stats(args.cache_dir).format())
        return 0
    if args.max_bytes is None and args.max_age is None:
        parser.error("prune needs --max-bytes and/or --max-age")
    report = prune_cache(
        args.cache_dir,
        max_bytes=None if args.max_bytes is None else parse_size(args.max_bytes),
        max_age=None if args.max_age is None else parse_age(args.max_age),
        dry_run=args.dry_run)
    print(("[dry-run] " if args.dry_run else "") + report.format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The cache subcommand has its own grammar; dispatch before the
    # experiment parser claims the positional.
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="ibridge-experiment",
        description="Reproduce a table/figure from the iBridge paper "
                    "(or maintain the result cache: see "
                    "'ibridge-experiment cache --help').")
    parser.add_argument("name", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"fraction of the paper's 10GB working set "
                             f"(default {DEFAULT_SCALE:.4f})")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the experiment matrix "
                             "(default 1 = in-process; results are "
                             "bit-identical at any N)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition every cluster into N shards run "
                             "by the parallel DES engine (default 1 = "
                             "serial, bit-identical to the classic "
                             "engine; composes with --fault-plan: the "
                             "plan is partitioned across shard "
                             "injectors)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result "
                             "cache; every cell simulates from scratch")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help=f"result cache location (default "
                             f"{default_cache_dir()!r})")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-25 "
                             "cumulative entries (forces --jobs 1: "
                             "profiling a worker pool measures only the "
                             "coordinator)")
    parser.add_argument("--audit", action="store_true",
                        help="run with the invariant auditor + livelock "
                             "watchdog enabled (strict: first violation "
                             "aborts the experiment)")
    parser.add_argument("--audit-trace", metavar="PATH", default=None,
                        help="mirror audit trace events to a JSONL file "
                             "(implies --audit)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="record request/span traces to a JSONL file; "
                             "also writes a Chrome/Perfetto trace next to "
                             "it (PATH with a .chrome.json suffix) and "
                             "prints the critical-path straggler report")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="sample time-series metrics (queue depths, "
                             "SSD log occupancy, admission counters) to a "
                             "JSONL file")
    parser.add_argument("--metrics-text", metavar="PATH", default=None,
                        help="write the final metrics snapshot as "
                             "Prometheus exposition text (the same "
                             "format the experiment service serves "
                             "under /metrics)")
    parser.add_argument("--timeline-out", metavar="PATH", default=None,
                        help="record the continuous sim-time series "
                             "(gauges sampled every --timeline-dt "
                             "simulated seconds, counters as rates, "
                             "fault/GC marks) to a JSONL file (.csv "
                             "suffix switches to CSV); implies metrics")
    parser.add_argument("--timeline-dt", type=float, default=0.05,
                        metavar="SECONDS",
                        help="timeline sample cadence in simulated "
                             "seconds (default 0.05; only with "
                             "--timeline-out)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write a unified markdown run report "
                             "(critical path + timeline sparklines + "
                             "fault windows) after the run; needs "
                             "--trace-out and/or --timeline-out")
    parser.add_argument("--fault-plan", metavar="PATH", default=None,
                        help="run the experiment under the fault plan in "
                             "PATH (JSON, or YAML with PyYAML installed); "
                             "applies to every cluster the experiment "
                             "builds via measure()")
    parser.add_argument("--degrade-factor", type=float, default=None,
                        help="slowdown factor for experiments with a "
                             "degraded-disk knob (e.g. 'degraded')")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    set_default_shards(args.shards)
    # One warning, not one per cell: oversubscribing jobs x shards past
    # the machine's cores only adds context-switch overhead.
    warn_if_oversubscribed(jobs=args.jobs, shards=args.shards)

    if args.fault_plan:
        from ..faults import FaultPlan
        set_default_fault_plan(FaultPlan.from_file(args.fault_plan))

    if args.audit or args.audit_trace:
        if args.audit_trace:
            # EventTrace appends so that multi-cluster experiments keep
            # every cluster's events; truncate once per CLI invocation.
            open(args.audit_trace, "w", encoding="utf-8").close()
        set_default_audit(AuditConfig(enabled=True,
                                      trace_path=args.audit_trace))

    if args.report and not (args.trace_out or args.timeline_out):
        parser.error("--report needs --trace-out and/or --timeline-out")
    if args.timeline_dt <= 0:
        parser.error("--timeline-dt must be positive")

    if (args.trace_out or args.metrics_out or args.metrics_text
            or args.timeline_out):
        # Like the audit trace, obs files are appended per cluster;
        # truncate each once per CLI invocation.  (--metrics-text is
        # overwrite-per-cluster by nature; no truncation needed.)
        for path in (args.trace_out, args.metrics_out, args.timeline_out):
            if path:
                open(path, "w", encoding="utf-8").close()
        metrics_on = (args.metrics_out is not None
                      or args.metrics_text is not None
                      or args.timeline_out is not None)
        set_default_obs(ObsConfig(
            enabled=True,
            trace=args.trace_out is not None,
            metrics=metrics_on,
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            metrics_text_path=args.metrics_text,
            timeline_dt=(args.timeline_dt if args.timeline_out else 0.0),
            timeline_path=args.timeline_out))

    if args.audit_trace and args.jobs > 1:
        # Pool workers appending to one JSONL would interleave; keep the
        # trace coherent by running the matrix in-process.
        print("note: --audit-trace forces --jobs 1 (single trace writer)")
        args.jobs = 1
    if (args.trace_out or args.metrics_out or args.metrics_text
            or args.timeline_out) and args.jobs > 1:
        print("note: --trace-out/--metrics-out/--metrics-text/"
              "--timeline-out force --jobs 1 (single trace writer)")
        args.jobs = 1
    if args.profile and args.jobs > 1:
        args.jobs = 1

    # CLI runs cache cell results by default (repeat invocations of the
    # same experiment at the same scale/seed/config hit the cache and
    # perform zero simulation steps); --no-cache forces fresh runs.
    # The programmatic API (runner.sweep) stays uncached unless
    # explicitly configured, so tests and benchmarks always simulate.
    set_sweep_defaults(jobs=args.jobs, cache=not args.no_cache,
                       cache_dir=args.cache_dir)

    if args.list or args.name is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    # "all" runs each artifact once (fig2's sub-figures fold into fig2).
    names = sorted(n for n in EXPERIMENTS
                   if n not in ("fig2a", "fig2b", "fig2cde")) \
        if args.name == "all" else [args.name]
    for name in names:
        runner = get(name)
        kwargs = {"scale": args.scale}
        # Optional knobs are forwarded only to experiments that take
        # them, so 'all' keeps working with any flag combination.
        if args.degrade_factor is not None:
            params = inspect.signature(runner).parameters
            if "degrade_factor" in params:
                kwargs["degrade_factor"] = args.degrade_factor
        start = time.time()
        if args.profile:
            result = _profiled(runner, kwargs)
        else:
            result = runner(**kwargs)
        elapsed = time.time() - start
        print(result)
        print(f"  [{name} finished in {elapsed:.1f}s wall time]")
        print()

    if args.trace_out:
        _emit_trace_outputs(args.trace_out, args.timeline_out)
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.metrics_text:
        print(f"metrics exposition written to {args.metrics_text}")
    if args.timeline_out:
        print(f"timeline written to {args.timeline_out}")
    if args.report:
        from ..obs import report as obs_report
        rc = obs_report.main(
            (["--trace", args.trace_out] if args.trace_out else [])
            + (["--timeline", args.timeline_out] if args.timeline_out
               else [])
            + (["--metrics", args.metrics_out] if args.metrics_out else [])
            + ["--format", "markdown", "--out", args.report])
        if rc != 0:
            return rc
    return 0


def _emit_trace_outputs(trace_path: str,
                        timeline_path: Optional[str] = None) -> None:
    """Post-run trace products: straggler report + Chrome/Perfetto JSON."""
    from ..obs.critical_path import analyze
    from ..obs.export import (chrome_path_for, load_spans_jsonl,
                              write_chrome_trace)

    spans, events = load_spans_jsonl(trace_path)
    if not spans:
        print(f"note: no spans recorded in {trace_path}")
        return
    report = analyze(spans)
    print(report.format())
    counters = ()
    if timeline_path and timeline_path.endswith(".jsonl"):
        # Timeline samples ride along as Perfetto counter tracks, so
        # queue depth / SSD occupancy plot under the span lanes.
        from ..obs.timeline import load_timeline_jsonl
        counters = [r for r in load_timeline_jsonl(timeline_path)
                    if "series" in r]
    chrome_path = chrome_path_for(trace_path)
    write_chrome_trace(chrome_path, spans, events, counters)
    print(f"spans written to {trace_path} "
          f"(Chrome/Perfetto: {chrome_path} — open at https://ui.perfetto.dev)")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
