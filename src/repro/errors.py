"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (e.g. re-triggering an event)."""


class ConfigError(ReproError):
    """Invalid configuration value (non-positive size, bad ratio, ...)."""


class StorageError(ReproError):
    """Errors from the device / block / local-store layers."""


class AllocationError(StorageError):
    """The extent allocator ran out of space."""


class ProtocolError(ReproError):
    """Violation of the PFS client/server message protocol."""


class AuditError(ReproError):
    """An online invariant check or the livelock watchdog fired.

    Raised by :mod:`repro.audit` in strict mode; the message carries the
    violated invariant and a snapshot of the relevant state.
    """


class WorkloadError(ReproError):
    """Invalid workload specification."""


class FaultError(ReproError):
    """Errors from the fault-injection subsystem (:mod:`repro.faults`).

    Raised for invalid fault plans and for failure conditions that the
    recovery machinery could not mask (see subclasses).
    """


class RequestTimeoutError(FaultError):
    """A PFS client exhausted its retry budget for one sub-request.

    Carries enough context (server, sub-request id, attempts) to tell a
    genuinely dead server from a too-tight retry configuration.
    """


class DeviceFailedError(StorageError):
    """I/O issued to a device inside a fail-stop window."""


class ChaosError(ReproError):
    """Errors from the randomized resilience tester (:mod:`repro.chaos`)."""


class EpisodeBudgetError(ChaosError):
    """A chaos episode exceeded its step / simulated-time / wall-clock
    budget.

    Raised *inside* the simulation by the episode budget guard, so it
    surfaces out of ``env.run()`` and aborts the episode instead of
    hanging the harness; the runner records it as a ``budget-exceeded``
    failure verdict.
    """
