"""Local (per-server) storage: extent allocation and file→LBN mapping."""

from .extents import Extent, ExtentAllocator, split_ranges
from .store import LocalStore

__all__ = ["Extent", "ExtentAllocator", "split_ranges", "LocalStore"]
