"""Per-server local file store: file offsets → device LBN ranges.

Each PVFS2 data server keeps one local "bstream" file per PFS file
handle.  The store maps (handle, offset, size) to device byte ranges,
allocating extents on first write.  Sequentially grown files get
contiguous LBNs (the common case for the paper's pre-written 10 GB
benchmark files), so logical sequential access at a server is physical
sequential access on its disk.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import StorageError
from ..util.intervals import IntervalMap
from .extents import ExtentAllocator


def _lbn_coalesce(left: Tuple[int, int, int], right: Tuple[int, int, int]):
    """Merge adjacent file intervals whose device ranges are contiguous."""
    ls, le, lv = left
    _rs, _re, rv = right
    if lv + (le - ls) == rv:
        return lv
    return None


class LocalStore:
    """Maps per-handle file space onto one device's LBN space."""

    def __init__(self, capacity: int, reserve: int = 0) -> None:
        if reserve < 0 or reserve >= capacity:
            raise StorageError(f"invalid reserve {reserve} for capacity {capacity}")
        self.allocator = ExtentAllocator(capacity, start=reserve)
        self.reserved = reserve
        self._files: Dict[int, IntervalMap] = {}

    def _file(self, handle: int) -> IntervalMap:
        fmap = self._files.get(handle)
        if fmap is None:
            fmap = IntervalMap(coalesce=_lbn_coalesce)
            self._files[handle] = fmap
        return fmap

    def file_size(self, handle: int) -> int:
        """Total allocated bytes of ``handle`` (0 if unknown)."""
        fmap = self._files.get(handle)
        return fmap.total_bytes if fmap else 0

    def is_allocated(self, handle: int, offset: int, nbytes: int) -> bool:
        """True when ``[offset, offset+nbytes)`` is fully extent-backed."""
        fmap = self._files.get(handle)
        return fmap is not None and fmap.is_covered(offset, offset + nbytes)

    def ensure(self, handle: int, offset: int, nbytes: int) -> None:
        """Allocate backing extents for any holes in ``[offset, offset+nbytes)``."""
        if nbytes <= 0:
            raise StorageError(f"size must be positive, got {nbytes}")
        fmap = self._file(handle)
        for gap_start, gap_end in fmap.gaps(offset, offset + nbytes):
            ext = self.allocator.allocate(gap_end - gap_start)
            fmap.set(gap_start, gap_end, ext.lbn)

    def ranges_for_write(self, handle: int, offset: int,
                         nbytes: int) -> List[Tuple[int, int]]:
        """Device (lbn, size) ranges for a write, allocating as needed."""
        self.ensure(handle, offset, nbytes)
        return self._ranges(handle, offset, nbytes)

    def ranges_for_read(self, handle: int, offset: int,
                        nbytes: int) -> List[Tuple[int, int]]:
        """Device (lbn, size) ranges for a read of existing data."""
        fmap = self._files.get(handle)
        if fmap is None or not fmap.is_covered(offset, offset + nbytes):
            raise StorageError(
                f"read of unallocated range [{offset}, {offset + nbytes}) "
                f"in handle {handle}")
        return self._ranges(handle, offset, nbytes)

    def _ranges(self, handle: int, offset: int, nbytes: int) -> List[Tuple[int, int]]:
        fmap = self._files[handle]
        out: List[Tuple[int, int]] = []
        for cs, ce, lbn, delta in fmap.get(offset, offset + nbytes):
            out.append((lbn + delta, ce - cs))
        # Merge device-contiguous neighbouring pieces so one logically
        # contiguous file range maps to as few device I/Os as possible.
        merged: List[Tuple[int, int]] = []
        for lbn, size in out:
            if merged and merged[-1][0] + merged[-1][1] == lbn:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((lbn, size))
        return merged

    def preallocate(self, handle: int, nbytes: int) -> None:
        """Lay out ``handle`` contiguously from offset 0 (benchmark files)."""
        if nbytes <= 0:
            raise StorageError(f"size must be positive, got {nbytes}")
        if self.file_size(handle) != 0:
            raise StorageError(f"handle {handle} already has data")
        ext = self.allocator.allocate(nbytes)
        self._file(handle).set(0, nbytes, ext.lbn)
