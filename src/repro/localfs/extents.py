"""Extent allocation over a device's byte address space.

Models the relevant behaviour of Ext2 allocation for PVFS2 bstream
files: space is handed out in contiguous extents, sequential growth of
one file yields contiguous device ranges, and interleaved growth of
multiple files fragments them.  A reserved region can be carved out
(iBridge's pre-created log file on the SSD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import AllocationError


@dataclass(frozen=True)
class Extent:
    """A contiguous device range ``[lbn, lbn + length)``."""

    lbn: int
    length: int

    @property
    def end(self) -> int:
        return self.lbn + self.length


class ExtentAllocator:
    """First-fit-with-cursor allocator (no frees except whole-device reset).

    The simulated workloads only ever grow files, so a bump-cursor
    allocator suffices; ``contiguous_with`` lets a caller ask whether
    the next allocation would extend a given extent in place.
    """

    def __init__(self, capacity: int, start: int = 0) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        if not 0 <= start < capacity:
            raise AllocationError(f"start {start} outside [0, {capacity})")
        self.capacity = capacity
        self._cursor = start
        self._start = start

    @property
    def used(self) -> int:
        return self._cursor - self._start

    @property
    def free(self) -> int:
        return self.capacity - self._cursor

    def allocate(self, nbytes: int) -> Extent:
        """Allocate a contiguous extent of ``nbytes``."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        if self._cursor + nbytes > self.capacity:
            raise AllocationError(
                f"out of space: need {nbytes}, free {self.free}")
        ext = Extent(self._cursor, nbytes)
        self._cursor += nbytes
        return ext

    def contiguous_with(self, extent: Extent) -> bool:
        """Would the next allocation start exactly at ``extent.end``?"""
        return self._cursor == extent.end

    def reset(self) -> None:
        self._cursor = self._start


def split_ranges(ranges: List[Extent], max_piece: int) -> List[Extent]:
    """Split extents into pieces of at most ``max_piece`` bytes."""
    if max_piece <= 0:
        raise AllocationError("max_piece must be positive")
    out: List[Extent] = []
    for ext in ranges:
        off = 0
        while off < ext.length:
            piece = min(max_piece, ext.length - off)
            out.append(Extent(ext.lbn + off, piece))
            off += piece
    return out
