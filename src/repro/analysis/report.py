"""Plain-text table formatting for experiment outputs.

Experiments print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_histogram(dist: dict, unit: str = "sectors", top: int = 10) -> str:
    """Render a size→fraction distribution, largest fractions first."""
    rows = sorted(dist.items(), key=lambda kv: -kv[1])[:top]
    return format_table(
        [f"size ({unit})", "fraction"],
        [(size, f"{frac * 100:.1f}%") for size, frac in rows],
    )


def fault_report(result) -> str:
    """Render a run's fault windows, recovery counters and tail latencies.

    ``result`` is a :class:`repro.analysis.metrics.RunResult`; on a
    fault-free run the report says so in one line.
    """
    from .metrics import LatencyStats

    if not result.fault_events:
        return "no faults injected"
    lines = []
    rows = []
    for w in result.fault_windows():
        inside = result.window_latencies(w)
        stats = LatencyStats.from_latencies(inside)
        rows.append([
            w.kind,
            "all" if w.server is None else w.server,
            round(w.start, 4),
            "(end of run)" if w.end is None else round(w.end, 4),
            stats.count,
            round(result.window_slowdown(w), 2),
            round(stats.p95 * 1e3, 3),
            round(stats.p99 * 1e3, 3),
        ])
    lines.append(format_table(
        ["fault", "server", "start", "end", "reqs in window",
         "slowdown x", "p95 (ms)", "p99 (ms)"],
        rows, title="Fault windows"))
    base = LatencyStats.from_latencies(result.baseline_latencies())
    lines.append(f"fault-free baseline: {base.count} requests, "
                 f"p95 {base.p95 * 1e3:.3f} ms, p99 {base.p99 * 1e3:.3f} ms")
    if result.recovery:
        kv = "  ".join(f"{k}={v}" for k, v in sorted(result.recovery.items())
                       if v)
        lines.append(f"recovery: {kv or 'no recovery action needed'}")
    return "\n".join(lines)
