"""Plain-text table formatting for experiment outputs.

Experiments print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_histogram(dist: dict, unit: str = "sectors", top: int = 10) -> str:
    """Render a size→fraction distribution, largest fractions first."""
    rows = sorted(dist.items(), key=lambda kv: -kv[1])[:top]
    return format_table(
        [f"size ({unit})", "fraction"],
        [(size, f"{frac * 100:.1f}%") for size, frac in rows],
    )
