"""Run-level metrics: throughput, latency statistics, service times."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..devices.base import Op
from ..pfs.messages import ParentRequest
from ..units import MiB


@dataclass
class LatencyStats:
    """Summary statistics over a set of request latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        if not latencies:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(latencies, dtype=np.float64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


@dataclass
class FaultWindow:
    """One applied-and-reverted fault interval of a run."""

    kind: str
    start: float
    end: Optional[float]        # None: the fault lasted to the end of run
    server: Optional[int] = None

    def contains(self, t: float) -> bool:
        return t >= self.start and (self.end is None or t <= self.end)


@dataclass
class RunResult:
    """Everything an experiment needs from one simulated run."""

    name: str
    makespan: float                      # seconds of simulated I/O time
    total_bytes: int
    requests: List[ParentRequest] = field(default_factory=list)
    #: Fraction of payload served from SSDs (0 without iBridge).
    ssd_fraction: float = 0.0
    #: Optional extra key figures an experiment wants to carry along.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Injected fault transitions (``repro.faults`` injector records as
    #: dicts: time, phase, event, detail), empty on fault-free runs.
    fault_events: List[Dict] = field(default_factory=list)
    #: Recovery counters (client retries/timeouts, dropped messages,
    #: forfeited bytes, crashes...), empty on fault-free runs.
    recovery: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mib_s(self) -> float:
        """Aggregate application throughput in MiB/s."""
        if self.makespan <= 0:
            return 0.0
        return self.total_bytes / MiB / self.makespan

    def latencies(self, op: Optional[Op] = None) -> List[float]:
        return [r.latency for r in self.requests
                if r.latency is not None and (op is None or r.op is op)]

    def latency_stats(self, op: Optional[Op] = None) -> LatencyStats:
        return LatencyStats.from_latencies(self.latencies(op))

    @property
    def mean_service_time(self) -> float:
        """Mean request completion latency (Table III's metric)."""
        lats = self.latencies()
        return float(np.mean(lats)) if lats else 0.0

    # ------------------------------------------------------------- faults
    def fault_windows(self) -> List[FaultWindow]:
        """Pair ``begin``/``end`` transitions into fault intervals.

        A window whose fault never reverted (whole-run faults, or a run
        that ended first) has ``end=None``.
        """
        windows: List[FaultWindow] = []
        open_idx: Dict[str, List[int]] = {}

        def key(rec: Dict) -> str:
            event = dict(rec.get("event") or {})
            return repr(sorted(event.items()))

        for rec in self.fault_events:
            k = key(rec)
            event = rec.get("event") or {}
            if rec["phase"] == "begin":
                windows.append(FaultWindow(kind=event.get("kind", "?"),
                                           start=rec["time"], end=None,
                                           server=event.get("server")))
                open_idx.setdefault(k, []).append(len(windows) - 1)
            else:
                stack = open_idx.get(k)
                if stack:
                    windows[stack.pop(0)].end = rec["time"]
        return windows

    def window_latencies(self, window: FaultWindow,
                         op: Optional[Op] = None) -> List[float]:
        """Latencies of requests *completing* inside ``window``."""
        return [r.latency for r in self.requests
                if r.latency is not None and (op is None or r.op is op)
                and r.complete_time is not None
                and window.contains(r.complete_time)]

    def baseline_latencies(self, op: Optional[Op] = None) -> List[float]:
        """Latencies of requests completing outside every fault window."""
        windows = self.fault_windows()
        return [r.latency for r in self.requests
                if r.latency is not None and (op is None or r.op is op)
                and r.complete_time is not None
                and not any(w.contains(r.complete_time) for w in windows)]

    def window_slowdown(self, window: FaultWindow) -> float:
        """Mean in-window latency over mean fault-free latency (>= 0).

        Returns 0.0 when either side has no completions to compare.
        """
        inside = self.window_latencies(window)
        outside = self.baseline_latencies()
        if not inside or not outside:
            return 0.0
        base = float(np.mean(outside))
        return float(np.mean(inside)) / base if base > 0 else 0.0


def improvement(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    Positive when ``improved`` is larger (e.g. throughput gains).
    """
    if baseline <= 0:
        return 0.0
    return (improved - baseline) / baseline * 100.0


def reduction(baseline: float, reduced: float) -> float:
    """Percentage reduction of ``reduced`` vs ``baseline`` (times, costs)."""
    if baseline <= 0:
        return 0.0
    return (baseline - reduced) / baseline * 100.0
