"""Export experiment results to machine-readable formats (CSV/JSON).

The experiment modules print human-readable tables; downstream plotting
or regression tooling wants the raw rows.  These helpers serialize an
:class:`~repro.experiments.common.ExperimentResult` without the
experiments package importing anything heavy.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def result_to_csv(result) -> str:
    """The result's table as CSV text (headers + rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(result.headers))
    for row in result.rows:
        writer.writerow(list(row))
    return buf.getvalue()


def result_to_json(result) -> str:
    """The result as JSON: metadata, table, and keyed values."""
    payload = {
        "name": result.name,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
        # Tuple keys are not JSON-representable; flatten to "row/col".
        "values": {f"{rk}/{ck}": v for (rk, ck), v in result.values.items()},
    }
    return json.dumps(payload, indent=2, default=str)


def save_result(result, path: PathLike) -> None:
    """Write the result to ``path``; format chosen by suffix
    (``.csv`` or ``.json``)."""
    p = Path(path)
    if p.suffix == ".csv":
        p.write_text(result_to_csv(result))
    elif p.suffix == ".json":
        p.write_text(result_to_json(result))
    else:
        raise ValueError(f"unsupported export suffix {p.suffix!r} "
                         f"(use .csv or .json)")
