"""Metrics, reporting and export helpers."""

from .export import result_to_csv, result_to_json, save_result
from .metrics import LatencyStats, RunResult, improvement, reduction
from .report import format_histogram, format_table

__all__ = [
    "RunResult",
    "LatencyStats",
    "improvement",
    "reduction",
    "format_table",
    "format_histogram",
    "result_to_csv",
    "result_to_json",
    "save_result",
]
