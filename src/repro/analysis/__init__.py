"""Metrics, reporting and export helpers."""

from .export import result_to_csv, result_to_json, save_result
from .metrics import (FaultWindow, LatencyStats, RunResult, improvement,
                      reduction)
from .report import fault_report, format_histogram, format_table

__all__ = [
    "RunResult",
    "LatencyStats",
    "FaultWindow",
    "improvement",
    "reduction",
    "format_table",
    "format_histogram",
    "fault_report",
    "result_to_csv",
    "result_to_json",
    "save_result",
]
