"""Size and time units used throughout the reproduction.

All sizes are plain integers in **bytes** and all times are floats in
**seconds**.  The paper reports sizes in KB (meaning KiB: the 64KB PVFS2
striping unit is 65536 bytes) and block-level request sizes in 512-byte
sectors; these constants keep call sites readable.
"""

from __future__ import annotations

#: Bytes per kibibyte.  The paper's "KB" is binary (64KB stripe = 65536 B).
KiB: int = 1024
#: Bytes per mebibyte.
MiB: int = 1024 * KiB
#: Bytes per gibibyte.
GiB: int = 1024 * MiB

#: Disk sector size used by the paper's blktrace histograms (0.5 KB).
SECTOR: int = 512

#: One millisecond / microsecond, in seconds.
MS: float = 1e-3
US: float = 1e-6


def to_sectors(nbytes: int) -> int:
    """Convert a byte count to whole 512-byte sectors (rounding up)."""
    return -(-int(nbytes) // SECTOR)


def mib_per_s(nbytes: float, seconds: float) -> float:
    """Throughput in MiB/s for ``nbytes`` moved in ``seconds``.

    Returns 0.0 for a degenerate (zero or negative) duration so that
    report code never divides by zero on empty runs.
    """
    if seconds <= 0.0:
        return 0.0
    return nbytes / float(MiB) / seconds


def fmt_size(nbytes: int) -> str:
    """Human-readable size string (binary units), e.g. ``'64KiB'``."""
    n = float(nbytes)
    for suffix, unit in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= unit:
            value = n / unit
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    return f"{int(n)}B"
