"""Log-structured allocation on the SSD partition.

The paper writes redirected data "sequentially into a pre-created large
file that is maintained much like a log-based file system", because
sequential SSD writes are ~4.7x faster than random ones (Table II).

The log region is divided into fixed-size segments.  Appends fill the
current segment; when free segments run low, a greedy cleaner picks the
segment with the least live data and relocates its live extents (the
manager charges the SSD for the copy traffic).  Live-byte accounting is
driven by the cache layer calling :meth:`invalidate` when entries are
dropped or superseded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError


@dataclass
class Segment:
    """One log segment's accounting."""

    index: int
    start: int
    size: int
    write_cursor: int = 0
    live_bytes: int = 0

    @property
    def free(self) -> int:
        return self.size - self.write_cursor

    @property
    def garbage(self) -> int:
        return self.write_cursor - self.live_bytes


class LogStore:
    """Segmented append-only allocator over ``[base, base + region)``."""

    def __init__(self, base: int, region: int, segment_size: int = 32 * 1024 * 1024) -> None:
        if region <= 0:
            raise StorageError("log region must be positive")
        if segment_size <= 0 or segment_size > region:
            raise StorageError("invalid segment size")
        self.base = base
        self.region = region
        self.segment_size = segment_size
        nseg = region // segment_size
        if nseg < 2:
            raise StorageError("log region must hold at least 2 segments")
        self.segments = [Segment(i, base + i * segment_size, segment_size)
                         for i in range(nseg)]
        self._current: Optional[Segment] = self.segments[0]
        self._free: List[Segment] = list(self.segments[1:])
        #: lbn -> (segment_index, nbytes) for live extents.
        self._extents: Dict[int, Tuple[int, int]] = {}
        self.appends = 0
        self.cleanings = 0

    # ------------------------------------------------------------- state
    @property
    def live_bytes(self) -> int:
        return sum(s.live_bytes for s in self.segments)

    @property
    def free_segments(self) -> int:
        return len(self._free)

    def needs_cleaning(self, reserve: int = 1) -> bool:
        """True when fewer than ``reserve`` whole free segments remain."""
        return len(self._free) < reserve

    # ------------------------------------------------------------- append
    def can_append(self, nbytes: int) -> bool:
        if nbytes <= 0 or nbytes > self.segment_size:
            return False
        cur = self._current
        if cur is not None and cur.free >= nbytes:
            return True
        if cur is not None and cur.live_bytes == 0 and cur.write_cursor > 0:
            return True  # fully-dead current is recycled in place
        return bool(self._free)

    def append(self, nbytes: int) -> int:
        """Allocate ``nbytes`` at the log head; returns the SSD LBN."""
        if nbytes <= 0:
            raise StorageError(f"append size must be positive, got {nbytes}")
        if nbytes > self.segment_size:
            raise StorageError(
                f"append of {nbytes} exceeds segment size {self.segment_size}")
        if self._current is None or self._current.free < nbytes:
            # Rotation re-checks the current segment first: a current
            # segment fully invalidated *in place* (``invalidate`` skips
            # ``seg is self._current``) is pure garbage, so it is
            # recycled here instead of lingering unreclaimed while a
            # fresh segment is popped from the free list.
            cur = self._current
            if (cur is not None and cur.live_bytes == 0
                    and cur.write_cursor > 0):
                cur.write_cursor = 0
            else:
                if not self._free:
                    raise StorageError("log store out of free segments (clean first)")
                self._current = self._free.pop(0)
        seg = self._current
        lbn = seg.start + seg.write_cursor
        seg.write_cursor += nbytes
        seg.live_bytes += nbytes
        self._extents[lbn] = (seg.index, nbytes)
        self.appends += 1
        return lbn

    def invalidate(self, lbn: int) -> None:
        """Mark the extent at ``lbn`` dead (dropped or superseded)."""
        info = self._extents.pop(lbn, None)
        if info is None:
            raise StorageError(f"invalidate of unknown log extent at {lbn}")
        seg_idx, nbytes = info
        seg = self.segments[seg_idx]
        seg.live_bytes -= nbytes
        if seg.live_bytes == 0 and seg is not self._current:
            seg.write_cursor = 0
            if seg not in self._free:
                self._free.append(seg)

    # ------------------------------------------------------------- cleaning
    def pick_victim(self) -> Optional[Segment]:
        """The fullest-of-garbage candidate segment to clean, if any."""
        candidates = [s for s in self.segments
                      if s is not self._current and s not in self._free
                      and s.write_cursor > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.garbage)

    def live_extents_in(self, segment: Segment) -> List[Tuple[int, int]]:
        """(lbn, nbytes) of live extents inside ``segment``."""
        return [(lbn, nbytes) for lbn, (idx, nbytes) in self._extents.items()
                if idx == segment.index]

    def relocate(self, lbn: int) -> int:
        """Move a live extent to the log head; returns its new LBN.

        Invalidate-aware: the source extent is taken off the books
        *before* the new copy is allocated.  The old append-then-
        invalidate order transiently double-counted ``live_bytes`` and,
        worse, could exhaust the free list mid-cleaning (the copy
        claimed the reserve segment while the source's bytes were still
        counted live), raising "out of free segments" from inside the
        cleaner itself.  The source segment is deliberately *not*
        returned to the free list even when this drains its last live
        extent — the cleaner owns the victim and recycles it via
        :meth:`release_victim`.
        """
        info = self._extents.pop(lbn, None)
        if info is None:
            raise StorageError(f"relocate of unknown log extent at {lbn}")
        seg_idx, nbytes = info
        src = self.segments[seg_idx]
        src.live_bytes -= nbytes
        try:
            new_lbn = self.append(nbytes)
        except StorageError:
            # Leave the log exactly as found so a failed relocation is
            # observable but not corrupting.
            src.live_bytes += nbytes
            self._extents[lbn] = info
            raise
        return new_lbn

    def release_victim(self, segment: Segment) -> None:
        """Return a fully-cleaned segment to the free list."""
        if segment.live_bytes != 0:
            raise StorageError("victim still has live data")
        segment.write_cursor = 0
        if segment not in self._free and segment is not self._current:
            self._free.append(segment)
        self.cleanings += 1
