"""iBridge's dynamic service-time model (paper Eqs. 1–3).

Each data server tracks the exponentially-weighted average service time
``T`` of requests *served by its disk*:

    T_i = T_{i-1} / 8 + (D_to_T(λ_i − λ_{i-1}) + R + Size_i / B) * 7/8   (Eq. 1)

Requests redirected to the SSD leave ``T`` unchanged (Eq. 2).  The
*return* of redirecting request ``i`` is ``T_i^disk − T_i^ssd``; when it
is positive, serving the request at the disk would slow the disk down,
so iBridge sends it to the SSD.

For a fragment whose disk currently has the largest ``T`` among the
servers holding its siblings, the return gains the striping
magnification term ``(T^max − T^sec_max) * n`` (Eq. 3).

Two return policies are provided (see :class:`repro.config.ReturnPolicy`):
the literal per-request form, and a per-striping-unit normalized form
matching the paper's disk-efficiency intent.  DESIGN.md §5 discusses
why the literal form does not bootstrap in a mixed stream; the
normalized form is the default and the ablation bench quantifies the
difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..config import IBridgeConfig, ReturnPolicy
from ..devices.base import Op
from ..devices.profiling import SeekProfile


class DiskServiceModel:
    """Tracks ``T`` for one disk and evaluates redirection returns."""

    def __init__(self, profile: SeekProfile, read_bw: float, write_bw: float,
                 stripe_unit: int, config: IBridgeConfig) -> None:
        self.profile = profile
        self.read_bw = read_bw
        self.write_bw = write_bw
        self.stripe_unit = stripe_unit
        self.config = config
        # Initialize T to the ideal (streaming) time of one striping
        # unit: an unloaded disk is presumed efficient until observed
        # otherwise.
        self._t = stripe_unit / read_bw
        self.samples = 0
        # Fail-slow visibility: the paper's Eq. 1 averages *measured*
        # service times, so a degraded disk's T rises on its own.  Our
        # samples are profile estimates instead, so the fault injector
        # mirrors any active device slowdown here (repro.faults applies
        # and clears these alongside the FaultableDevice multipliers).
        self._pos_scale = 1.0
        self._bw_scale = 1.0

    @property
    def t_value(self) -> float:
        """The current average service time ``T_i``."""
        return self._t

    def set_degradation(self, pos_scale: float = 1.0,
                        bw_scale: float = 1.0) -> None:
        """Scale future samples as a fail-slow device would measure."""
        self._pos_scale = float(pos_scale)
        self._bw_scale = float(bw_scale)

    def clear_degradation(self) -> None:
        self.set_degradation(1.0, 1.0)

    def _raw_sample(self, op: Op, lbn: int, nbytes: int, head: int) -> float:
        """Eq. 1's bracketed term: positioning + transfer estimate."""
        distance = abs(lbn - head)
        pos = self.profile.positioning(distance, is_write=op.is_write)
        bw = self.write_bw if op.is_write else self.read_bw
        return pos * self._pos_scale + (nbytes / bw) * self._bw_scale

    def sample(self, op: Op, lbn: int, nbytes: int, head: int) -> float:
        """Policy-adjusted sample for a candidate disk service."""
        raw = self._raw_sample(op, lbn, nbytes, head)
        if self.config.return_policy is ReturnPolicy.EFFICIENCY:
            # Normalize to the time the disk would spend per striping
            # unit of payload, so tiny requests that consume a full
            # positioning delay register as inefficient.
            return raw * (self.stripe_unit / nbytes)
        return raw

    def observe_disk(self, op: Op, lbn: int, nbytes: int, head: int) -> float:
        """Update ``T`` for a request being served at the disk (Eq. 1)."""
        s = self.sample(op, lbn, nbytes, head)
        self._t = (self.config.ewma_old_weight * self._t
                   + self.config.ewma_new_weight * s)
        self.samples += 1
        return self._t

    def observe_ssd(self) -> float:
        """Eq. 2: a request served at the SSD leaves ``T`` unchanged."""
        return self._t

    def base_return(self, op: Op, lbn: int, nbytes: int, head: int) -> float:
        """``T_i^ret = T_i^disk − T_i^ssd`` for serving at the SSD."""
        s = self.sample(op, lbn, nbytes, head)
        t_disk = (self.config.ewma_old_weight * self._t
                  + self.config.ewma_new_weight * s)
        return t_disk - self._t  # == ewma_new_weight * (s - T)


@dataclass(frozen=True)
class TReport:
    """One server's broadcast T value."""

    server: int
    t_value: float
    time: float


class GlobalTTable:
    """The per-server view of every disk's current ``T``.

    Populated by the metadata server's periodic broadcast; deliberately
    stale by up to one report period, as in the paper.
    """

    def __init__(self) -> None:
        self._table: Dict[int, TReport] = {}

    def update(self, report: TReport) -> None:
        self._table[report.server] = report

    def update_many(self, reports: Iterable[TReport]) -> None:
        for r in reports:
            self.update(r)

    def get(self, server: int) -> Optional[float]:
        rep = self._table.get(server)
        return rep.t_value if rep else None

    def known_servers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._table))

    def max_and_second(self, servers: Iterable[int]) -> Tuple[float, float, Optional[int]]:
        """(T^max, T^sec_max, argmax server) over ``servers`` with known T.

        Missing servers are skipped; with fewer than two known values
        the second maximum falls back to the maximum (zero sibling term).
        """
        best_t, best_s = -math.inf, None
        second = -math.inf
        for s in servers:
            t = self.get(s)
            if t is None:
                continue
            if t > best_t:
                second = best_t
                best_t, best_s = t, s
            elif t > second:
                second = t
        if best_s is None:
            return 0.0, 0.0, None
        if second == -math.inf:
            second = best_t
        return best_t, second, best_s


def fragment_return(base: float, this_server: int, this_t: float,
                    sibling_servers: Iterable[int], n_siblings: int,
                    table: GlobalTTable, enabled: bool = True) -> float:
    """Apply Eq. 3's striping magnification term to a fragment's return.

    If this server's ``T`` is the largest among the disks holding the
    fragment's siblings, the fragment gates its parent request and the
    return grows by ``(T^max − T^sec_max) * n``.

    This server's own ``T`` is always the live ``this_t`` — never its
    (possibly stale) broadcast entry — so ``this_server`` is removed
    from the sibling set before consulting the table: when we are the
    slowest, ``T^max`` is ``this_t`` and ``T^sec_max`` is the maximum
    over the *other* servers.  A stale self-report must neither inflate
    the term (old high value) nor zero it (old value shadowing the true
    second maximum).
    """
    if not enabled or n_siblings <= 0:
        return base
    others = [s for s in dict.fromkeys(sibling_servers) if s != this_server]
    other_max, _other_sec, other_argmax = table.max_and_second(others)
    if other_argmax is None:
        # No sibling has a known T yet: we cannot claim to gate anyone.
        return base
    if this_t < other_max:
        # Some sibling's disk is slower; it gates the parent, not us.
        return base
    return base + (this_t - other_max) * n_siblings
