"""The iBridge mapping table: cached server-file extents on the SSD.

Records which (handle, local-offset) ranges are present in the SSD log,
whether they are dirty (newest copy lives only on the SSD) or clean
(pre-loaded for reads), which request type admitted them, and the
return value recorded at admission (used for dynamic partitioning).

Entries are atomic: an overlapping overwrite invalidates the whole
affected entry rather than splitting it.  The paper backs this table up
on the SSD; we charge a small metadata write alongside dirty-entry
updates in the manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

from ..errors import StorageError
from ..util.intervals import IntervalMap

_entry_ids = itertools.count(1)


class CacheKind(str, Enum):
    """The two SSD-space consumer classes the paper partitions between."""

    RANDOM = "random"
    FRAGMENT = "fragment"


@dataclass
class CacheEntry:
    """One cached extent of a server-local file."""

    handle: int
    start: int          # server-local file offset
    end: int
    ssd_lbn: int        # location in the SSD log
    kind: CacheKind
    dirty: bool
    ret: float          # return value at admission (Eq. 1/3)
    last_use: float
    id: int = field(default_factory=lambda: next(_entry_ids))
    #: Set while a writeback / relocation is in flight.
    busy: bool = False
    #: Set when an SSD fail-stop forfeited this entry's dirty bytes; an
    #: in-flight writeback that completes afterwards must not account
    #: the entry again (see ``IBridgeManager._flush_batch``).
    forfeited: bool = False

    @property
    def nbytes(self) -> int:
        return self.end - self.start


class MappingTable:
    """Per-handle interval maps of :class:`CacheEntry`."""

    def __init__(self) -> None:
        self._maps: Dict[int, IntervalMap] = {}
        self._entries: Dict[int, CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[CacheEntry, ...]:
        return tuple(self._entries.values())

    def _map(self, handle: int) -> IntervalMap:
        m = self._maps.get(handle)
        if m is None:
            m = IntervalMap()
            self._maps[handle] = m
        return m

    def insert(self, entry: CacheEntry) -> None:
        """Add ``entry``; caller must have invalidated overlaps first."""
        m = self._map(entry.handle)
        if m.covered_bytes(entry.start, entry.end) != 0:
            raise StorageError("insert over existing cached range")
        m.set(entry.start, entry.end, entry)
        self._entries[entry.id] = entry

    def remove(self, entry: CacheEntry) -> None:
        """Drop ``entry`` from the table."""
        if entry.id not in self._entries:
            raise StorageError(f"remove of unknown entry {entry.id}")
        self._map(entry.handle).delete(entry.start, entry.end)
        del self._entries[entry.id]

    def overlapping(self, handle: int, start: int, end: int) -> List[CacheEntry]:
        """Distinct entries overlapping ``[start, end)``."""
        m = self._maps.get(handle)
        if m is None:
            return []
        seen: Dict[int, CacheEntry] = {}
        for _s, _e, entry, _d in m.get(start, end):
            seen[entry.id] = entry
        return list(seen.values())

    def coverage(self, handle: int, start: int, end: int) -> int:
        """Cached bytes within ``[start, end)``."""
        m = self._maps.get(handle)
        return m.covered_bytes(start, end) if m else 0

    def is_fully_cached(self, handle: int, start: int, end: int) -> bool:
        return self.coverage(handle, start, end) == end - start

    def pieces(self, handle: int, start: int,
               end: int) -> List[Tuple[int, int, CacheEntry, int]]:
        """Clipped cached pieces as (start, end, entry, delta)."""
        m = self._maps.get(handle)
        return m.get(start, end) if m else []

    def gaps(self, handle: int, start: int, end: int) -> List[Tuple[int, int]]:
        """Uncached sub-ranges of ``[start, end)``."""
        m = self._maps.get(handle)
        if m is None:
            return [(start, end)]
        return m.gaps(start, end)

    def dirty_entries(self) -> List[CacheEntry]:
        """All dirty, non-busy entries (writeback candidates)."""
        return [e for e in self._entries.values() if e.dirty and not e.busy]

    @property
    def dirty_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values() if e.dirty)
