"""iBridge: the paper's primary contribution.

Client-side fragment identification lives in ``repro.pfs.client``; this
package holds the server-side machinery: the service-time model of
Eqs. 1–3, the SSD mapping table, the log-structured SSD store, the
dynamic partition manager, and the per-server manager that ties them to
the block queues.
"""

from .logstore import LogStore, Segment
from .manager import BACKGROUND_STREAM, IBridgeManager, IBridgeStats
from .mapping import CacheEntry, CacheKind, MappingTable
from .partition import PartitionManager
from .service_model import (DiskServiceModel, GlobalTTable, TReport,
                            fragment_return)

__all__ = [
    "IBridgeManager",
    "IBridgeStats",
    "BACKGROUND_STREAM",
    "DiskServiceModel",
    "GlobalTTable",
    "TReport",
    "fragment_return",
    "MappingTable",
    "CacheEntry",
    "CacheKind",
    "PartitionManager",
    "LogStore",
    "Segment",
]
