"""The per-server iBridge manager.

Sits between the PVFS2 job layer and the block queues of the server's
disk and SSD.  For every incoming sub-request it:

1. classifies it (fragment / regular random / large),
2. evaluates the return of SSD redirection (Eqs. 1–3) against the
   disk's tracked service-time average and the cluster-wide T table,
3. serves it from the SSD log (writes), the SSD cache (read hits), or
   the disk (everything else), keeping disk and SSD copies coherent,
4. runs the background machinery: read-miss admission copies when the
   SSD is idle, dirty-data writeback to the disk in long sorted runs
   when the disk is idle, and log-segment cleaning.

All byte movement is charged to the device queues; the manager never
moves real data (this is a timing simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..block.queue import BlockQueue
from ..config import ClusterConfig
from ..devices.base import Op
from ..devices.profiling import SeekProfile
from ..errors import StorageError
from ..localfs.store import LocalStore
from ..pfs.messages import SubRequest
from ..sim import Environment, Store
from .logstore import LogStore
from .mapping import CacheEntry, CacheKind, MappingTable
from .partition import PartitionManager
from .service_model import DiskServiceModel, GlobalTTable, fragment_return

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..audit.runtime import AuditRuntime

#: Stream id used for background (writeback/fill/cleaning) disk and SSD
#: traffic, so CFQ sees the flusher as one sequential-friendly stream.
BACKGROUND_STREAM = -1

#: Bytes charged per dirty mapping-table entry persisted with a write
#: (the paper persists dirty table entries on the SSD immediately).
TABLE_ENTRY_BYTES = 512


@dataclass
class IBridgeStats:
    """Counters the experiments report on."""

    sub_requests: int = 0
    ssd_redirected_writes: int = 0
    ssd_read_hits: int = 0
    disk_served: int = 0
    fragments_seen: int = 0
    randoms_seen: int = 0
    bytes_from_ssd: int = 0
    bytes_from_disk: int = 0
    #: Readahead-extension bytes the disk transferred beyond the payload
    #: (see ``_round_gap``).  Kept separate so ``ssd_fraction`` compares
    #: payload against payload.
    readahead_bytes: int = 0
    writeback_bytes: int = 0
    fill_bytes: int = 0
    rejected_admissions: int = 0
    negative_returns: int = 0
    #: Dirty payload bytes lost to SSD fail-stop (hard failure forfeits
    #: the newest copy; the disk keeps serving its stale-but-valid data).
    forfeited_bytes: int = 0
    #: SSD fail-stop windows this manager rode out in degraded mode.
    ssd_outages: int = 0

    @property
    def ssd_fraction(self) -> float:
        """Fraction of payload bytes served at the SSD."""
        total = self.bytes_from_ssd + self.bytes_from_disk
        return self.bytes_from_ssd / total if total else 0.0


class IBridgeManager:
    """Server-side iBridge logic for one data server."""

    def __init__(self, env: Environment, server_id: int, config: ClusterConfig,
                 hdd_queue: BlockQueue, ssd_queue: BlockQueue,
                 disk_store: LocalStore, profile: SeekProfile,
                 t_table: Optional[GlobalTTable] = None,
                 partition_bytes: Optional[int] = None,
                 log_base: int = 0,
                 audit: Optional["AuditRuntime"] = None) -> None:
        """One manager per disk.

        With multiple disks per server (the paper's §II extension), each
        disk gets its own manager sharing the server's SSD: pass each a
        ``partition_bytes`` slice of the SSD partition and a disjoint
        ``log_base`` so their log regions do not collide.
        """
        self.env = env
        self.server_id = server_id
        self.config = config
        self.ib = config.ibridge
        self.hdd_queue = hdd_queue
        self.ssd_queue = ssd_queue
        self.disk_store = disk_store
        self.t_table = t_table if t_table is not None else GlobalTTable()
        partition = (partition_bytes if partition_bytes is not None
                     else self.ib.ssd_partition)
        self.model = DiskServiceModel(
            profile,
            read_bw=config.hdd.seq_read_bw,
            write_bw=config.hdd.seq_write_bw,
            stripe_unit=config.stripe_unit,
            config=self.ib,
        )
        self.mapping = MappingTable()
        self.partition = PartitionManager(partition, self.ib)
        self._log: Optional[LogStore] = None
        if partition > 0:
            region = min(config.ssd.capacity - log_base,
                         max(2, partition * 2))
            # Segments must hold the largest admissible entry (data +
            # persisted table entry), and the region at least 2 segments.
            seg_floor = (max(self.ib.fragment_threshold,
                             self.ib.random_threshold) + TABLE_ENTRY_BYTES)
            seg = min(32 * 1024 * 1024, max(seg_floor, region // 8))
            if region >= 2 * seg:
                self._log = LogStore(base=log_base, region=region,
                                     segment_size=seg)
        self._by_lbn: Dict[int, CacheEntry] = {}
        self._fill_tasks: Store = Store(env)
        self.stats = IBridgeStats()
        #: False while the server's SSD is failed: the manager bypasses
        #: the SSD entirely (degraded mode) until :meth:`ssd_restore`.
        self.ssd_available = True
        # LogStore rebuild parameters for SSD replacement (ssd_restore).
        self._log_params = (None if self._log is None else
                            (self._log.base, self._log.region,
                             self._log.segment_size))
        #: Invariant auditor (None unless the run enables auditing).
        self.audit = audit.attach_manager(self) if audit is not None else None
        #: Observability tracer / metrics registry (wired by the
        #: cluster's ObsRuntime; None on untraced runs — every
        #: instrumented site below guards on that).
        self.obs = None
        self.metrics = None
        self._shutdown = False
        env.process(self._writeback_daemon(), name=f"ib{server_id}-writeback")
        env.process(self._fill_daemon(), name=f"ib{server_id}-fill")

    # =================================================== classification
    def _classify(self, sub: SubRequest) -> Optional[CacheKind]:
        """Which SSD-candidate class a sub-request falls in, if any."""
        if sub.is_fragment and sub.nbytes < self.ib.fragment_threshold:
            return CacheKind.FRAGMENT
        if sub.is_random and sub.nbytes < self.ib.random_threshold:
            return CacheKind.RANDOM
        return None

    def _return_value(self, sub: SubRequest, kind: CacheKind,
                      op: Op) -> float:
        """Eq. 1/3 return of serving ``sub`` at the SSD."""
        ranges = (self.disk_store.ranges_for_write(sub.handle, sub.local_offset,
                                                   sub.nbytes)
                  if op.is_write else
                  self.disk_store.ranges_for_read(sub.handle, sub.local_offset,
                                                  sub.nbytes))
        lbn = ranges[0][0]
        base = self.model.base_return(op, lbn, sub.nbytes,
                                      self.hdd_queue.device.head)
        if kind is CacheKind.FRAGMENT:
            return fragment_return(
                base, self.server_id, self.model.t_value,
                sub.sibling_servers, len(sub.sibling_servers),
                self.t_table, enabled=self.ib.use_sibling_term)
        return base

    # =================================================== main entry point
    def handle(self, sub: SubRequest, span=None):
        """Serve one sub-request; generator completing when data moved.

        ``span`` is the server job span of a traced run; the manager
        opens its own child span carrying the admission decision
        (classification, Eq. 1/3 return, route taken) as attributes.
        """
        self.stats.sub_requests += 1
        if sub.is_fragment:
            self.stats.fragments_seen += 1
        if sub.is_random:
            self.stats.randoms_seen += 1
        obs = self.obs
        mspan = None
        if obs is not None and span is not None:
            mspan = obs.start(
                "ibridge.write" if sub.op is Op.WRITE else "ibridge.read",
                "server", span.trace_id, self.env.now, parent=span,
                server=self.server_id, fragment=sub.is_fragment,
                random=sub.is_random)
        if sub.op is Op.WRITE:
            yield from self._handle_write(sub, mspan)
        else:
            yield from self._handle_read(sub, mspan)
        if mspan is not None:
            obs.finish(mspan, self.env.now)

    # =================================================== write path
    def _handle_write(self, sub: SubRequest, span=None):
        if self.audit:
            self.audit.note_client_write(sub.nbytes)
        kind = self._classify(sub)
        if kind is not None and self._log is not None and self.ssd_available:
            ret = self._return_value(sub, kind, Op.WRITE)
            self._observe_benefit(kind, Op.WRITE, ret)
            if span is not None:
                span.annotate(kind=kind.name.lower(), ret=ret)
            if ret > 0 and self.partition.admissible(kind, sub.nbytes):
                ok = yield from self._make_room(kind, sub.nbytes)
                if ok:
                    yield from self._ssd_write(sub, kind, ret, span)
                    return
                self.stats.rejected_admissions += 1
            elif ret <= 0:
                self.stats.negative_returns += 1
        yield from self._disk_write(sub, span)

    def _observe_benefit(self, kind: CacheKind, op: Op, ret: float) -> None:
        """Feed an Eq. 1/3 return value into the metrics histogram."""
        metrics = self.metrics
        if metrics is not None:
            from ..obs.metrics import BENEFIT_BUCKETS
            metrics.histogram("ibridge_benefit", BENEFIT_BUCKETS,
                              server=self.server_id, op=op.value,
                              kind=kind.name.lower()).observe(ret)

    def _count_admission(self, kind: CacheKind, path: str) -> None:
        """Count one SSD admission (write redirect or read fill)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("ibridge_admissions", server=self.server_id,
                            kind=kind.name.lower(), path=path).inc()

    def _ssd_write(self, sub: SubRequest, kind: CacheKind, ret: float,
                   span=None):
        """Redirect a write into the SSD log."""
        # A write supersedes any cached data overlapping its range.
        yield from self._invalidate_overlaps(sub.handle, sub.local_offset,
                                             sub.local_end, flush_uncovered=True,
                                             new_start=sub.local_offset,
                                             new_end=sub.local_end)
        yield from self._clean_log_if_needed()
        # The invalidation/cleaning above yielded: concurrent admissions
        # may have refilled the class partition since ``_make_room``
        # said yes.  Re-check (and retry eviction once) before
        # committing, so the class can never over-commit its share.
        if not self.partition.fits(kind, sub.nbytes):
            ok = yield from self._make_room(kind, sub.nbytes)
            if not (ok and self.partition.fits(kind, sub.nbytes)):
                self.stats.rejected_admissions += 1
                yield from self._disk_write(sub, span)
                return
        # The mapping-table entry is persisted alongside the data, so the
        # log allocation includes it — keeping successive appends exactly
        # device-contiguous (zero setup cost on the SSD).
        payload = sub.nbytes + TABLE_ENTRY_BYTES
        if not self._log.can_append(payload):
            self.stats.rejected_admissions += 1
            yield from self._disk_write(sub, span)
            return
        lbn = self._log.append(payload)
        entry = CacheEntry(handle=sub.handle, start=sub.local_offset,
                           end=sub.local_end, ssd_lbn=lbn, kind=kind,
                           dirty=True, ret=ret, last_use=self.env.now)
        self.mapping.insert(entry)
        self.partition.add(entry)
        self._by_lbn[lbn] = entry
        if span is not None:
            span.annotate(route="ssd-log")
        req = self.ssd_queue.submit(Op.WRITE, lbn, payload, stream=sub.rank,
                                    obs_parent=span)
        self.model.observe_ssd()
        self.stats.ssd_redirected_writes += 1
        self.stats.bytes_from_ssd += sub.nbytes
        self._count_admission(kind, "write")
        if self.audit:
            self.audit.note_ssd_redirect(sub.nbytes)
            self.audit.check("ssd_write")
        yield req.done

    def _disk_write(self, sub: SubRequest, span=None):
        """Serve a write at the disk, keeping SSD cache coherent."""
        yield from self._invalidate_overlaps(sub.handle, sub.local_offset,
                                             sub.local_end, flush_uncovered=True,
                                             new_start=sub.local_offset,
                                             new_end=sub.local_end)
        ranges = self.disk_store.ranges_for_write(sub.handle, sub.local_offset,
                                                  sub.nbytes)
        self.model.observe_disk(Op.WRITE, ranges[0][0], sub.nbytes,
                                self.hdd_queue.device.head)
        if span is not None:
            span.annotate(route="disk")
        reqs = [self.hdd_queue.submit(Op.WRITE, lbn, size, stream=sub.rank,
                                      obs_parent=span)
                for lbn, size in ranges]
        self.stats.disk_served += 1
        self.stats.bytes_from_disk += sub.nbytes
        if self.audit:
            self.audit.note_disk_write(sub.nbytes)
        yield self.env.all_of([r.done for r in reqs])

    # =================================================== read path
    def _round_gap(self, handle: int, gs: int, ge: int) -> tuple:
        """Extend a disk read over cached holes to stripe boundaries.

        Models kernel readahead: the page cache reads whole aligned
        chunks, so the disk stream stays sequential even though iBridge
        serves the authoritative fragment bytes from the SSD (the
        paper's Fig. 5 shows exactly this: 128/256-sector dispatches
        despite sub-stripe disk pieces).  Only applied when the
        extension is backed by allocated file space.
        """
        unit = self.config.stripe_unit
        rs = (gs // unit) * unit
        re_ = -(-ge // unit) * unit
        if (rs, re_) == (gs, ge):
            return gs, ge
        # Readahead only ramps up under concurrent streaming; when the
        # disk is latency-bound (shallow queue) the extra transfer would
        # lengthen the critical path instead of enabling merges.
        if self.hdd_queue.pending < 2:
            return gs, ge
        # The extension bytes must themselves be SSD-cached (they are the
        # redirected fragments) and the rounded range disk-allocated —
        # otherwise the disk would read data nobody holds.
        left_ok = rs == gs or self.mapping.is_fully_cached(handle, rs, gs)
        right_ok = re_ == ge or self.mapping.is_fully_cached(handle, ge, re_)
        if not (left_ok and right_ok):
            return gs, ge
        if self.disk_store.is_allocated(handle, rs, re_ - rs):
            return rs, re_
        return gs, ge

    def _handle_read(self, sub: SubRequest, span=None):
        start, end = sub.local_offset, sub.local_end
        pieces = self.mapping.pieces(sub.handle, start, end)
        gaps = self.mapping.gaps(sub.handle, start, end)
        pending = []
        ssd_bytes = 0
        for ps, pe, entry, delta in pieces:
            pending.append(self.ssd_queue.submit(
                Op.READ, entry.ssd_lbn + delta, pe - ps, stream=sub.rank,
                obs_parent=span))
            self.partition.touch(entry, self.env.now)
            ssd_bytes += pe - ps

        disk_bytes = 0      # physical bytes the disk transfers
        payload_bytes = 0   # bytes of that belonging to the request
        first_disk_lbn: Optional[int] = None
        for gs0, ge0 in gaps:
            gs, ge = self._round_gap(sub.handle, gs0, ge0)
            payload_bytes += ge0 - gs0
            for lbn, size in self.disk_store.ranges_for_read(sub.handle, gs,
                                                             ge - gs):
                if first_disk_lbn is None:
                    first_disk_lbn = lbn
                pending.append(self.hdd_queue.submit(Op.READ, lbn, size,
                                                     stream=sub.rank,
                                                     obs_parent=span))
                disk_bytes += size

        if disk_bytes:
            # The service model sees the full transfer (the disk really
            # moves the extension bytes); the payload stats do not.
            self.model.observe_disk(Op.READ, first_disk_lbn, disk_bytes,
                                    self.hdd_queue.device.head)
            self.stats.disk_served += 1
        if ssd_bytes:
            self.model.observe_ssd()
            self.stats.ssd_read_hits += 1
        self.stats.bytes_from_ssd += ssd_bytes
        self.stats.bytes_from_disk += payload_bytes
        self.stats.readahead_bytes += disk_bytes - payload_bytes
        if span is not None:
            span.annotate(route=("ssd" if not disk_bytes else
                                 "disk" if not ssd_bytes else "mixed"),
                          ssd_bytes=ssd_bytes, disk_bytes=disk_bytes)
        if self.audit:
            self.audit.note_read(sub.nbytes, ssd_bytes, payload_bytes,
                                 disk_bytes - payload_bytes)

        if pending:
            yield self.env.all_of([r.done for r in pending])

        # Pre-loading: a miss by a redirection candidate with a positive
        # return is copied into the SSD later, when the device is idle.
        if (disk_bytes and self.ib.admit_reads and self._log is not None
                and self.ssd_available):
            kind = self._classify(sub)
            if kind is not None and self.partition.admissible(kind, sub.nbytes):
                ret = self._return_value(sub, kind, Op.READ)
                self._observe_benefit(kind, Op.READ, ret)
                if ret > 0:
                    self._fill_tasks.put((sub.handle, start, end, kind, ret))

    # =================================================== coherence helpers
    def _invalidate_overlaps(self, handle: int, start: int, end: int,
                             flush_uncovered: bool, new_start: int,
                             new_end: int):
        """Drop cached entries overlapping ``[start, end)``.

        Dirty entries extending beyond the new write's range hold the
        only up-to-date copy of those extra bytes, so they are flushed
        to disk before being dropped.
        """
        for entry in self.mapping.overlapping(handle, start, end):
            if entry.busy:
                # Wait for the in-flight writeback to finish; it will
                # leave the entry clean.
                while entry.busy:
                    yield self.env.timeout(self.ib.writeback_idle)
            if (entry.dirty and flush_uncovered
                    and (entry.start < new_start or entry.end > new_end)):
                yield from self._flush_entry(entry)
            self._drop_entry(entry)

    def _ssd_trim(self, lbn: int, nbytes: int) -> None:
        """Tell the SSD's FTL (when modelled) that an extent died.

        Log-store invalidations free *logical* log space; without the
        trim the FTL would keep treating the dead extent's flash pages
        as valid and copy them around during garbage collection,
        inflating write amplification beyond what the log's own
        occupancy justifies.
        """
        trim = getattr(self.ssd_queue.device, "trim", None)
        if trim is not None:
            trim(lbn, nbytes)

    def _drop_entry(self, entry: CacheEntry) -> None:
        self.mapping.remove(entry)
        self.partition.drop(entry)
        self._log.invalidate(entry.ssd_lbn)
        self._ssd_trim(entry.ssd_lbn, entry.nbytes + TABLE_ENTRY_BYTES)
        self._by_lbn.pop(entry.ssd_lbn, None)
        if self.audit:
            if entry.dirty:
                # A still-dirty drop means a newer write superseded the
                # bytes (uncovered parts were flushed beforehand).
                self.audit.note_superseded(entry.nbytes)
            self.audit.check("drop")

    def _flush_entry(self, entry: CacheEntry, stream: int = BACKGROUND_STREAM):
        """Copy a dirty entry's bytes from the SSD log to its disk home."""
        if not entry.dirty or entry.forfeited:
            return
        entry.busy = True
        read = self.ssd_queue.submit(Op.READ, entry.ssd_lbn, entry.nbytes,
                                     stream=stream)
        yield read.done
        if entry.forfeited:
            # An SSD fail-stop forfeited this entry while its log read
            # was in flight; its bytes are already accounted as lost.
            entry.busy = False
            return
        ranges = self.disk_store.ranges_for_write(entry.handle, entry.start,
                                                  entry.nbytes)
        self.model.observe_disk(Op.WRITE, ranges[0][0], entry.nbytes,
                                self.hdd_queue.device.head)
        writes = [self.hdd_queue.submit(Op.WRITE, lbn, size, stream=stream)
                  for lbn, size in ranges]
        yield self.env.all_of([w.done for w in writes])
        entry.busy = False
        if entry.forfeited:
            return
        entry.dirty = False
        self.stats.writeback_bytes += entry.nbytes
        if self.audit:
            self.audit.note_writeback(entry.nbytes)
            self.audit.check("writeback")

    # =================================================== space management
    def _make_room(self, kind: CacheKind, nbytes: int, max_attempts: int = 3):
        """Evict (flushing as needed) until ``nbytes`` fits; False if not.

        Flushing dirty victims yields to the simulation, so concurrent
        admissions may refill the partition while this runs.  The loop
        re-evaluates ``fits`` after every eviction pass and retries a
        bounded number of times rather than blindly reporting success —
        otherwise a class could over-commit its share under racing
        admissions.
        """
        for _ in range(max_attempts):
            if self.partition.fits(kind, nbytes):
                return True
            try:
                victims = self.partition.eviction_candidates(kind, nbytes)
            except StorageError:
                return False
            if not victims:
                # A concurrent eviction freed the space already.
                return True
            dirty_victims = [v for v in victims if v.dirty]
            if dirty_victims:
                yield from self._flush_batch(dirty_victims)
            live = {e.id for e in self.mapping.entries}
            for victim in victims:
                if victim.id in live:
                    self._drop_entry(victim)
        return self.partition.fits(kind, nbytes)

    #: Whole free segments the cleaner keeps in reserve.  Cleaning at
    #: ``reserve=2`` starts while one free segment still remains, so a
    #: victim's live data always fits in the current segment plus (at
    #: most) one rotation — the cleaner can never strand itself with
    #: zero free segments mid-relocation.
    CLEAN_RESERVE = 2

    def _clean_log_if_needed(self):
        """Greedy segment cleaning to keep free log space available."""
        log = self._log
        while log.needs_cleaning(reserve=self.CLEAN_RESERVE):
            victim = log.pick_victim()
            if victim is None or victim.garbage <= 0:
                # No candidate, or the best candidate is fully live:
                # cleaning it would copy a whole segment to reclaim
                # nothing — pure churn that can livelock the loop.
                return
            for lbn, size in log.live_extents_in(victim):
                entry = self._by_lbn.get(lbn)
                read = self.ssd_queue.submit(Op.READ, lbn, size,
                                             stream=BACKGROUND_STREAM)
                yield read.done
                new_lbn = log.relocate(lbn)
                self._ssd_trim(lbn, size)
                write = self.ssd_queue.submit(Op.WRITE, new_lbn, size,
                                              stream=BACKGROUND_STREAM)
                yield write.done
                if entry is not None:
                    del self._by_lbn[lbn]
                    entry.ssd_lbn = new_lbn
                    self._by_lbn[new_lbn] = entry
                if self.audit:
                    self.audit.check("clean")
            log.release_victim(victim)

    # =================================================== background daemons
    def _writeback_daemon(self):
        """Flush dirty data to disk during quiet device periods, in long
        sorted runs (the paper's idle-time writeback thread).

        The daemon waits until a worthwhile amount of dirty data has
        accumulated (one writeback batch) so each pass forms a long
        LBN-sorted sweep rather than scattering small repositioned
        writes through foreground traffic.
        """
        env = self.env
        poll = max(self.ib.writeback_idle, 1e-4)
        while True:
            yield env.timeout(poll)
            if self._shutdown:
                return
            if self.hdd_queue.idle_duration() < self.ib.writeback_idle:
                continue
            if self.mapping.dirty_bytes < self.ib.writeback_batch:
                continue
            yield from self._flush_some(self.mapping.dirty_entries())

    def _home_lbn(self, entry: CacheEntry) -> int:
        ranges = self.disk_store.ranges_for_write(entry.handle, entry.start,
                                                  entry.nbytes)
        return ranges[0][0]

    def _flush_some(self, dirty: List[CacheEntry]):
        """Flush up to ``writeback_batch`` bytes, sorted by disk home LBN.

        Entries larger than the *remaining* batch budget are skipped —
        not a stop condition: an oversized entry early in LBN order must
        not block every later entry, or ``flush_all`` livelocks.  When
        nothing fits the budget at all, the smallest flushable entry is
        written alone so each pass is guaranteed forward progress.
        """
        batch: List[CacheEntry] = []
        budget = self.ib.writeback_batch
        for entry in sorted(dirty, key=self._home_lbn):
            if not entry.dirty or entry.busy:
                continue
            if entry.nbytes > budget:
                continue
            batch.append(entry)
            budget -= entry.nbytes
        if not batch:
            flushable = [e for e in dirty if e.dirty and not e.busy]
            if flushable:
                batch = [min(flushable, key=lambda e: e.nbytes)]
        yield from self._flush_batch(batch)

    def _flush_batch(self, batch: List[CacheEntry]):
        """Pipelined flush of exactly ``batch`` (assumed dirty, idle)."""
        batch = [e for e in batch if e.dirty and not e.busy]
        batch.sort(key=self._home_lbn)
        if not batch:
            return
        # Pipeline the whole batch: read everything from the SSD log,
        # then submit all disk writes together so the elevator sees one
        # LBN-sorted burst and dispatches it as a (near-)sequential
        # sweep — "as many long sequential accesses as possible".
        for entry in batch:
            entry.busy = True
        reads = [self.ssd_queue.submit(Op.READ, e.ssd_lbn, e.nbytes,
                                       stream=BACKGROUND_STREAM)
                 for e in batch]
        yield self.env.all_of([r.done for r in reads])
        writes = []
        for entry in batch:
            for lbn, size in self.disk_store.ranges_for_write(
                    entry.handle, entry.start, entry.nbytes):
                writes.append(self.hdd_queue.submit(Op.WRITE, lbn, size,
                                                    stream=BACKGROUND_STREAM))
        if writes:
            self.model.observe_disk(Op.WRITE, writes[0].lbn,
                                    sum(w.nbytes for w in writes),
                                    self.hdd_queue.device.head)
            yield self.env.all_of([w.done for w in writes])
        for entry in batch:
            entry.busy = False
            if entry.forfeited:
                # Forfeited mid-flight by an SSD fail-stop: the bytes
                # were already accounted as lost, not written back.
                continue
            entry.dirty = False
            self.stats.writeback_bytes += entry.nbytes
            if self.audit:
                self.audit.note_writeback(entry.nbytes)
        if self.audit:
            self.audit.check("writeback_batch")

    def flush_all(self):
        """Synchronously flush every dirty entry (end-of-run accounting).

        The paper includes "the time for writing dirty data back to the
        hard disk after program termination" in all measurements.
        """
        while True:
            dirty = self.mapping.dirty_entries()
            if not dirty:
                busy = [e for e in self.mapping.entries if e.busy]
                if not busy:
                    return
                yield self.env.timeout(self.ib.writeback_idle)
                continue
            yield from self._flush_some(dirty)

    def _fill_daemon(self):
        """Copy read-miss candidate data into the SSD when idle."""
        env = self.env
        while True:
            task = yield self._fill_tasks.get()
            if not self.ssd_available:
                continue  # queued before an SSD fail-stop; drop it
            handle, start, end, kind, ret = task
            # Wait for a quiet period on the SSD.
            while self.ssd_queue.idle_duration() < self.ib.writeback_idle:
                yield env.timeout(self.ib.writeback_idle)
            if self.mapping.coverage(handle, start, end) > 0:
                continue  # raced with another admission
            if not self.partition.admissible(kind, end - start):
                continue
            ok = yield from self._make_room(kind, end - start)
            if not ok:
                self.stats.rejected_admissions += 1
                continue
            yield from self._clean_log_if_needed()
            # Everything above yielded; re-run every admission check now
            # so the check-and-insert below is one atomic step.  Without
            # this, a foreground write admitted during the eviction
            # flush could cover the same range (double-caching) or
            # refill the class partition (over-commit) — and an SSD
            # fail-stop opening during the idle wait could leave this
            # fill appending into a log that ssd_restore is about to
            # replace, stranding a mapping entry with no live extent.
            if (not self.ssd_available
                    or self.mapping.coverage(handle, start, end) > 0
                    or not self.partition.fits(kind, end - start)):
                self.stats.rejected_admissions += 1
                continue
            # Fills persist a mapping-table entry with the data exactly
            # like redirected writes; charging it here keeps log
            # occupancy (and cleaning thresholds) consistent between
            # the two admission paths.
            payload = (end - start) + TABLE_ENTRY_BYTES
            if not self._log.can_append(payload):
                self.stats.rejected_admissions += 1
                continue
            lbn = self._log.append(payload)
            entry = CacheEntry(handle=handle, start=start, end=end,
                               ssd_lbn=lbn, kind=kind, dirty=False, ret=ret,
                               last_use=env.now)
            self.mapping.insert(entry)
            self.partition.add(entry)
            self._by_lbn[lbn] = entry
            self.stats.fill_bytes += end - start
            self._count_admission(kind, "fill")
            if self.audit:
                self.audit.note_fill(end - start)
                self.audit.check("fill")
            write = self.ssd_queue.submit(Op.WRITE, lbn, payload,
                                          stream=BACKGROUND_STREAM)
            yield write.done

    # =================================================== fault handling
    def ssd_fail(self, policy: str = "forfeit"):
        """Take the SSD out of service (generator; fail-stop entry point).

        With ``policy="drain"`` the manager first writes all dirty data
        back to the disk (a graceful decommission / predicted-failure
        pull); with ``policy="forfeit"`` (hard failure) dirty bytes are
        lost — the disk keeps serving its stale-but-consistent copy and
        the loss is accounted in ``stats.forfeited_bytes`` and the
        auditor's forfeited ledger.  Either way the manager then runs in
        degraded mode: every request goes to the disk until
        :meth:`ssd_restore`.
        """
        if not self.ssd_available or self._log is None:
            return
        self.ssd_available = False
        self.stats.ssd_outages += 1
        if policy == "drain":
            yield from self.flush_all()
        forfeited = 0
        for entry in list(self.mapping.entries):
            entry.forfeited = True
            if entry.dirty:
                forfeited += entry.nbytes
                entry.dirty = False
            self.mapping.remove(entry)
            self.partition.drop(entry)
            self._log.invalidate(entry.ssd_lbn)
            self._ssd_trim(entry.ssd_lbn, entry.nbytes + TABLE_ENTRY_BYTES)
            self._by_lbn.pop(entry.ssd_lbn, None)
        self.stats.forfeited_bytes += forfeited
        if self.audit:
            if forfeited:
                self.audit.note_forfeited(forfeited)
            self.audit.check("ssd_fail")

    def ssd_restore(self) -> None:
        """Return a (replacement) SSD to service after :meth:`ssd_fail`.

        The log is rebuilt empty: the replacement device holds none of
        the old cached data, so the manager re-learns its working set.
        """
        if self.ssd_available:
            return
        if self._log_params is not None:
            base, region, seg = self._log_params
            self._log = LogStore(base=base, region=region, segment_size=seg)
        # A replacement drive arrives factory-fresh: its FTL holds no
        # valid pages from the failed device.  (Idempotent when several
        # managers share the server's SSD.)
        reset = getattr(self.ssd_queue.device, "ftl_reset", None)
        if reset is not None:
            reset()
        self.ssd_available = True
        if self.audit:
            self.audit.check("ssd_restore")

    def shutdown(self) -> None:
        """Stop background daemons at the next poll (end of simulation)."""
        self._shutdown = True
