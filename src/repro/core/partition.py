"""SSD space partitioning between regular random requests and fragments.

The paper records each cached item's return value and sizes the two
partitions "proportionally to the types' respective averages", so the
class whose redirections help the system more gets more SSD space.
Within a class, LRU replacement applies.  A static split mode supports
the 1:1 / 1:2 comparisons of Fig. 12.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..config import IBridgeConfig
from ..errors import StorageError
from .mapping import CacheEntry, CacheKind

#: Never let a class's share drop below this, so a quiet class can
#: still bootstrap (matches the intent of proportional sharing without
#: starving a type whose average is momentarily tiny).
MIN_SHARE = 0.05


class PartitionManager:
    """Byte accounting + LRU per cache kind with dynamic shares."""

    def __init__(self, capacity: int, config: IBridgeConfig) -> None:
        if capacity < 0:
            raise StorageError("partition capacity must be non-negative")
        self.capacity = capacity
        self.config = config
        self._lru: Dict[CacheKind, "OrderedDict[int, CacheEntry]"] = {
            CacheKind.RANDOM: OrderedDict(),
            CacheKind.FRAGMENT: OrderedDict(),
        }
        self._bytes: Dict[CacheKind, int] = {CacheKind.RANDOM: 0,
                                             CacheKind.FRAGMENT: 0}
        self._ret_sum: Dict[CacheKind, float] = {CacheKind.RANDOM: 0.0,
                                                 CacheKind.FRAGMENT: 0.0}

    # ------------------------------------------------------------- shares
    def shares(self) -> Tuple[float, float]:
        """(random_share, fragment_share) of the SSD partition."""
        if not self.config.dynamic_partition:
            a, b = self.config.static_split
            return float(a), float(b)
        avg_r = self._avg_return(CacheKind.RANDOM)
        avg_f = self._avg_return(CacheKind.FRAGMENT)
        if avg_r <= 0.0 and avg_f <= 0.0:
            return 0.5, 0.5
        total = avg_r + avg_f
        share_r = avg_r / total
        share_r = min(1.0 - MIN_SHARE, max(MIN_SHARE, share_r))
        return share_r, 1.0 - share_r

    def _avg_return(self, kind: CacheKind) -> float:
        n = len(self._lru[kind])
        if n == 0:
            return 0.0
        return max(0.0, self._ret_sum[kind] / n)

    def class_capacity(self, kind: CacheKind) -> int:
        share_r, share_f = self.shares()
        share = share_r if kind is CacheKind.RANDOM else share_f
        return int(self.capacity * share)

    def used(self, kind: Optional[CacheKind] = None) -> int:
        if kind is None:
            return sum(self._bytes.values())
        return self._bytes[kind]

    # ------------------------------------------------------------- entries
    def add(self, entry: CacheEntry) -> None:
        lru = self._lru[entry.kind]
        if entry.id in lru:
            raise StorageError(f"entry {entry.id} already tracked")
        lru[entry.id] = entry
        self._bytes[entry.kind] += entry.nbytes
        self._ret_sum[entry.kind] += entry.ret

    def drop(self, entry: CacheEntry) -> None:
        lru = self._lru[entry.kind]
        if entry.id not in lru:
            raise StorageError(f"drop of untracked entry {entry.id}")
        del lru[entry.id]
        self._bytes[entry.kind] -= entry.nbytes
        self._ret_sum[entry.kind] -= entry.ret

    def touch(self, entry: CacheEntry, now: float) -> None:
        """Record a cache hit: move to MRU position."""
        lru = self._lru[entry.kind]
        if entry.id in lru:
            lru.move_to_end(entry.id)
            entry.last_use = now

    # ------------------------------------------------------------- eviction
    def fits(self, kind: CacheKind, nbytes: int) -> bool:
        """Would ``nbytes`` fit in ``kind``'s partition right now?"""
        return self._bytes[kind] + nbytes <= self.class_capacity(kind)

    def admissible(self, kind: CacheKind, nbytes: int) -> bool:
        """Could ``nbytes`` ever fit (i.e. not larger than the class)?"""
        return 0 < nbytes <= self.class_capacity(kind)

    def eviction_candidates(self, kind: CacheKind, nbytes: int) -> List[CacheEntry]:
        """LRU entries of ``kind`` to evict so ``nbytes`` fits.

        Busy entries (mid-writeback) are skipped.  Returns [] when the
        class already has room; raises if the goal is unreachable.
        """
        needed = self._bytes[kind] + nbytes - self.class_capacity(kind)
        if needed <= 0:
            return []
        victims: List[CacheEntry] = []
        freed = 0
        for entry in self._lru[kind].values():  # LRU order (oldest first)
            if entry.busy:
                continue
            victims.append(entry)
            freed += entry.nbytes
            if freed >= needed:
                return victims
        raise StorageError(
            f"cannot free {needed} bytes in {kind.value} partition")
