"""The PFS client: request splitting and fragment flagging.

This is the counterpart of the paper's instrumentation of PVFS2's
``io_datafile_setup_msgpairs()``: the client knows the striping unit,
so it decomposes each application request into per-server sub-requests
and — when iBridge is enabled — flags fragments (sub-threshold pieces
of multi-server requests) and regular random requests (sub-threshold
whole requests), attaching the sibling server list each data server
needs for Eq. 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..config import ClusterConfig
from ..devices.base import Op
from ..errors import FaultError, ProtocolError, RequestTimeoutError
from ..net import Network
from ..sim import Environment, Event
from ..util.rng import rng_stream
from .layout import StripeLayout
from .messages import ParentRequest, SubRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..audit.runtime import AuditRuntime


class PFSClient:
    """One compute-node client (shared by that node's ranks)."""

    def __init__(self, env: Environment, client_id: int, config: ClusterConfig,
                 layout: StripeLayout, servers: List, network: Network,
                 audit: Optional["AuditRuntime"] = None) -> None:
        self.env = env
        self.id = client_id
        self.config = config
        self.layout = layout
        self.servers = servers
        self.network = network
        self.audit = audit
        #: Observability tracer (:class:`repro.obs.span.Tracer`); wired
        #: by the cluster's ObsRuntime, None on untraced runs.
        self.obs = None
        self.name = f"client{client_id}"
        self._rng = rng_stream(config.seed, f"client:{client_id}")
        self.completed: List[ParentRequest] = []
        #: When set, completed parent requests are appended here too
        #: (shared collector installed by the workload runner).
        self.collector: Optional[List[ParentRequest]] = None
        #: Recovery counters (see ClusterConfig.retry).
        self.timeouts = 0       # sub-request attempts that hit the deadline
        self.retries = 0        # attempts re-issued after a timeout
        self.failures = 0       # parent requests failed after exhaustion
        self.exhausted = 0      # sub-requests abandoned (any reason)
        self.wallclock_exhausted = 0  # ... because of retry.total_timeout
        #: Sub-requests issued but not yet completed/abandoned; sampled
        #: by the obs timeline as the client-side load gauge.
        self.outstanding = 0

    # ------------------------------------------------------------- splitting
    def split(self, parent: ParentRequest) -> List[SubRequest]:
        """Decompose ``parent``, flagging fragments and random requests."""
        pieces = self.layout.split(parent.offset, parent.nbytes)
        if not pieces:
            raise ProtocolError("request split produced no pieces")
        ib = self.config.ibridge
        subs: List[SubRequest] = []
        multi = len(pieces) > 1
        for piece in pieces:
            sub = SubRequest(parent_id=parent.id, op=parent.op,
                             handle=parent.handle, server=piece.server,
                             local_offset=piece.local_offset,
                             nbytes=piece.nbytes, rank=parent.rank)
            if ib.enabled:
                if multi and piece.nbytes < ib.fragment_threshold:
                    sub.is_fragment = True
                if not multi and parent.nbytes < ib.random_threshold:
                    sub.is_random = True
            subs.append(sub)
        if ib.enabled and multi:
            for sub in subs:
                if sub.is_fragment:
                    sub.sibling_servers = tuple(
                        other.server for other in subs if other is not sub)
        return subs

    # ------------------------------------------------------------- I/O
    def submit(self, op: Op, handle: int, offset: int, nbytes: int,
               rank: int) -> Event:
        """Issue one application request; event fires at completion with
        the :class:`ParentRequest` (timing fields filled) as value."""
        parent = ParentRequest(op=op, handle=handle, offset=offset,
                               nbytes=nbytes, rank=rank)
        done = self.env.event()
        self.env.process(self._request(parent, done),
                         name=f"{self.name}-r{parent.id}")
        return done

    def read(self, handle: int, offset: int, nbytes: int, rank: int) -> Event:
        return self.submit(Op.READ, handle, offset, nbytes, rank)

    def write(self, handle: int, offset: int, nbytes: int, rank: int) -> Event:
        return self.submit(Op.WRITE, handle, offset, nbytes, rank)

    def _request(self, parent: ParentRequest, done: Event):
        env = self.env
        parent.submit_time = env.now
        # The root span opens at submit_time and closes at complete_time
        # (same ticks, no yields between), so its duration equals the
        # parent latency reported by analysis.metrics exactly.
        obs = self.obs
        root = None
        if obs is not None:
            # root() returns None for traces outside the 1-in-N sample;
            # every child site guards on its parent span, so a None
            # root prunes the whole tree at the cost of one modulo.
            root = obs.root("request", "client", parent.id, env.now,
                            op=parent.op.value, nbytes=parent.nbytes,
                            offset=parent.offset, rank=parent.rank,
                            client=self.id)
        try:
            # Per-request OS/runtime noise; this is what makes concurrent
            # ranks drift out of phase (see ClusterConfig.client_jitter).
            jitter = (self._rng.random() * self.config.client_jitter
                      if self.config.client_jitter > 0 else 0.0)
            yield env.timeout(self.config.client_overhead + jitter)
            subs = self.split(parent)
            if root is not None:
                for sub in subs:
                    sub.span = obs.start(
                        "subreq", "rpc", parent.id, env.now, parent=root,
                        server=sub.server, nbytes=sub.nbytes,
                        fragment=sub.is_fragment, random=sub.is_random)
            completions = []
            for sub in subs:
                completions.append(self._sub_round_trip(sub))
            # A request is complete only when its slowest sub-request is —
            # the synchronous-request property the paper's analysis hinges
            # on.
            yield env.all_of(completions)
        except FaultError as exc:
            # Retry exhaustion (or another injected-fault error) must
            # fail ``done`` rather than silently killing this process:
            # a waiter yielding ``done`` gets the typed exception instead
            # of deadlocking on an event that never fires.
            self.failures += 1
            if self.audit is not None:
                self.audit.trace.emit(env.now, "client_give_up",
                                      client=self.id, parent=parent.id,
                                      error=type(exc).__name__)
            if root is not None:
                root.annotate(failed=type(exc).__name__)
                obs.finish(root, env.now)
            done.fail(exc)
            return
        parent.complete_time = env.now
        if root is not None:
            obs.finish(root, env.now)
        self.completed.append(parent)
        if self.collector is not None:
            self.collector.append(parent)
        done.succeed(parent)

    def _sub_round_trip(self, sub: SubRequest) -> Event:
        """Request message -> server job -> response message.

        The whole round trip is one *attempt*; with retry enabled (the
        default) each attempt races a deadline, and a timed-out attempt
        is re-issued after capped exponential backoff.  A lost request
        or reply message, a crashed server, or a fail-stopped device all
        look identical from here — no completion before the deadline —
        which is exactly the failure model of a real RPC layer.  Retries
        are at-least-once: a slow (not lost) attempt may still complete
        after its deadline, and the server may serve a sub-request
        twice; servers are idempotent for both reads and writes.
        """
        env = self.env
        server = self.servers[sub.server]
        retry = self.config.retry
        finished = env.event()

        def attempt(attempt_done: Event):
            if server.is_remote:
                # Sharded run, server owned by another shard: the stub
                # plays the sender leg and posts to the shard mailbox;
                # the reply record (delivered at a window barrier)
                # succeeds ``attempt_done`` directly.
                yield from server.round_trip(self, sub, attempt_done)
                return
            req_payload = sub.nbytes if sub.op is Op.WRITE else 0
            yield self.network.send(self.name, server.name, req_payload,
                                    obs_parent=sub.span)
            served = server.submit(sub)
            yield served
            resp_payload = sub.nbytes if sub.op is Op.READ else 0
            yield self.network.send(server.name, self.name, resp_payload,
                                    obs_parent=sub.span)
            if not attempt_done.triggered:
                attempt_done.succeed(sub)

        def finish_span():
            if sub.span is not None and self.obs is not None:
                self.obs.finish(sub.span, env.now)

        def give_up(exc: RequestTimeoutError, wallclock: bool) -> None:
            self.exhausted += 1
            if wallclock:
                self.wallclock_exhausted += 1
            self.outstanding -= 1
            finished.fail(exc)

        def run():
            self.outstanding += 1
            if not retry.enabled:
                one = env.event()
                env.process(attempt(one), name=f"{self.name}-s{sub.id}a0")
                yield one
                finish_span()
                self.outstanding -= 1
                finished.succeed(sub)
                return
            attempts = retry.max_retries + 1
            start = env.now
            budget = retry.total_timeout
            # One shared completion event for every attempt: the round
            # trip that finishes *first* completes the sub-request, even
            # when it is an earlier attempt whose deadline already
            # expired.  Racing each attempt against its own private
            # event discards those late replies, and under load that
            # feeds a retry storm: every duplicate deepens the server
            # queue, pushing every round trip past the deadline, which
            # mints more duplicates — self-sustaining long after the
            # fault window that started it reverts (found by
            # repro.chaos, seed 7).
            completed = env.event()
            for i in range(attempts):
                if completed.triggered:
                    # A straggler replied during the backoff sleep.
                    finish_span()
                    self.outstanding -= 1
                    finished.succeed(sub)
                    return
                if budget is not None and env.now - start >= budget:
                    # The attempt-count budget alone is unbounded in
                    # time (each timed-out attempt restarts the clock);
                    # the wall-clock cap bounds the whole loop.
                    give_up(RequestTimeoutError(
                        f"{self.name}: sub-request {sub.id} to server "
                        f"{sub.server} exceeded its retry wall-clock "
                        f"budget ({budget}s) after {i} attempts"),
                        wallclock=True)
                    return
                env.process(attempt(completed),
                            name=f"{self.name}-s{sub.id}a{i}")
                deadline = env.timeout(retry.timeout)
                fired = yield env.any_of([completed, deadline])
                if completed in fired:
                    finish_span()
                    self.outstanding -= 1
                    finished.succeed(sub)
                    return
                self.timeouts += 1
                if self.audit is not None:
                    self.audit.trace.emit(
                        env.now, "client_timeout", client=self.id,
                        sub=sub.id, server=sub.server, attempt=i)
                if i + 1 < attempts:
                    self.retries += 1
                    yield env.timeout(retry.backoff(i))
            give_up(RequestTimeoutError(
                f"{self.name}: sub-request {sub.id} to server {sub.server} "
                f"got no reply after {attempts} attempts "
                f"(timeout {retry.timeout}s each)"), wallclock=False)

        env.process(run(), name=f"{self.name}-s{sub.id}")
        return finished
