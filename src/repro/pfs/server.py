"""The PVFS2-like data server.

Each data server owns one or more disks (CFQ) and one SSD (Noop), a
local extent store per disk, and — when enabled — one iBridge manager
per disk (the paper's stated multi-disk extension: the managers share
the server's SSD, each with a slice of the partition and a disjoint log
region).  Incoming sub-requests become I/O jobs; a bounded pool of job
slots models the server's Trove I/O concurrency.  Without iBridge the
server simply maps the sub-request onto its primary store and issues
the block I/Os.

File handles are assigned to disks round-robin (``handle % ndisks``),
matching how a multi-volume Trove deployment places bstreams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..audit import AuditRuntime
from ..block import BlockQueue, BlockTracer, make_scheduler
from ..config import ClusterConfig
from ..core.manager import IBridgeManager
from ..core.service_model import GlobalTTable
from ..devices import HardDisk, Op, SolidStateDrive
from ..devices.profiling import SeekProfile
from ..localfs import LocalStore
from ..sim import Environment, Event, Resource
from .messages import SubRequest


@dataclass
class ServerStats:
    """Per-server job counters."""

    jobs: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


@dataclass
class DiskUnit:
    """One disk with its queue, store, tracer and (optional) manager."""

    hdd: HardDisk
    queue: BlockQueue
    store: LocalStore
    tracer: BlockTracer
    ibridge: Optional[IBridgeManager]


class DataServer:
    """One data server node."""

    #: Sharded execution marker (see :mod:`repro.pfs.remote`): a real
    #: server serves locally; a stub relays across the shard boundary.
    is_remote = False

    def __init__(self, env: Environment, server_id: int, config: ClusterConfig,
                 profile: SeekProfile, t_table: Optional[GlobalTTable] = None,
                 trace_disk: bool = False,
                 audit: Optional[AuditRuntime] = None) -> None:
        self.env = env
        self.id = server_id
        self.config = config
        self.name = f"ds{server_id}"

        # Auditing: use the cluster's shared runtime when given one,
        # else (standalone servers in unit tests) own a private one.
        if audit is None and config.audit.enabled:
            audit = AuditRuntime(env, config.audit)
        self.audit = audit
        #: Observability tracer (:class:`repro.obs.span.Tracer`); wired
        #: by the cluster's ObsRuntime, None on untraced runs.
        self.obs = None

        self.ssd = SolidStateDrive(config.ssd, seed=config.seed,
                                   name=f"{self.name}-ssd")
        self.ssd_queue = BlockQueue(env, self.ssd,
                                    make_scheduler(config.ssd_scheduler),
                                    name=f"{self.name}-ssd")
        if self.audit is not None:
            self.audit.watch_queue(self.ssd_queue)
        # SSD-resident file store (used when primary_store == "ssd");
        # reserve the iBridge log region(s) when iBridge is enabled.
        reserve = config.ibridge.ssd_partition * 2 if config.ibridge.enabled else 0
        reserve = min(reserve, self.ssd.capacity // 2)
        self.ssd_store = LocalStore(self.ssd.capacity, reserve=reserve)

        ndisks = config.server.disks_per_server
        shared_table = t_table if t_table is not None else GlobalTTable()
        self._t_table = shared_table
        self.disks: List[DiskUnit] = []
        for d in range(ndisks):
            hdd = HardDisk(config.hdd)
            tracer = BlockTracer(enabled=trace_disk)
            queue = BlockQueue(env, hdd, make_scheduler(config.hdd_scheduler),
                               tracer=tracer, name=f"{self.name}-hdd{d}")
            if self.audit is not None:
                self.audit.watch_queue(queue)
            store = LocalStore(hdd.capacity)
            manager = None
            if config.ibridge.enabled:
                partition_slice = config.ibridge.ssd_partition // ndisks
                region_stride = max(2, partition_slice * 2)
                manager = IBridgeManager(
                    env, server_id, config, queue, self.ssd_queue, store,
                    profile, t_table=shared_table,
                    partition_bytes=partition_slice,
                    log_base=d * region_stride,
                    audit=self.audit)
            self.disks.append(DiskUnit(hdd=hdd, queue=queue, store=store,
                                       tracer=tracer, ibridge=manager))

        self._slots = Resource(env, capacity=config.server.io_depth)
        self.stats = ServerStats()
        #: Crash-fault state (repro.faults): while crashed the server
        #: accepts no jobs and sends no replies; the epoch distinguishes
        #: pre-crash jobs whose replies must be lost after a restart.
        self.crashed = False
        self.epoch = 0
        self.crashes = 0

    # --------------------------------------------------- single-disk views
    @property
    def hdd(self) -> HardDisk:
        return self.disks[0].hdd

    @property
    def hdd_queue(self) -> BlockQueue:
        return self.disks[0].queue

    @property
    def disk_store(self) -> LocalStore:
        return self.disks[0].store

    @property
    def disk_tracer(self) -> BlockTracer:
        return self.disks[0].tracer

    @property
    def ibridge(self) -> Optional[IBridgeManager]:
        return self.disks[0].ibridge

    # ------------------------------------------------------------- layout
    def _disk_of(self, handle: int) -> DiskUnit:
        return self.disks[handle % len(self.disks)]

    def primary_store_for(self, handle: int) -> LocalStore:
        if self.config.primary_store == "ssd":
            return self.ssd_store
        return self._disk_of(handle).store

    def primary_queue_for(self, handle: int) -> BlockQueue:
        if self.config.primary_store == "ssd":
            return self.ssd_queue
        return self._disk_of(handle).queue

    # Back-compat aliases used by single-disk code paths.
    @property
    def primary_store(self) -> LocalStore:
        if self.config.primary_store == "ssd":
            return self.ssd_store
        return self.disk_store

    @property
    def primary_queue(self) -> BlockQueue:
        if self.config.primary_store == "ssd":
            return self.ssd_queue
        return self.hdd_queue

    def preallocate(self, handle: int, nbytes: int) -> None:
        """Lay out this server's share of a file contiguously."""
        if nbytes > 0:
            self.primary_store_for(handle).preallocate(handle, nbytes)

    # ------------------------------------------------------------- serving
    def submit(self, sub: SubRequest) -> Event:
        """Accept a sub-request; the event fires when it is served.

        A crashed server accepts nothing: the returned event never
        fires, and the client's timeout/retry path recovers.
        """
        done = self.env.event()
        if self.crashed:
            return done
        obs = self.obs
        span = None
        if obs is not None and sub.span is not None:
            span = obs.start(f"{self.name}.job", "server", sub.span.trace_id,
                             self.env.now, parent=sub.span, server=self.id)
        self.env.process(self._job(sub, done, self.epoch, span),
                         name=f"{self.name}-job")
        return done

    def _job(self, sub: SubRequest, done: Event, epoch: int, span=None):
        env = self.env
        obs = self.obs
        with self._slots.request() as slot:
            if span is not None:
                # Time spent waiting for a Trove I/O slot is queueing,
                # not service — give it its own span.
                wait = obs.start("slot.wait", "queue", span.trace_id,
                                 env.now, parent=span)
                yield slot
                obs.finish(wait, env.now)
            else:
                yield slot
            yield env.timeout(self.config.server.request_overhead)
            self.stats.jobs += 1
            if sub.op is Op.WRITE:
                self.stats.bytes_written += sub.nbytes
            else:
                self.stats.bytes_read += sub.nbytes
            unit = self._disk_of(sub.handle)
            if unit.ibridge is not None and self.config.primary_store == "hdd":
                yield from unit.ibridge.handle(sub, span)
            else:
                yield from self._stock_io(sub, span)
        if span is not None:
            obs.finish(span, env.now)
        if self.crashed or self.epoch != epoch:
            # The server crashed while this job was in flight: whatever
            # the devices completed stays done, but the reply is lost.
            # The client retries against the restarted server.
            return
        done.succeed(sub)

    # ------------------------------------------------------------- faults
    def crash(self) -> None:
        """Fail-stop the whole server (devices pause, replies are lost)."""
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.epoch += 1
        for unit in self.disks:
            unit.queue.pause()
        self.ssd_queue.pause()

    def restart(self) -> None:
        """Bring the server back after :meth:`crash`.

        In-memory PFS state survives because the interesting recovery
        state is on stable storage already: the iBridge mapping table is
        persisted on the SSD alongside every dirty entry (see
        ``TABLE_ENTRY_BYTES``), so the restarted server re-reads it and
        resumes with its dirty log intact — the paper's crash-recovery
        story for redirected writes.
        """
        if not self.crashed:
            return
        self.crashed = False
        for unit in self.disks:
            unit.queue.resume()
        self.ssd_queue.resume()

    def _stock_io(self, sub: SubRequest, span=None):
        """Serve directly from the primary store (no iBridge)."""
        store = self.primary_store_for(sub.handle)
        queue = self.primary_queue_for(sub.handle)
        if sub.op is Op.WRITE:
            ranges = store.ranges_for_write(sub.handle, sub.local_offset,
                                            sub.nbytes)
        else:
            ranges = store.ranges_for_read(sub.handle, sub.local_offset,
                                           sub.nbytes)
        reqs = [queue.submit(sub.op, lbn, size, stream=sub.rank,
                             obs_parent=span)
                for lbn, size in ranges]
        yield self.env.all_of([r.done for r in reqs])

    # ------------------------------------------------------------- drains
    def drain(self):
        """Generator: wait until all device queues are quiescent and all
        dirty iBridge data has reached the disks."""
        for unit in self.disks:
            yield unit.queue.quiesce()
        yield self.ssd_queue.quiesce()
        for unit in self.disks:
            if unit.ibridge is not None:
                yield from unit.ibridge.flush_all()
                yield unit.queue.quiesce()

    @property
    def t_value(self) -> float:
        """The server's reported service-time average: the *slowest*
        disk's T (the disk that would gate a striped request)."""
        managers = [u.ibridge for u in self.disks if u.ibridge is not None]
        if not managers:
            return 0.0
        return max(m.model.t_value for m in managers)
