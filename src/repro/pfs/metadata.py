"""The metadata server: handle allocation and the T-value exchange.

Besides the usual PVFS2 role (file handles / layout metadata, which the
simulation resolves instantly at file-create time), the MDS runs the
paper's T-exchange: every data server reports its disk's current
average service time once per period; the MDS broadcasts the collected
table back to every data server, which uses it for Eq. 3's striping
magnification term.  The table is therefore stale by up to one period,
exactly as in the paper.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..config import ClusterConfig
from ..core.service_model import TReport
from ..net import Network
from ..sim import Environment


class MetadataServer:
    """MDS node: handle allocation plus the T broadcast daemon."""

    def __init__(self, env: Environment, config: ClusterConfig,
                 network: Network) -> None:
        self.env = env
        self.config = config
        self.network = network
        self.name = "mds"
        self._handles = itertools.count(1)
        self._servers: List = []  # DataServer, bound late by the cluster
        self._table: Dict[int, TReport] = {}
        self.broadcasts = 0
        if config.ibridge.enabled:
            env.process(self._exchange_daemon(), name="mds-t-exchange")

    def bind_servers(self, servers: List) -> None:
        self._servers = list(servers)
        if not self.config.ibridge.enabled:
            return
        # Mount-time exchange: every server registers its initial T so
        # Eq. 3 consults a full (if soon stale) table from the first
        # request on, not only after the first periodic broadcast.
        reports = []
        for server in self._servers:
            if server.ibridge is None:
                continue
            rep = TReport(server=server.id, t_value=server.t_value,
                          time=self.env.now)
            self._table[server.id] = rep
            reports.append(rep)
        for server in self._servers:
            if server.ibridge is not None:
                server.ibridge.t_table.update_many(reports)

    def create_handle(self) -> int:
        """Allocate a new PFS file handle."""
        return next(self._handles)

    # ------------------------------------------------------------- exchange
    def _exchange_daemon(self):
        """Collect T values and broadcast them, once per report period."""
        env = self.env
        period = self.config.ibridge.report_period
        while True:
            yield env.timeout(period)
            if not self._servers:
                continue
            # Collect: one report message per data server.
            collects = []
            for server in self._servers:
                if server.ibridge is None:
                    continue
                self._table[server.id] = TReport(server=server.id,
                                                 t_value=server.t_value,
                                                 time=env.now)
                collects.append(self.network.send(server.name, self.name, 64))
            if collects:
                yield env.all_of(collects)
            # Broadcast the full table to every server.
            reports = list(self._table.values())
            payload = 64 * max(1, len(reports))
            sends = []
            for server in self._servers:
                if server.ibridge is None:
                    continue
                sends.append(self._deliver(server, reports, payload))
            for done in sends:
                yield done
            self.broadcasts += 1

    def _deliver(self, server, reports: List[TReport], payload: int):
        done = self.network.send(self.name, server.name, payload)

        def apply(_ev):
            server.ibridge.t_table.update_many(reports)

        done.add_callback(apply)
        return done

    def current_t(self, server_id: int) -> Optional[float]:
        rep = self._table.get(server_id)
        return rep.t_value if rep else None
