"""Remote-server stub for sharded (partitioned-horizon) execution.

When a cluster is built for one shard of a partitioned run
(:mod:`repro.sim.parallel`), the servers owned by *other* shards are
represented by :class:`RemoteServerStub` objects.  A stub exposes just
enough of the :class:`~repro.pfs.server.DataServer` surface for the
cluster wiring to skip it (``is_remote``, ``ibridge is None``,
zeroed stats) and one active method — :meth:`round_trip` — that the
client's RPC attempt delegates to.

The stub never simulates the server: it plays the *sender side* of the
request message (overhead + egress wire time via
:meth:`~repro.net.network.Network.send_local_leg`) and then posts a
pickled, span-stripped copy of the sub-request to the shard mailbox.
The owning shard replays the middle of the round trip — request
arrival, ``server.submit``, service, reply departure — in its own
environment and posts a reply record that completes the client's shared
attempt event.  Lost messages (fault drops) simply never post, which
reproduces the serial failure model: no completion before the client's
retry deadline.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ..devices.base import Op
from ..sim import Environment, Event
from .server import ServerStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .client import PFSClient
    from .messages import SubRequest


class RemoteServerStub:
    """Placeholder for a data server owned by another shard."""

    is_remote = True
    #: The cluster wiring skips iBridge/GC/obs hookup on ``None``.
    ibridge = None
    crashed = False
    crashes = 0

    def __init__(self, env: Environment, server_id: int, shard) -> None:
        self.env = env
        self.id = server_id
        self.name = f"ds{server_id}"
        #: The :class:`repro.sim.parallel.ShardContext` mailbox owner.
        self.shard = shard
        self.stats = ServerStats()

    def preallocate(self, handle: int, nbytes: int) -> None:
        """No-op: the owning shard preallocates the real store."""

    # ------------------------------------------------------------- RPC
    def round_trip(self, client: "PFSClient", sub: "SubRequest",
                   attempt_done: Event):
        """Generator body of one cross-shard RPC attempt.

        Runs inside the client's attempt process.  Completion does not
        happen here: the reply record delivered at a future window
        barrier succeeds ``attempt_done`` (shared across attempts, so a
        late reply to an earlier attempt still completes the
        sub-request — the retry-storm fix applies across shards too).
        """
        req_payload = sub.nbytes if sub.op is Op.WRITE else 0
        departed = client.network.send_local_leg(client.name, self.name,
                                                 req_payload)
        ok = yield departed
        if not ok:
            return  # dropped by a fault window: the attempt is lost
        # Strip the span before the wire: span trees are per-shard
        # (the server shard opens no job spans for remote subs).
        self.shard.post_request(self, client.name,
                                replace(sub, span=None), attempt_done, sub)
