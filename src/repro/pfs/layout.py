"""File striping layout: the global↔server-local address mapping.

PVFS2 stripes a file round-robin over data servers in ``stripe_unit``
chunks.  Server ``s`` stores global stripes ``s, s+N, s+2N, ...``
packed contiguously in its local bstream file, so a *globally*
sequential scan is *locally* sequential at every server.

``split`` decomposes a request into per-server sub-extents, grouping
globally-consecutive stripes that are local-contiguous at the same
server into one sub-extent (what PVFS2's dataflow achieves with list
I/O).  A request smaller than ``stripe_unit * num_servers`` therefore
produces at most one sub-extent per server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError


@dataclass(frozen=True)
class SubExtent:
    """A contiguous piece of a request on one server's local file."""

    server: int
    local_offset: int
    nbytes: int
    global_offset: int

    @property
    def local_end(self) -> int:
        return self.local_offset + self.nbytes


class StripeLayout:
    """Round-robin striping over ``num_servers`` with ``stripe_unit``."""

    def __init__(self, stripe_unit: int, num_servers: int) -> None:
        if stripe_unit <= 0:
            raise ConfigError(f"stripe_unit must be positive, got {stripe_unit}")
        if num_servers <= 0:
            raise ConfigError(f"num_servers must be positive, got {num_servers}")
        self.stripe_unit = stripe_unit
        self.num_servers = num_servers

    def server_of(self, offset: int) -> int:
        """The server holding the byte at global ``offset``."""
        return (offset // self.stripe_unit) % self.num_servers

    def local_offset(self, offset: int) -> int:
        """Server-local file offset of global ``offset``."""
        stripe = offset // self.stripe_unit
        return (stripe // self.num_servers) * self.stripe_unit + offset % self.stripe_unit

    def is_aligned(self, offset: int, nbytes: int) -> bool:
        """True when the request starts and ends on stripe boundaries."""
        return offset % self.stripe_unit == 0 and nbytes % self.stripe_unit == 0

    def split(self, offset: int, nbytes: int) -> List[SubExtent]:
        """Decompose ``[offset, offset + nbytes)`` into sub-extents.

        Pieces on the same server that are contiguous in its local file
        (i.e. consecutive global stripes ``g`` and ``g + num_servers``)
        are coalesced.  Results are ordered by global offset of their
        first byte.
        """
        if nbytes <= 0:
            raise ConfigError(f"request size must be positive, got {nbytes}")
        if offset < 0:
            raise ConfigError(f"negative offset {offset}")
        unit = self.stripe_unit
        pieces: List[SubExtent] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe_end = (pos // unit + 1) * unit
            piece_end = min(end, stripe_end)
            server = self.server_of(pos)
            local = self.local_offset(pos)
            size = piece_end - pos
            # Coalesce with an earlier piece on the same server when the
            # local ranges are contiguous.
            merged = False
            for i, prev in enumerate(pieces):
                if prev.server == server and prev.local_end == local:
                    pieces[i] = SubExtent(server, prev.local_offset,
                                          prev.nbytes + size, prev.global_offset)
                    merged = True
                    break
            if not merged:
                pieces.append(SubExtent(server, local, size, pos))
            pos = piece_end
        return pieces

    def total_local_bytes(self, server: int, file_size: int) -> int:
        """Bytes of a ``file_size``-byte file stored on ``server``."""
        unit = self.stripe_unit
        full_cycles, rem = divmod(file_size, unit * self.num_servers)
        nbytes = full_cycles * unit
        rem_stripes, tail = divmod(rem, unit)
        if server < rem_stripes:
            nbytes += unit
        elif server == rem_stripes:
            nbytes += tail
        return nbytes
