"""PVFS2-like striped parallel file system."""

from .client import PFSClient
from .cluster import Cluster
from .layout import StripeLayout, SubExtent
from .messages import ParentRequest, SubRequest
from .metadata import MetadataServer
from .server import DataServer

__all__ = [
    "StripeLayout",
    "SubExtent",
    "ParentRequest",
    "SubRequest",
    "PFSClient",
    "DataServer",
    "MetadataServer",
    "Cluster",
]
