"""Protocol objects exchanged between PFS clients and servers.

The client-side split produces :class:`SubRequest` objects.  Following
the paper's design, the client annotates each sub-request with a
fragment flag and the identifiers of the servers holding its sibling
sub-requests (Section II-A): servers use this to evaluate the striping
magnification term of Eq. 3 without any extra round trips.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..devices.base import Op

_request_ids = itertools.count(1)


@dataclass
class ParentRequest:
    """One application-level (MPI-IO) request before splitting."""

    op: Op
    handle: int
    offset: int
    nbytes: int
    rank: int
    id: int = field(default_factory=lambda: next(_request_ids))
    submit_time: Optional[float] = None
    complete_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.submit_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.submit_time


@dataclass
class SubRequest:
    """One per-server piece of a parent request."""

    parent_id: int
    op: Op
    handle: int
    server: int
    local_offset: int
    nbytes: int
    rank: int
    #: Set by the client when this piece is smaller than the fragment
    #: threshold and the parent spans multiple sub-requests.
    is_fragment: bool = False
    #: Set when the *parent itself* is below the regular-random threshold.
    is_random: bool = False
    #: Servers holding sibling sub-requests (empty for whole requests).
    sibling_servers: Tuple[int, ...] = ()
    id: int = field(default_factory=lambda: next(_request_ids))
    #: Observability span (kind ``rpc``) opened by the client when the
    #: run is traced; servers parent their job spans under it.  This is
    #: the trace-context propagation field of the wire protocol.
    span: Optional[object] = None

    @property
    def local_end(self) -> int:
        return self.local_offset + self.nbytes

    @property
    def is_small(self) -> bool:
        """Candidate for SSD redirection (either flavour)."""
        return self.is_fragment or self.is_random
