"""Cluster wiring: build the whole simulated I/O system from a config.

A :class:`Cluster` owns the environment, network, metadata server, data
servers (each with disk + SSD + optional iBridge), and a client per
compute node.  It also provides file creation (with contiguous
preallocation of each server's share, matching a freshly-written
benchmark file) and the end-of-run drain that the paper's methodology
requires (dirty data written back before the clock stops).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..audit import AuditRuntime
from ..config import ClusterConfig
from ..core.service_model import GlobalTTable
from ..devices import HardDisk
from ..devices.profiling import SeekProfile, profile_device
from ..errors import ConfigError
from ..net import Network
from ..sim import Environment
from .client import PFSClient
from .layout import StripeLayout
from .messages import ParentRequest
from .metadata import MetadataServer
from .server import DataServer

#: Seek profiles are deterministic per HDD config, so cache them — the
#: offline profiling step is expensive relative to small experiments.
_profile_cache: Dict[tuple, SeekProfile] = {}


def _profile_for(config: ClusterConfig) -> SeekProfile:
    key = (config.hdd.capacity, config.hdd.seek_base, config.hdd.seek_full,
           config.hdd.rotational_miss, config.hdd.write_settle)
    profile = _profile_cache.get(key)
    if profile is None:
        profile = profile_device(HardDisk(config.hdd))
        _profile_cache[key] = profile
    return profile


class Cluster:
    """The simulated parallel I/O system."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 trace_disk: bool = False,
                 hdd_overrides: Optional[Dict[int, object]] = None,
                 fault_plan=None, shard=None) -> None:
        """Build the cluster.

        ``hdd_overrides`` maps a server id to an :class:`HDDConfig` used
        for that server's disk(s) instead of ``config.hdd`` — for
        heterogeneous/degraded-hardware studies (one aging disk gates
        every striped request; see ``repro.experiments.degraded``).

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) installs a
        fault injector over the finished cluster; the injector is
        exposed as :attr:`faults`.  Combined with ``shard`` the plan is
        *partitioned*: this injector drives only the events targeting
        locally-owned servers, plus broadcast kinds (network windows,
        fleet-wide storms) — see ``repro.faults.partition_events``.

        ``shard`` (a :class:`repro.sim.parallel.ShardContext`) builds
        this cluster as one shard of a partitioned run: servers owned by
        other shards become :class:`~repro.pfs.remote.RemoteServerStub`
        relays, and every manager/daemon/drain only touches the local
        servers.  ``None`` (the default) is the ordinary whole-cluster
        build.
        """
        self.config = config or ClusterConfig()
        self.config.validate()
        self.shard = shard
        self.env = Environment()
        self.layout = StripeLayout(self.config.stripe_unit,
                                   self.config.num_servers)
        self.network = Network(self.env, self.config.network)
        self.mds = MetadataServer(self.env, self.config, self.network)
        overrides = hdd_overrides or {}
        for hdd_cfg in overrides.values():
            hdd_cfg.validate()
        # One audit runtime shared by all servers: one watchdog sees
        # every queue, one trace orders events across the cluster.
        self.audit: Optional[AuditRuntime] = None
        if self.config.audit.enabled:
            self.audit = AuditRuntime(self.env, self.config.audit)
        # One shared T table object per server (each server keeps its
        # own view; the MDS broadcast updates them all).
        self.servers: List[DataServer] = []
        for i in range(self.config.num_servers):
            if shard is not None and not shard.owns_server(i):
                from .remote import RemoteServerStub
                self.servers.append(RemoteServerStub(self.env, i, shard))
                continue
            server_cfg = self.config
            if i in overrides:
                import dataclasses
                server_cfg = dataclasses.replace(self.config,
                                                 hdd=overrides[i])
            self.servers.append(
                DataServer(self.env, i, server_cfg,
                           _profile_for(server_cfg),
                           t_table=GlobalTTable(), trace_disk=trace_disk,
                           audit=self.audit))
        self.mds.bind_servers(self.servers)
        # Fleet GC coordination across the per-server SSD array: the
        # "sync"/"stagger" policies need a view of every drive, so the
        # coordinator lives here rather than in any one server.
        self.gc_coordinator = None
        if (self.config.ssd.ftl_enabled
                and self.config.ssd.gc_policy != "unsync"):
            from ..devices.ftl import GCCoordinator
            self.gc_coordinator = GCCoordinator(
                self.env, self.config.ssd.gc_policy,
                self.config.ssd.gc_stagger_slot)
            for server in self.servers:
                if not server.is_remote:
                    self.gc_coordinator.register(server.ssd)
        self._clients: Dict[int, PFSClient] = {}
        self.requests: List[ParentRequest] = []
        # Observability: one tracer + metrics registry for the whole
        # cluster, attached to every instrumented component (same
        # shared-runtime shape as the audit layer above).
        self.obs = None
        if self.config.obs.enabled:
            from ..obs.runtime import ObsRuntime
            self.obs = ObsRuntime(self.env, self.config.obs)
            self.obs.wire_cluster(self)
        self.faults = None
        if fault_plan is not None and len(fault_plan):
            from ..faults import FaultInjector
            self.faults = FaultInjector(self, fault_plan, audit=self.audit,
                                        shard=shard).install()
            if self.obs is not None:
                # Fault begin/end records double as timeline marks.
                self.obs.attach_faults(self.faults)

    # ------------------------------------------------------------- clients
    def client(self, client_id: int = 0) -> PFSClient:
        """Get (or create) the client for compute node ``client_id``."""
        cl = self._clients.get(client_id)
        if cl is None:
            cl = PFSClient(self.env, client_id, self.config, self.layout,
                           self.servers, self.network, audit=self.audit)
            cl.collector = self.requests
            if self.obs is not None:
                self.obs.wire_client(cl)
            self._clients[client_id] = cl
        return cl

    # ------------------------------------------------------------- files
    def create_file(self, nbytes: int, preallocate: bool = True) -> int:
        """Create a striped file; optionally lay it out on the servers.

        Preallocation models a file that already exists on disk (the
        paper's pre-written 10 GB benchmark files): each server's share
        is contiguous in its local store.
        """
        if nbytes <= 0:
            raise ConfigError(f"file size must be positive, got {nbytes}")
        handle = self.mds.create_handle()
        if preallocate:
            for server in self.servers:
                share = self.layout.total_local_bytes(server.id, nbytes)
                server.preallocate(handle, share)
        return handle

    # ------------------------------------------------------------- lifecycle
    def drain(self) -> None:
        """Run the simulation until all queues are quiet and all dirty
        SSD data has been written back to the disks."""
        done = []
        for server in self.servers:
            if server.is_remote:
                continue
            proc = self.env.process(server.drain(),
                                    name=f"{server.name}-drain")
            done.append(proc)
        self.env.run(until=self.env.all_of(done))
        if self.audit is not None:
            self.audit.final_check()

    def shutdown(self) -> None:
        """Stop periodic daemons so ``env.run()`` can terminate."""
        for server in self.servers:
            if server.ibridge is not None:
                server.ibridge.shutdown()
        if self.audit is not None:
            self.audit.stop()
        if self.obs is not None:
            self.obs.stop()

    # ------------------------------------------------------------- stats
    @property
    def total_bytes_moved(self) -> int:
        return sum(s.stats.bytes_read + s.stats.bytes_written
                   for s in self.servers if not s.is_remote)

    def ibridge_stats(self):
        """Aggregated iBridge counters across servers (None if disabled)."""
        if not self.config.ibridge.enabled:
            return None
        from ..core.manager import IBridgeStats
        agg = IBridgeStats()
        for server in self.servers:
            if server.is_remote:
                continue
            st = server.ibridge.stats
            for field_name in vars(st):
                setattr(agg, field_name,
                        getattr(agg, field_name) + getattr(st, field_name))
        return agg
