"""repro.svc: the long-running experiment service.

This package promotes the one-shot experiment CLI into a service: a
persistent SQLite job queue + result store (:mod:`~repro.svc.store`),
an HTTP server with a Prometheus ``/metrics`` endpoint
(:mod:`~repro.svc.server`), a crash-safe worker fleet
(:mod:`~repro.svc.worker`), periodic scheduled tasks with restart
catch-up (:mod:`~repro.svc.scheduler`), and a client + CLI
(:mod:`~repro.svc.client`, ``python -m repro.svc``).

The unit of work is the existing experiment-matrix **cell** (import
path + JSON kwargs) and the unit of identity is its **stable hash** —
the same key the on-disk result cache uses — so duplicate submissions
dedup to one result row, resubmitted matrices complete with zero
simulation steps, and the service, the CLI, and every worker share one
``.ibridge-cache``.  Chaos campaigns ride the same queue through
:func:`repro.chaos.run_campaign_job`, with the nightly campaign as the
flagship scheduled task.

Architecture modelled on QCFractal (server + task queue + managers +
periodics) and IceProd (scheduled tasks, materialization); see
docs/SERVICE.md for the runbook.
"""

from .client import HttpQueue, ServiceClient, ServiceError
from .scheduler import PeriodicTask, Scheduler, nightly_chaos
from .server import ExperimentService, Reaper, make_server, serve
from .store import DEFAULT_MAX_ATTEMPTS, STATES, JobStore
from .submissions import (campaign_submission, cell_submission,
                          parse_submission)
from .worker import DirectQueue, Worker, execute_submission, run_worker

__all__ = [
    "JobStore",
    "STATES",
    "DEFAULT_MAX_ATTEMPTS",
    "ExperimentService",
    "make_server",
    "serve",
    "Reaper",
    "Worker",
    "DirectQueue",
    "HttpQueue",
    "run_worker",
    "execute_submission",
    "Scheduler",
    "PeriodicTask",
    "nightly_chaos",
    "ServiceClient",
    "ServiceError",
    "cell_submission",
    "campaign_submission",
    "parse_submission",
]
