"""``python -m repro.svc`` — serve, work, submit, status, watch.

The operational surface of the experiment service::

    # one server (persistent queue + metrics + nightly chaos)
    python -m repro.svc serve --db svc.db --port 8760 --nightly-chaos 50

    # a worker fleet (any number, any time; kill -9 is fine)
    python -m repro.svc worker --server http://127.0.0.1:8760
    python -m repro.svc worker --db svc.db          # same-host direct mode

    # submit work and watch it land
    python -m repro.svc submit --server ... cell \\
        repro.experiments.fig2:_cell_throughput \\
        --set scale=0.002 --set nprocs=16 --set size=65536
    python -m repro.svc submit --server ... campaign --seed 0 --episodes 25
    python -m repro.svc status --server ...
    python -m repro.svc watch --server ... 1 2 3

See docs/SERVICE.md for the architecture and runbook.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional


def _parse_set(pairs: List[str]) -> Dict[str, Any]:
    """``--set k=v`` pairs; values parse as JSON, falling back to str."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set needs key=value, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except ValueError:
            out[key] = raw
    return out


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.svc",
        description="Long-running experiment service: persistent job "
                    "queue, worker fleet, scheduled chaos campaigns.")
    sub = p.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP server + scheduler")
    serve.add_argument("--db", default="svc.db", metavar="PATH",
                       help="SQLite job store (default svc.db)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8760,
                       help="TCP port (0 = pick one; see --port-file)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening")
    serve.add_argument("--reaper-interval", type=float, default=5.0,
                       help="seconds between expired-lease sweeps")
    serve.add_argument("--nightly-chaos", type=int, default=None,
                       metavar="EPISODES",
                       help="schedule a daily seeded chaos campaign of "
                            "EPISODES episodes")
    serve.add_argument("--chaos-interval", type=float, default=86400.0,
                       help="seconds between chaos campaigns "
                            "(default nightly)")
    serve.add_argument("--schedule", default=None, metavar="PATH",
                       help="JSON schedule file of periodic tasks "
                            "(see docs/SERVICE.md)")
    serve.add_argument("--quiet", action="store_true")

    worker = sub.add_parser("worker", help="run one fleet worker")
    src = worker.add_mutually_exclusive_group(required=True)
    src.add_argument("--server", metavar="URL",
                     help="claim over HTTP from a running server")
    src.add_argument("--db", metavar="PATH",
                     help="claim directly from the SQLite store "
                          "(same-host mode)")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared result cache (default: "
                             "REPRO_CACHE_DIR or .ibridge-cache)")
    worker.add_argument("--lease", type=float, default=30.0,
                        help="claim lease seconds (default 30)")
    worker.add_argument("--poll", type=float, default=0.5,
                        help="idle poll seconds (default 0.5)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after N jobs (smoke tests)")
    worker.add_argument("--id", default=None, help="worker id override")
    worker.add_argument("--quiet", action="store_true")

    submit = sub.add_parser("submit", help="submit a cell or campaign")
    submit.add_argument("--server", required=True, metavar="URL")
    submit.add_argument("--max-attempts", type=int, default=3)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; print result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    what = submit.add_subparsers(dest="what", required=True)
    cell_p = what.add_parser("cell", help="one experiment-matrix cell")
    cell_p.add_argument("fn", help="import path 'pkg.mod:func'")
    cell_p.add_argument("--set", action="append", default=[],
                        metavar="K=V",
                        help="cell kwarg (JSON value); repeatable")
    cell_p.add_argument("--kwargs", default=None, metavar="JSON",
                        help="all kwargs as one JSON object")
    camp_p = what.add_parser("campaign", help="one chaos campaign")
    camp_p.add_argument("--seed", type=int, required=True)
    camp_p.add_argument("--episodes", type=int, required=True)
    camp_p.add_argument("--spec", default=None, metavar="JSON",
                        help="extra campaign spec fields as JSON")

    status = sub.add_parser("status", help="queue + worker overview")
    status.add_argument("--server", required=True, metavar="URL")
    status.add_argument("job_id", nargs="?", type=int, default=None,
                        help="show one job instead")
    status.add_argument("--limit", type=int, default=10)

    watch = sub.add_parser("watch", help="follow jobs until they settle")
    watch.add_argument("--server", required=True, metavar="URL")
    watch.add_argument("job_ids", nargs="+", type=int)
    watch.add_argument("--timeout", type=float, default=600.0)
    return p


# ------------------------------------------------------------- commands
def _cmd_serve(args) -> int:
    from .scheduler import nightly_chaos, tasks_from_file
    from .server import serve

    tasks = []
    if args.nightly_chaos:
        tasks.append(nightly_chaos(episodes=args.nightly_chaos,
                                   interval=args.chaos_interval))
    if args.schedule:
        tasks.extend(tasks_from_file(args.schedule))
    return serve(args.db, host=args.host, port=args.port, tasks=tasks,
                 reaper_interval=args.reaper_interval,
                 port_file=args.port_file,
                 log=(None if args.quiet else print))


def _cmd_worker(args) -> int:
    from .worker import DirectQueue, run_worker

    if args.server:
        from .client import HttpQueue
        queue = HttpQueue(args.server)
    else:
        from .store import JobStore
        queue = DirectQueue(JobStore(args.db))
    run_worker(queue, cache_dir=args.cache_dir, worker_id=args.id,
               lease=args.lease, poll=args.poll, max_jobs=args.max_jobs,
               log=(None if args.quiet else print), install_signals=True)
    return 0


def _job_line(job: Dict[str, Any]) -> str:
    extra = ""
    if job["state"] == "done":
        extra = " (cache)" if job["cached"] else ""
    elif job["state"] == "failed":
        extra = f" error={str(job.get('error'))[:60]!r}"
    elif job["state"] == "claimed":
        extra = f" worker={job['worker']} attempt={job['attempts']}"
    return (f"job {job['id']:5d}  {job['state']:8s} {job['kind']:9s} "
            f"key={job['key'][:12]}{extra}")


def _cmd_submit(args) -> int:
    from .client import ServiceClient

    client = ServiceClient(args.server)
    if args.what == "cell":
        kwargs = json.loads(args.kwargs) if args.kwargs else {}
        kwargs.update(_parse_set(args.set))
        job = client.submit_cell(args.fn, max_attempts=args.max_attempts,
                                 **kwargs)
    else:
        spec = json.loads(args.spec) if args.spec else {}
        spec.update({"seed": args.seed, "episodes": args.episodes})
        job = client.submit_campaign(spec, max_attempts=args.max_attempts)
    dedup = " (dedup)" if job.get("dedup") else ""
    print(_job_line(job) + dedup)
    if not args.wait:
        return 0
    final = client.wait([job["id"]], timeout=args.timeout,
                        on_change=lambda j: print(_job_line(j)))[0]
    if final["state"] == "done":
        print(repr(client.result(final["key"])))
        return 0
    return 1


def _cmd_status(args) -> int:
    from .client import ServiceClient

    client = ServiceClient(args.server)
    if args.job_id is not None:
        job = client.job(args.job_id)
        print(json.dumps(job, indent=2))
        return 0
    health = client.healthz()
    counts = health["counts"]
    print("queue: " + "  ".join(
        f"{state}={counts.get(state, 0)}"
        for state in ("queued", "claimed", "done", "failed"))
        + f"  results={counts.get('results', 0)}")
    workers = client.workers()
    alive = sum(1 for w in workers if w["alive"])
    print(f"workers: {alive}/{len(workers)} alive")
    for worker in workers:
        mark = "alive" if worker["alive"] else "gone "
        print(f"  {mark}  {worker['id']}  jobs_done={worker['jobs_done']}")
    for job in client.jobs(limit=args.limit):
        print(_job_line(job))
    return 0


def _cmd_watch(args) -> int:
    from .client import ServiceClient

    client = ServiceClient(args.server)
    final = client.wait(args.job_ids, timeout=args.timeout,
                        on_change=lambda j: print(_job_line(j)))
    return 0 if all(j["state"] == "done" for j in final) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return {"serve": _cmd_serve, "worker": _cmd_worker,
            "submit": _cmd_submit, "status": _cmd_status,
            "watch": _cmd_watch}[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
