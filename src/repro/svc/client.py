"""HTTP client for the experiment service (stdlib ``urllib`` only).

Two layers:

* :class:`ServiceClient` — the user-facing API the ``submit`` /
  ``status`` / ``watch`` CLI subcommands are built on;
* :class:`HttpQueue` — the worker-side transport implementing the same
  claim/heartbeat/complete/fail surface as
  :class:`repro.svc.worker.DirectQueue`, so a :class:`Worker` can sit
  on either side of the network without knowing.
"""

from __future__ import annotations

import base64
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional

from ..experiments.runner import decode_result


class ServiceError(RuntimeError):
    """A non-2xx response from the service (carries the status code)."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code


class ServiceClient:
    """Thin JSON-over-HTTP client for one service endpoint.

    Transient transport failures (connection refused during a server
    restart, a socket timeout, a dropped connection) are retried up to
    ``retries`` times with capped exponential backoff plus full jitter.
    An *HTTP* error is never retried — the server answered, and every
    4xx/5xx it produces is deterministic for a given request — it
    surfaces immediately as :class:`ServiceError`.  Each retry bumps
    ``retries_total`` and, when a metrics registry is attached, the
    ``svc_client_retries`` counter.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff: float = 0.1,
                 backoff_cap: float = 2.0, metrics=None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        #: Total transient-error retries performed by this client.
        self.retries_total = 0
        self._retry_counter = (metrics.counter("svc_client_retries")
                               if metrics is not None else None)
        self._jitter = random.Random()

    # ----------------------------------------------------------- plumbing
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        for attempt in range(self.retries + 1):
            req = urllib.request.Request(
                self.base_url + path, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(req,
                                            timeout=self.timeout) as resp:
                    payload = resp.read()
                    if resp.status == 204 or not payload:
                        return None
                    if raw:
                        return payload
                    return json.loads(payload.decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # Must precede URLError (HTTPError subclasses it): the
                # server answered, so retrying cannot help.
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServiceError(exc.code, detail) from None
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError):
                if attempt >= self.retries:
                    raise
                self._count_retry()
                delay = min(self.backoff_cap,
                            self.backoff * (2.0 ** attempt))
                time.sleep(delay * self._jitter.uniform(0.5, 1.0))
        raise AssertionError("unreachable")  # pragma: no cover

    def _count_retry(self) -> None:
        self.retries_total += 1
        if self._retry_counter is not None:
            self._retry_counter.inc()

    def _get(self, path: str, raw: bool = False) -> Any:
        return self._request("GET", path, raw=raw)

    def _post(self, path: str, body: Dict[str, Any]) -> Any:
        return self._request("POST", path, body)

    # -------------------------------------------------------------- public
    def healthz(self) -> Dict[str, Any]:
        return self._get("/healthz")

    def submit_cell(self, fn: str, max_attempts: int = 3,
                    **kwargs: Any) -> Dict[str, Any]:
        return self._post("/jobs", {"kind": "cell", "fn": fn,
                                    "kwargs": kwargs,
                                    "max_attempts": max_attempts})

    def submit_cells(self, cells: Iterable[Dict[str, Any]]) \
            -> List[Dict[str, Any]]:
        """Submit a matrix: each entry is ``{"fn": ..., "kwargs": {...}}``."""
        return self._post("/jobs", {"cells": list(cells)})["jobs"]

    def submit_campaign(self, spec: Dict[str, Any],
                        max_attempts: int = 3) -> Dict[str, Any]:
        return self._post("/jobs", {"kind": "campaign", "spec": spec,
                                    "max_attempts": max_attempts})

    def jobs(self, state: Optional[str] = None,
             limit: int = 100) -> List[Dict[str, Any]]:
        query = f"?limit={limit}" + (f"&state={state}" if state else "")
        return self._get("/jobs" + query)["jobs"]

    def job(self, job_id: int) -> Dict[str, Any]:
        return self._get(f"/jobs/{job_id}")

    def result(self, key: str) -> Any:
        """Fetch and decode the stored result for a key."""
        view = self._get(f"/results/{key}")
        return decode_result(base64.b64decode(view["pickle_b64"]))

    def workers(self) -> List[Dict[str, Any]]:
        return self._get("/workers")["workers"]

    def metrics_text(self) -> str:
        return self._get("/metrics", raw=True).decode("utf-8")

    def wait(self, job_ids: Iterable[int], timeout: float = 300.0,
             poll: float = 0.25,
             on_change=None) -> List[Dict[str, Any]]:
        """Poll until every job is done/failed; returns final job dicts.

        ``on_change(job)`` fires on each observed state transition.
        Raises ``TimeoutError`` if the deadline passes first.
        """
        pending = {int(j): None for j in job_ids}
        deadline = time.monotonic() + timeout
        final: Dict[int, Dict[str, Any]] = {}
        while pending:
            for job_id in list(pending):
                job = self.job(job_id)
                if job["state"] != pending[job_id]:
                    pending[job_id] = job["state"]
                    if on_change is not None:
                        on_change(job)
                if job["state"] in ("done", "failed"):
                    final[job_id] = job
                    del pending[job_id]
            if not pending:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"jobs still running after {timeout}s: "
                    f"{sorted(pending)}")
            time.sleep(poll)
        return [final[j] for j in sorted(final)]


class HttpQueue:
    """Worker-side queue transport over the server's worker API.

    Inherits :class:`ServiceClient`'s transient-error retry: a worker
    riding out a brief server restart keeps its claim loop alive
    instead of dying on the first connection refusal.  The worker API
    is idempotent per (worker, job) pair, so replaying a claim,
    heartbeat, complete or fail after an ambiguous failure is safe.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff: float = 0.1,
                 backoff_cap: float = 2.0, metrics=None) -> None:
        self._client = ServiceClient(base_url, timeout=timeout,
                                     retries=retries, backoff=backoff,
                                     backoff_cap=backoff_cap,
                                     metrics=metrics)

    @property
    def retries_total(self) -> int:
        return self._client.retries_total

    def claim(self, worker: str, lease: float) -> Optional[Dict[str, Any]]:
        return self._client._post("/claim", {"worker": worker,
                                             "lease": lease})

    def heartbeat(self, worker: str, job_id: int, lease: float) -> bool:
        resp = self._client._post("/heartbeat", {"worker": worker,
                                                 "job_id": job_id,
                                                 "lease": lease})
        return bool(resp["ok"])

    def complete(self, worker: str, job_id: int, payload: bytes,
                 cached: bool,
                 timeline: Optional[Dict[str, float]] = None) -> str:
        body = {
            "worker": worker, "job_id": job_id,
            "result_b64": base64.b64encode(payload).decode("ascii"),
            "cached": cached}
        if timeline:
            # Timeline last-value summary (series -> value): the server
            # republishes it as svc_timeline_last{series=...} gauges.
            body["timeline"] = timeline
        resp = self._client._post("/complete", body)
        return resp["status"]

    def fail(self, worker: str, job_id: int, error: str) -> str:
        resp = self._client._post("/fail", {"worker": worker,
                                            "job_id": job_id,
                                            "error": error})
        return resp["status"]
