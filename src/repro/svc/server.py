"""The experiment service: a stdlib HTTP API over the job store.

``python -m repro.svc serve`` runs one of these.  The server owns
nothing the store does not — it is a thin, threaded HTTP frontend
(QCFractal-style) plus two background threads:

* a **reaper** that periodically requeues expired claims (workers also
  requeue inline on claim, so the reaper only matters for a queue with
  no active workers);
* the **scheduler** (:mod:`repro.svc.scheduler`), when periodic tasks
  are configured.

API (all JSON unless noted):

====================  ====================================================
``GET  /healthz``      liveness probe: ``{"ok": true, ...}``
``GET  /jobs``         recent jobs; ``?state=queued&limit=50``
``GET  /jobs/<id>``    one job
``POST /jobs``         submit: one submission object or ``{"cells":[...]}``
``GET  /results/<k>``  stored result by key (JSON view + pickle base64)
``GET  /metrics``      Prometheus exposition text (not JSON)
``POST /claim``        worker API: ``{"worker", "lease"}`` -> job | 204
``POST /heartbeat``    worker API: ``{"worker", "job_id", "lease"}``
``POST /complete``     worker API: ``{"worker", "job_id", "result_b64",
                       "cached", "timeline"?}``
``POST /fail``         worker API: ``{"worker", "job_id", "error"}``
====================  ====================================================

Metrics come from a :class:`repro.obs.MetricsRegistry` — the same
instrument types the simulator samples — refreshed from the store on
every scrape: queue depth per state, worker liveness, cache-hit ratio,
and a queue-to-claim latency histogram.  Workers that ran a
timeline-enabled cell attach the run's last-value series summary to
``/complete``; the server republishes each series as a
``svc_timeline_last{series="..."}`` gauge, so one fleet scrape shows
the final queue depths / SSD occupancy of the latest runs.

The service is a trusted-network tool (results travel as pickles, like
the on-disk cache): do not expose it to hosts you would not run code
from.
"""

from __future__ import annotations

import base64
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.metrics import MetricsRegistry
from ..experiments.runner import decode_result
from .store import JobStore
from .submissions import parse_submission

#: Queue-to-claim latency buckets (seconds): sub-poll to "stuck".
CLAIM_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

#: A worker is "alive" if it heartbeat within this many seconds.
DEFAULT_LIVENESS_WINDOW = 60.0


class ExperimentService:
    """Store + metrics + submission logic behind the HTTP handler."""

    def __init__(self, store: JobStore,
                 liveness_window: float = DEFAULT_LIVENESS_WINDOW) -> None:
        self.store = store
        self.liveness_window = liveness_window
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._workers_alive = 0
        self._workers_known = 0
        self._lat_cursor = 0
        reg = self.registry
        for state in ("queued", "claimed", "done", "failed"):
            reg.gauge("svc_jobs",
                      (lambda s=state: float(self._counts.get(s, 0))),
                      state=state)
        reg.gauge("svc_results", lambda: float(self._counts.get("results", 0)))
        reg.gauge("svc_workers_alive", lambda: float(self._workers_alive))
        reg.gauge("svc_workers_known", lambda: float(self._workers_known))
        reg.gauge("svc_cache_hit_ratio", self._cache_hit_ratio)
        self.submissions = reg.counter("svc_submissions_total")
        self.dedup_hits = reg.counter("svc_dedup_hits_total")
        self.claim_latency = reg.histogram("svc_claim_latency_seconds",
                                           CLAIM_LATENCY_BUCKETS)
        #: Last-seen timeline series values reported by workers on
        #: /complete (series key -> value); each key gets a lazily
        #: registered svc_timeline_last gauge.
        self._timeline_last: Dict[str, float] = {}

    def _cache_hit_ratio(self) -> float:
        done = self._counts.get("done", 0)
        return (self._counts.get("done_cached", 0) / done) if done else 0.0

    # ---------------------------------------------------------- metrics
    def refresh_metrics(self) -> None:
        """Pull fresh queue/worker figures from the store (per scrape)."""
        counts = self.store.counts()
        workers = self.store.workers(self.liveness_window)
        with self._lock:
            self._counts = counts
            self._workers_known = len(workers)
            self._workers_alive = sum(1 for w in workers if w["alive"])
            rows, self._lat_cursor = \
                self.store.claim_latencies(self._lat_cursor)
            for _job_id, latency in rows:
                self.claim_latency.observe(latency)

    def metrics_text(self) -> str:
        self.refresh_metrics()
        return self.registry.to_prometheus_text()

    def record_timeline(self, timeline: Dict[str, Any]) -> int:
        """Fold a worker's per-series last-value summary into /metrics.

        Returns the number of series recorded; malformed entries are
        dropped (the worker API stays permissive — a bad summary must
        not fail the result publish riding the same request).
        """
        recorded = 0
        with self._lock:
            for series, value in timeline.items():
                if not isinstance(series, str) \
                        or not isinstance(value, (int, float)):
                    continue
                if series not in self._timeline_last:
                    self.registry.gauge(
                        "svc_timeline_last",
                        (lambda s=series:
                         float(self._timeline_last.get(s, 0.0))),
                        series=series)
                self._timeline_last[series] = float(value)
                recorded += 1
        return recorded

    # ------------------------------------------------------- submissions
    def submit_one(self, body: Dict[str, Any]) -> Dict[str, Any]:
        kind, spec, key = parse_submission(body)
        max_attempts = int(body.get("max_attempts", 3))
        job = self.store.submit(kind, spec, key, max_attempts=max_attempts)
        self.submissions.inc()
        if job.get("dedup"):
            self.dedup_hits.inc()
        return job

    def submit(self, body: Any) -> Any:
        """One submission object, or ``{"cells": [...]}`` for a matrix."""
        if isinstance(body, dict) and "cells" in body:
            jobs = [self.submit_one({"kind": "cell", **entry})
                    for entry in body["cells"]]
            return {"jobs": jobs}
        return self.submit_one(body)

    # ------------------------------------------------------------ results
    def result_view(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self.store.result(key)
        if payload is None:
            return None
        view: Dict[str, Any] = {
            "key": key,
            "pickle_b64": base64.b64encode(payload).decode("ascii"),
        }
        try:
            value = decode_result(payload)
            json.dumps(value)  # probe: only embed if JSON-able
            view["value"] = value
        except Exception:
            view["value"] = None
        return view


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP to the :class:`ExperimentService` on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-svc"

    # The default handler logs every request to stderr; route through
    # the server's optional log hook instead (quiet by default).
    def log_message(self, fmt: str, *args: Any) -> None:
        log = getattr(self.server, "log", None)
        if log is not None:
            log(f"{self.address_string()} {fmt % args}")

    @property
    def svc(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------ plumbing
    def _send(self, code: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, obj: Any) -> None:
        self._send(code, json.dumps(obj).encode("utf-8"))

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        return json.loads(raw.decode("utf-8"))

    # -------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            if url.path == "/healthz":
                self._json(200, {"ok": True,
                                 "now": self.svc.store._now(),
                                 "counts": self.svc.store.counts()})
            elif url.path == "/metrics":
                self._send(200, self.svc.metrics_text().encode("utf-8"),
                           content_type="text/plain; version=0.0.4")
            elif url.path == "/jobs":
                query = parse_qs(url.query)
                state = (query.get("state") or [None])[0]
                limit = int((query.get("limit") or ["100"])[0])
                self._json(200, {"jobs": self.svc.store.jobs(state, limit)})
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.svc.store.job(int(parts[1]))
                if job is None:
                    self._error(404, f"no job {parts[1]}")
                else:
                    self._json(200, job)
            elif len(parts) == 2 and parts[0] == "results":
                view = self.svc.result_view(parts[1])
                if view is None:
                    self._error(404, f"no result for {parts[1]}")
                else:
                    self._json(200, view)
            elif url.path == "/workers":
                self._json(200, {"workers": self.svc.store.workers(
                    self.svc.liveness_window)})
            else:
                self._error(404, f"unknown path {url.path}")
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            body = self._body()
            if self.path == "/jobs":
                try:
                    self._json(201, self.svc.submit(body))
                except ValueError as exc:
                    self._error(400, str(exc))
            elif self.path == "/claim":
                job = self.svc.store.claim(body["worker"],
                                           float(body.get("lease", 30.0)))
                if job is None:
                    self._send(204, b"")
                else:
                    self._json(200, job)
            elif self.path == "/heartbeat":
                ok = self.svc.store.heartbeat(
                    body["worker"], int(body["job_id"]),
                    float(body.get("lease", 30.0)))
                self._json(200, {"ok": ok})
            elif self.path == "/complete":
                payload = base64.b64decode(body["result_b64"])
                status = self.svc.store.complete(
                    int(body["job_id"]), body["worker"], payload,
                    cached=bool(body.get("cached", False)))
                timeline = body.get("timeline")
                if isinstance(timeline, dict):
                    self.svc.record_timeline(timeline)
                self._json(200, {"status": status})
            elif self.path == "/fail":
                status = self.svc.store.fail(
                    int(body["job_id"]), body["worker"],
                    str(body.get("error", "")))
                self._json(200, {"status": status})
            else:
                self._error(404, f"unknown path {self.path}")
        except (KeyError, ValueError) as exc:
            self._error(400, f"bad request: {exc}")
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + optional log hook."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: ExperimentService, log=None) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.log = log


def make_server(store: JobStore, host: str = "127.0.0.1", port: int = 0,
                liveness_window: float = DEFAULT_LIVENESS_WINDOW,
                log=None) -> ServiceServer:
    """Bind (but do not run) a service server; ``port=0`` picks a port."""
    service = ExperimentService(store, liveness_window=liveness_window)
    return ServiceServer((host, port), service, log=log)


class Reaper(threading.Thread):
    """Periodically requeue expired claims (server-side safety net)."""

    def __init__(self, store: JobStore, interval: float = 5.0,
                 log=None) -> None:
        super().__init__(name="svc-reaper", daemon=True)
        self.store = store
        self.interval = interval
        self.stop_event = threading.Event()
        self.log = log or (lambda msg: None)

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            try:
                moved = self.store.requeue_expired()
                if moved:
                    self.log(f"reaper: recovered {moved} expired claim(s)")
            except Exception as exc:
                self.log(f"reaper: {exc}")

    def stop(self) -> None:
        self.stop_event.set()


def serve(db_path: str, host: str = "127.0.0.1", port: int = 8760,
          tasks: Optional[List] = None, reaper_interval: float = 5.0,
          port_file: Optional[str] = None, log=print,
          ready: Optional[threading.Event] = None) -> int:
    """Run the service until SIGTERM/SIGINT (the CLI entry point).

    ``port_file`` (written after bind) lets scripts use ``--port 0``
    and discover the chosen port; ``ready`` is set once serving.
    """
    import signal

    store = JobStore(db_path)
    httpd = make_server(store, host, port, log=None)
    bound = httpd.server_address[1]
    if port_file:
        with open(port_file, "w", encoding="utf-8") as fh:
            fh.write(str(bound))
    reaper = Reaper(store, reaper_interval, log=log)
    reaper.start()
    scheduler = None
    if tasks:
        from .scheduler import Scheduler
        scheduler = Scheduler(store, tasks, log=log)
        scheduler.start()

    def _stop(_signum, _frame):
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    if log:
        log(f"svc: serving {db_path} on http://{host}:{bound} "
            f"({len(tasks or [])} scheduled task(s))")
    if ready is not None:
        ready.set()
    try:
        httpd.serve_forever(poll_interval=0.2)
    finally:
        reaper.stop()
        if scheduler is not None:
            scheduler.stop()
        httpd.server_close()
    if log:
        log("svc: shut down cleanly")
    return 0
