"""Periodic service tasks with restart catch-up (IceProd-style).

A :class:`PeriodicTask` fires once per ``interval``-sized *window* of
wall-clock time (window ``k`` covers ``[k*interval, (k+1)*interval)``):
a nightly chaos campaign is ``interval=86400``.  The scheduler's state
is one watermark per task in the store's ``schedules`` table — the last
window it submitted for — which gives restart semantics for free:

* **catch-up**: if the service was down across one or more whole
  windows, the next tick submits exactly *one* job for the current
  window (missed windows are not replayed N times — a nightly campaign
  that missed three nights should run once now, not thrice);
* **no double-fire**: restarting within an already-submitted window
  does nothing, because the watermark persisted.

Each firing salts the job spec with its window number, so consecutive
windows produce distinct dedup keys while retries *within* a window
dedup to the same job.  Campaign seeds derive from the window too —
every night fuzzes fresh territory, deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .store import JobStore
from .submissions import parse_submission


@dataclass(frozen=True)
class PeriodicTask:
    """One recurring submission.

    ``make_submission(window)`` returns a ``POST /jobs``-shaped dict;
    it receives the window number so it can salt the spec (and derive
    per-window seeds).
    """

    name: str
    interval: float
    make_submission: Callable[[int], Dict[str, Any]]


def nightly_chaos(episodes: int = 50, base_seed: int = 0,
                  interval: float = 86400.0,
                  name: str = "nightly-chaos") -> PeriodicTask:
    """The flagship periodic task: a seeded chaos campaign per night.

    The campaign seed is ``base_seed + window`` — distinct but
    reproducible per night (rerunning night *k*'s job fuzzes the same
    episodes and must produce the same digest).
    """

    def make(window: int) -> Dict[str, Any]:
        return {"kind": "campaign",
                "spec": {"seed": base_seed + window, "episodes": episodes,
                         "window": window, "task": name}}

    return PeriodicTask(name=name, interval=interval, make_submission=make)


def tasks_from_file(path: str) -> List[PeriodicTask]:
    """Load tasks from a JSON schedule file.

    Format: a list of ``{"name", "interval", "submission"}`` where
    ``submission`` is a ``POST /jobs`` object; ``$WINDOW`` anywhere in
    a campaign spec's values is replaced with the window number, and a
    ``"window"`` salt key is always added to campaign specs.
    """
    import json

    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    tasks: List[PeriodicTask] = []
    for entry in entries:
        submission = entry["submission"]

        def make(window: int, _sub=submission) -> Dict[str, Any]:
            sub = json.loads(json.dumps(_sub))  # deep copy
            spec = sub.get("spec")
            if isinstance(spec, dict):
                for k, v in list(spec.items()):
                    if v == "$WINDOW":
                        spec[k] = window
                spec.setdefault("window", window)
            if sub.get("kind") == "cell":
                sub.setdefault("kwargs", {})
            return sub

        tasks.append(PeriodicTask(name=entry["name"],
                                  interval=float(entry["interval"]),
                                  make_submission=make))
    return tasks


class Scheduler(threading.Thread):
    """Tick loop that materializes due periodic tasks as jobs."""

    def __init__(self, store: JobStore, tasks: List[PeriodicTask],
                 poll: float = 1.0, log=None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name="svc-scheduler", daemon=True)
        self.store = store
        self.tasks = list(tasks)
        self.poll = poll
        self.log = log or (lambda msg: None)
        self.clock = clock or store.clock or time.time
        self.stop_event = threading.Event()

    # ------------------------------------------------------------- ticking
    def tick(self, now: Optional[float] = None) -> int:
        """Submit every task whose current window is unserved.

        Idempotent and crash-safe: the watermark is written *after* the
        submission, and a crash between the two only re-submits into
        the store's dedup (same window -> same key -> same job).
        Returns the number of jobs submitted.
        """
        now = float(self.clock() if now is None else now)
        fired = 0
        for task in self.tasks:
            window = int(now // task.interval)
            last = self.store.schedule_last_run(task.name)
            if last is not None and int(last // task.interval) >= window:
                continue  # this window already served
            submission = task.make_submission(window)
            kind, spec, key = parse_submission(submission)
            job = self.store.submit(
                kind, spec, key,
                max_attempts=int(submission.get("max_attempts", 3)))
            self.store.schedule_mark_run(task.name, now, job["id"])
            fired += 1
            self.log(f"scheduler: {task.name} window {window} -> "
                     f"job {job['id']}"
                     + (" (dedup)" if job.get("dedup") else ""))
        return fired

    # ------------------------------------------------------------ lifecycle
    def run(self) -> None:
        while not self.stop_event.is_set():
            try:
                self.tick()
            except Exception as exc:
                self.log(f"scheduler: {exc}")
            self.stop_event.wait(self.poll)

    def stop(self) -> None:
        self.stop_event.set()
