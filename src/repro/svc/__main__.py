"""Entry point: ``python -m repro.svc`` (see :mod:`repro.svc.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
