"""Worker-fleet process: claim cells, execute, heartbeat, repeat.

A worker is deliberately dumb — all coordination state lives in the
:class:`~repro.svc.store.JobStore` (directly, or behind the server's
worker API).  The loop:

1. ``claim`` the oldest queued job under a lease;
2. execute it through the existing experiment-cell machinery — a warm
   ``.ibridge-cache`` hit completes the job with **zero** simulation
   steps, which is how resubmitted matrices finish instantly;
3. ``heartbeat`` on a side thread while the cell simulates, extending
   the lease so a long cell is not mistaken for a dead worker;
4. ``complete`` (or ``fail``) and go back to 1.

``kill -9`` safety falls out of the store's lease protocol: a killed
worker stops heartbeating, its claim expires, and the job requeues for
another worker — and the exactly-once result publish means even a
*zombie* (a worker that was only presumed dead) cannot double-record
the result.  There is deliberately no worker-side persistence: a worker
owns nothing the store does not.

Workers reach the queue through either transport:

* :class:`DirectQueue` — same-host access to the SQLite file; what
  crash tests and single-box fleets use.
* ``repro.svc.client.HttpQueue`` — the server's ``/claim`` /
  ``/heartbeat`` / ``/complete`` / ``/fail`` endpoints for fleets on
  the far side of a network (QCFractal's manager model).
"""

from __future__ import annotations

import os
import threading
import traceback
import uuid
from typing import Any, Callable, Dict, Optional, Tuple

from ..experiments.runner import (ResultCache, cell, encode_result)
from .store import JobStore

DEFAULT_LEASE = 30.0
DEFAULT_POLL = 0.5


# ----------------------------------------------------------- execution
def execute_submission(kind: str, spec: Dict[str, Any], key: str,
                       cache_dir: Optional[str] = None,
                       use_cache: bool = True) -> Tuple[Any, bool]:
    """Run one job payload; returns ``(value, from_cache)``.

    ``kind="cell"`` goes through the shared on-disk result cache under
    the submitter's key — the same key ``run_cells`` would compute, so
    the service and the CLI warm each other's caches.  ``campaign``
    jobs always execute (a fuzz campaign that does not run has no
    value); their dedup happens at the store's result table instead.
    """
    if kind == "cell":
        c = cell(spec["fn"], **spec["kwargs"])
        cache = ResultCache(cache_dir) if use_cache else None
        if cache is not None:
            hit, value = cache.get(key)
            if hit:
                return value, True
        value = c.resolve()(**dict(c.kwargs))
        if cache is not None:
            cache.put(key, value)
        return value, False
    if kind == "campaign":
        from ..chaos.runner import run_campaign_job
        return run_campaign_job(spec), False
    raise ValueError(f"unknown job kind {kind!r}")


def timeline_last_values(value: Any) -> Dict[str, float]:
    """Extract a result's timeline last-value gauges (``{series: v}``).

    Timeline-enabled runs attach flat ``timeline_last[<series>]`` float
    extras to their results (see :func:`repro.workloads.base.run_workload`);
    workers ship them with ``complete`` so the service's ``/metrics``
    can expose the fleet's last-seen series values without ever
    unpickling a result.  Returns ``{}`` for results without extras.
    """
    extra = getattr(value, "extra", None)
    if extra is None and isinstance(value, dict):
        extra = value.get("extra")
    if not isinstance(extra, dict):
        return {}
    out: Dict[str, float] = {}
    for key, val in extra.items():
        if (isinstance(key, str) and key.startswith("timeline_last[")
                and key.endswith("]") and isinstance(val, (int, float))):
            out[key[len("timeline_last["):-1]] = float(val)
    return out


# ------------------------------------------------------------- queue API
class DirectQueue:
    """Queue transport backed by direct access to the SQLite store."""

    def __init__(self, store: JobStore) -> None:
        self.store = store

    def claim(self, worker: str, lease: float) -> Optional[Dict[str, Any]]:
        return self.store.claim(worker, lease)

    def heartbeat(self, worker: str, job_id: int, lease: float) -> bool:
        return self.store.heartbeat(worker, job_id, lease)

    def complete(self, worker: str, job_id: int, payload: bytes,
                 cached: bool,
                 timeline: Optional[Dict[str, float]] = None) -> str:
        # Direct store access has no /metrics surface; the timeline
        # summary only matters on the HTTP transport.
        return self.store.complete(job_id, worker, payload, cached=cached)

    def fail(self, worker: str, job_id: int, error: str) -> str:
        return self.store.fail(job_id, worker, error)


# --------------------------------------------------------------- worker
class Worker:
    """One claim-execute-complete loop (run it in a thread or process)."""

    def __init__(self, queue, cache_dir: Optional[str] = None,
                 worker_id: Optional[str] = None,
                 lease: float = DEFAULT_LEASE, poll: float = DEFAULT_POLL,
                 max_jobs: Optional[int] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.queue = queue
        self.cache_dir = cache_dir
        self.id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.lease = lease
        self.poll = poll
        self.max_jobs = max_jobs
        self.log = log or (lambda msg: None)
        self.jobs_done = 0
        self.stop_event = threading.Event()

    # one heartbeat every third of the lease keeps two missed beats of
    # slack before the claim expires.
    @property
    def _beat_interval(self) -> float:
        return max(0.05, self.lease / 3.0)

    def stop(self) -> None:
        """Ask the loop to exit after the current job."""
        self.stop_event.set()

    def run(self) -> int:
        """Claim/execute until stopped (or ``max_jobs``); jobs done."""
        self.log(f"worker {self.id} up (lease {self.lease}s)")
        while not self.stop_event.is_set():
            try:
                job = self.queue.claim(self.id, self.lease)
            except Exception as exc:  # queue/transport hiccup: back off
                self.log(f"worker {self.id}: claim error: {exc}")
                self.stop_event.wait(self.poll)
                continue
            if job is None:
                if self.stop_event.wait(self.poll):
                    break
                continue
            self._run_job(job)
            self.jobs_done += 1
            if self.max_jobs is not None and self.jobs_done >= self.max_jobs:
                break
        self.log(f"worker {self.id} down ({self.jobs_done} job(s))")
        return self.jobs_done

    def _run_job(self, job: Dict[str, Any]) -> None:
        job_id = job["id"]
        self.log(f"worker {self.id}: job {job_id} "
                 f"({job['kind']}, attempt {job['attempts']})")
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._beat_loop, args=(job_id, beat_stop),
            name=f"{self.id}-beat", daemon=True)
        beater.start()
        try:
            value, cached = execute_submission(
                job["kind"], job["spec"], job["key"], self.cache_dir)
            payload = encode_result(value)
        except Exception:
            beat_stop.set()
            beater.join()
            err = traceback.format_exc(limit=20)
            status = self.queue.fail(self.id, job_id, err)
            self.log(f"worker {self.id}: job {job_id} raised -> {status}")
            return
        beat_stop.set()
        beater.join()
        status = self.queue.complete(self.id, job_id, payload, cached,
                                     timeline=timeline_last_values(value))
        self.log(f"worker {self.id}: job {job_id} "
                 f"{'cache-hit' if cached else 'executed'} -> {status}")

    def _beat_loop(self, job_id: int, stop: threading.Event) -> None:
        while not stop.wait(self._beat_interval):
            try:
                if not self.queue.heartbeat(self.id, job_id, self.lease):
                    # Lease lost (we were presumed dead).  Keep
                    # computing — complete() is stale-safe — but stop
                    # beating a claim that is no longer ours.
                    self.log(f"worker {self.id}: lost lease on {job_id}")
                    return
            except Exception as exc:
                self.log(f"worker {self.id}: heartbeat error: {exc}")


def run_worker(queue, cache_dir: Optional[str] = None,
               worker_id: Optional[str] = None, lease: float = DEFAULT_LEASE,
               poll: float = DEFAULT_POLL, max_jobs: Optional[int] = None,
               log: Optional[Callable[[str], None]] = print,
               install_signals: bool = False) -> int:
    """Build and run one :class:`Worker`; returns jobs completed.

    ``install_signals`` hooks SIGTERM/SIGINT to a graceful stop (finish
    the current job, then exit) — used by the CLI entry point.
    """
    worker = Worker(queue, cache_dir=cache_dir, worker_id=worker_id,
                    lease=lease, poll=poll, max_jobs=max_jobs, log=log)
    if install_signals:
        import signal

        def _stop(_signum, _frame):
            worker.stop()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    return worker.run()
