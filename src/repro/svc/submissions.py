"""Submission shapes and dedup keys shared by server, client, and tests.

A submission is a plain JSON dict — the wire format of ``POST /jobs``
and the ``spec`` column of the job store:

* ``{"kind": "cell", "fn": "pkg.mod:func", "kwargs": {...}}`` — one
  experiment-matrix cell, executed through the import-path + result-
  cache machinery of :mod:`repro.experiments.runner`;
* ``{"kind": "campaign", "spec": {"seed": 0, "episodes": 25, ...}}`` —
  one chaos campaign via :func:`repro.chaos.run_campaign_job`.

Keys are computed **server-side** from the normalized (JSON
round-tripped) spec, so two clients submitting the same work can never
disagree about identity.  Cell keys are exactly the runner's cache keys
under the *null* context token — the key a flag-less CLI run would
use — which is what lets the service, the CLI, and the worker fleet
share one ``.ibridge-cache``.  Cell kwargs are therefore JSON-only by
contract: tuples, enums, and dataclasses do not survive the wire and
are rejected up front.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from .. import __version__
from ..experiments.runner import (CACHE_SCHEMA, cell, cell_key,
                                  null_context_token, stable_hash)

KINDS = ("cell", "campaign")


def _json_roundtrip(obj: Any) -> Any:
    """Force the value through JSON so key == key-of-what-is-stored."""
    try:
        return json.loads(json.dumps(obj))
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"submission payloads must be JSON-only (got {obj!r}): {exc}")


def cell_submission(fn: str, kwargs: Dict[str, Any]) \
        -> Tuple[str, Dict[str, Any], str]:
    """Normalize one cell submission -> ``(kind, spec, key)``."""
    if not isinstance(fn, str) or ":" not in fn:
        raise ValueError(f"cell fn must look like 'pkg.mod:func', got {fn!r}")
    if not isinstance(kwargs, dict):
        raise ValueError(f"cell kwargs must be an object, got {kwargs!r}")
    kwargs = _json_roundtrip(kwargs)
    spec = {"fn": fn, "kwargs": kwargs}
    key = cell_key(cell(fn, **kwargs), null_context_token())
    return "cell", spec, key


def campaign_submission(spec: Dict[str, Any]) \
        -> Tuple[str, Dict[str, Any], str]:
    """Normalize one campaign submission -> ``(kind, spec, key)``.

    The key covers the whole spec plus the package version, so a
    scheduler salting the spec (e.g. ``{"window": 20123}``) gets a
    distinct job per window while identical resubmissions dedup.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"campaign spec must be an object, got {spec!r}")
    for field in ("seed", "episodes"):
        if field not in spec:
            raise ValueError(f"campaign spec needs {field!r}")
    spec = _json_roundtrip(spec)
    key = stable_hash({"kind": "campaign", "schema": CACHE_SCHEMA,
                       "version": __version__, "spec": spec})
    return "campaign", spec, key


def parse_submission(body: Dict[str, Any]) \
        -> Tuple[str, Dict[str, Any], str]:
    """Validate one ``POST /jobs`` submission object -> spec + key."""
    if not isinstance(body, dict):
        raise ValueError("submission must be a JSON object")
    kind = body.get("kind")
    if kind == "cell":
        return cell_submission(body.get("fn"), body.get("kwargs") or {})
    if kind == "campaign":
        return campaign_submission(body.get("spec") or {})
    raise ValueError(f"unknown submission kind {kind!r} "
                     f"(expected one of {KINDS})")
