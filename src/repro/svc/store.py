"""SQLite-backed persistent job queue and result store.

The durable heart of the experiment service (:mod:`repro.svc`): every
submission, claim, heartbeat, completion, and scheduled-task watermark
lives in one SQLite file, so the server, the worker fleet, and the
scheduler can all crash and restart without losing or double-running
work.  The design follows the queue-in-a-database pattern of QCFractal
(server + managers polling a task queue) and IceProd (scheduled tasks
with materialized state), scaled down to stdlib ``sqlite3``.

Keys and dedup
    Jobs are keyed by the *stable hash* of their payload — for cells,
    exactly :func:`repro.experiments.runner.cell_key`, i.e. the same
    key the on-disk result cache uses.  Submitting a duplicate while an
    equivalent job is queued/claimed returns the existing job;
    submitting after one finished creates a job row that is *born
    done*, satisfied from the stored result.  Either way there is at
    most one active job and exactly one result row per key.

Leases
    A claim grants a lease (``lease_expires``); workers heartbeat to
    extend it.  A worker that dies (``kill -9`` included) simply stops
    heartbeating, and :meth:`JobStore.requeue_expired` — run inline on
    every claim and periodically by the server's reaper — returns the
    job to the queue.  ``attempts`` counts claims; a job whose lease
    expires with ``attempts >= max_attempts`` is marked ``failed``
    instead of requeued, so a crash-looping cell cannot poison the
    fleet forever.

Exactly-once results
    Results are published with ``INSERT OR IGNORE`` on the key, so a
    *zombie* worker (lease expired, job re-claimed, but the old process
    is still running) completing late cannot create a second result
    row — and because cells are deterministic, whichever attempt lands
    first wrote the same bytes the other would have.

Every method opens a short-lived connection (WAL mode, busy timeout),
which makes the store safe to share between the server's HTTP threads,
the scheduler thread, and any number of worker processes on one host.
All timestamps come from an injectable ``clock`` so tests can expire
leases without sleeping.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Job lifecycle: ``queued -> claimed -> done | failed`` (claimed jobs
#: whose lease expires loop back to ``queued`` until attempts run out).
STATES = ("queued", "claimed", "done", "failed")

DEFAULT_MAX_ATTEMPTS = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    kind          TEXT NOT NULL,
    spec          TEXT NOT NULL,
    key           TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'queued',
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    worker        TEXT,
    lease_expires REAL,
    created_at    REAL NOT NULL,
    claimed_at    REAL,
    finished_at   REAL,
    cached        INTEGER NOT NULL DEFAULT 0,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_active_key
    ON jobs(key) WHERE state IN ('queued', 'claimed');
CREATE TABLE IF NOT EXISTS results (
    key        TEXT PRIMARY KEY,
    payload    BLOB NOT NULL,
    job_id     INTEGER,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS workers (
    id         TEXT PRIMARY KEY,
    started_at REAL NOT NULL,
    last_beat  REAL NOT NULL,
    jobs_done  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS schedules (
    name        TEXT PRIMARY KEY,
    last_run    REAL,
    last_job_id INTEGER
);
"""


def _job_dict(row: sqlite3.Row) -> Dict[str, Any]:
    job = dict(row)
    job["spec"] = json.loads(job["spec"])
    job["cached"] = bool(job["cached"])
    return job


class JobStore:
    """Persistent job queue + result store over one SQLite file."""

    def __init__(self, path: str, clock: Callable[[], float] = time.time,
                 busy_timeout: float = 30.0) -> None:
        self.path = path
        self.clock = clock
        self.busy_timeout = busy_timeout
        #: Test hook: called inside the completion transaction right
        #: before commit (the kill-during-commit crash test hangs here
        #: and gets SIGKILLed to prove the transaction rolls back).
        self._pre_commit: Optional[Callable[[], None]] = None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with self._con() as con:
            con.executescript(_SCHEMA)

    # ----------------------------------------------------------- plumbing
    @contextmanager
    def _con(self) -> Iterator[sqlite3.Connection]:
        """A short-lived autocommit connection (explicit BEGIN below)."""
        con = sqlite3.connect(self.path, timeout=self.busy_timeout,
                              isolation_level=None)
        con.row_factory = sqlite3.Row
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        try:
            yield con
        finally:
            con.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One IMMEDIATE write transaction on a fresh connection."""
        with self._con() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                yield con
            except BaseException:
                con.execute("ROLLBACK")
                raise
            else:
                con.execute("COMMIT")

    def _now(self) -> float:
        return float(self.clock())

    # --------------------------------------------------------- submission
    def submit(self, kind: str, spec: Dict[str, Any], key: str,
               max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> Dict[str, Any]:
        """Enqueue one job (or dedup against an equivalent one).

        Returns the job dict with an extra ``dedup`` flag:

        * an active (queued/claimed) job with the same key exists —
          that job is returned, no new row;
        * a result row for the key exists — a new job row is created
          already ``done`` (``cached`` set), satisfied from the store;
        * otherwise a fresh ``queued`` job is created.
        """
        now = self._now()
        with self._txn() as con:
            row = con.execute(
                "SELECT * FROM jobs WHERE key = ? AND "
                "state IN ('queued','claimed') LIMIT 1", (key,)).fetchone()
            if row is not None:
                job = _job_dict(row)
                job["dedup"] = True
                return job
            have_result = con.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
            if have_result is not None:
                cur = con.execute(
                    "INSERT INTO jobs (kind, spec, key, state, "
                    "max_attempts, created_at, finished_at, cached) "
                    "VALUES (?,?,?,'done',?,?,?,1)",
                    (kind, json.dumps(spec, sort_keys=True), key,
                     max_attempts, now, now))
            else:
                cur = con.execute(
                    "INSERT INTO jobs (kind, spec, key, max_attempts, "
                    "created_at) VALUES (?,?,?,?,?)",
                    (kind, json.dumps(spec, sort_keys=True), key,
                     max_attempts, now))
            row = con.execute("SELECT * FROM jobs WHERE id = ?",
                              (cur.lastrowid,)).fetchone()
            job = _job_dict(row)
            job["dedup"] = have_result is not None
            return job

    # ------------------------------------------------------------ leasing
    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Recover jobs whose worker stopped heartbeating.

        Expired claims requeue (``queued``, worker cleared) unless the
        job already burned ``max_attempts`` claims, in which case it is
        ``failed``.  Returns the number of rows transitioned.
        """
        now = self._now() if now is None else now
        with self._txn() as con:
            return self._requeue_expired(con, now)

    def _requeue_expired(self, con: sqlite3.Connection, now: float) -> int:
        failed = con.execute(
            "UPDATE jobs SET state='failed', finished_at=?, "
            "error=COALESCE(error,'') || '[lease expired; attempts "
            "exhausted]' WHERE state='claimed' AND lease_expires < ? "
            "AND attempts >= max_attempts", (now, now)).rowcount
        requeued = con.execute(
            "UPDATE jobs SET state='queued', worker=NULL, "
            "lease_expires=NULL WHERE state='claimed' AND "
            "lease_expires < ?", (now,)).rowcount
        return failed + requeued

    def claim(self, worker: str, lease: float) -> Optional[Dict[str, Any]]:
        """Atomically claim the oldest queued job (FIFO); None if idle.

        Also requeues expired claims first (so a single-worker
        deployment recovers orphans with no server reaper) and records
        the worker's liveness beat.
        """
        now = self._now()
        with self._txn() as con:
            self._requeue_expired(con, now)
            self._beat(con, worker, now)
            row = con.execute(
                "SELECT id FROM jobs WHERE state='queued' "
                "ORDER BY id LIMIT 1").fetchone()
            if row is None:
                return None
            con.execute(
                "UPDATE jobs SET state='claimed', worker=?, "
                "lease_expires=?, claimed_at=?, attempts=attempts+1 "
                "WHERE id=? AND state='queued'",
                (worker, now + lease, now, row["id"]))
            job = con.execute("SELECT * FROM jobs WHERE id=?",
                              (row["id"],)).fetchone()
            return _job_dict(job)

    def heartbeat(self, worker: str, job_id: int, lease: float) -> bool:
        """Extend the lease on a claimed job; False if no longer ours.

        A False return tells the worker its lease already expired and
        the job was requeued (possibly re-claimed elsewhere): finish
        quietly — the completion path is stale-safe — but expect the
        result to be attributed to the other attempt.
        """
        now = self._now()
        with self._txn() as con:
            self._beat(con, worker, now)
            changed = con.execute(
                "UPDATE jobs SET lease_expires=? WHERE id=? AND "
                "worker=? AND state='claimed'",
                (now + lease, job_id, worker)).rowcount
            return changed > 0

    def _beat(self, con: sqlite3.Connection, worker: str,
              now: float) -> None:
        con.execute(
            "INSERT INTO workers (id, started_at, last_beat) "
            "VALUES (?,?,?) ON CONFLICT(id) DO UPDATE SET last_beat=?",
            (worker, now, now, now))

    # --------------------------------------------------------- completion
    def complete(self, job_id: int, worker: str, payload: bytes,
                 cached: bool = False) -> str:
        """Publish a result and close the job; returns the outcome.

        * ``"done"`` — we held the claim; result stored, job done.
        * ``"done-late"`` — our lease had expired and the job sat
          requeued; the result is stored (exactly once) and the job
          closed anyway, since a deterministic cell's late result is
          *the* result.
        * ``"stale"`` — another worker holds (or finished) the job;
          the result row is still published idempotently, the job row
          is left to the current owner.
        """
        now = self._now()
        with self._con() as con:
            con.execute("BEGIN IMMEDIATE")
            try:
                con.execute(
                    "INSERT OR IGNORE INTO results "
                    "(key, payload, job_id, created_at) "
                    "SELECT key, ?, id, ? FROM jobs WHERE id=?",
                    (payload, now, job_id))
                row = con.execute(
                    "SELECT state, worker FROM jobs WHERE id=?",
                    (job_id,)).fetchone()
                if row is None:
                    outcome = "stale"
                elif row["state"] == "claimed" and row["worker"] == worker:
                    con.execute(
                        "UPDATE jobs SET state='done', finished_at=?, "
                        "cached=? WHERE id=?",
                        (now, 1 if cached else 0, job_id))
                    con.execute(
                        "UPDATE workers SET jobs_done=jobs_done+1, "
                        "last_beat=? WHERE id=?", (now, worker))
                    outcome = "done"
                elif row["state"] == "queued":
                    con.execute(
                        "UPDATE jobs SET state='done', finished_at=?, "
                        "worker=?, cached=? WHERE id=?",
                        (now, worker, 1 if cached else 0, job_id))
                    outcome = "done-late"
                else:
                    outcome = "stale"
            except BaseException:
                con.execute("ROLLBACK")
                raise
            if outcome != "stale" and self._pre_commit is not None:
                self._pre_commit()
            con.execute("COMMIT")
            return outcome

    def fail(self, job_id: int, worker: str, error: str) -> str:
        """Record a job attempt's failure; requeue or give up.

        Returns ``"requeued"`` (attempts remain), ``"failed"``
        (attempts exhausted), or ``"stale"`` (not our claim).
        """
        now = self._now()
        with self._txn() as con:
            row = con.execute(
                "SELECT state, worker, attempts, max_attempts "
                "FROM jobs WHERE id=?", (job_id,)).fetchone()
            if row is None or row["state"] != "claimed" \
                    or row["worker"] != worker:
                return "stale"
            if row["attempts"] >= row["max_attempts"]:
                con.execute(
                    "UPDATE jobs SET state='failed', finished_at=?, "
                    "error=? WHERE id=?", (now, error, job_id))
                return "failed"
            con.execute(
                "UPDATE jobs SET state='queued', worker=NULL, "
                "lease_expires=NULL, error=? WHERE id=?",
                (error, job_id))
            return "requeued"

    # ------------------------------------------------------------ queries
    def job(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._con() as con:
            row = con.execute("SELECT * FROM jobs WHERE id=?",
                              (job_id,)).fetchone()
            return None if row is None else _job_dict(row)

    def jobs(self, state: Optional[str] = None,
             limit: int = 100) -> List[Dict[str, Any]]:
        """Most-recent-first job listing, optionally filtered by state."""
        with self._con() as con:
            if state is None:
                rows = con.execute(
                    "SELECT * FROM jobs ORDER BY id DESC LIMIT ?",
                    (limit,)).fetchall()
            else:
                rows = con.execute(
                    "SELECT * FROM jobs WHERE state=? "
                    "ORDER BY id DESC LIMIT ?", (state, limit)).fetchall()
            return [_job_dict(r) for r in rows]

    def result(self, key: str) -> Optional[bytes]:
        with self._con() as con:
            row = con.execute(
                "SELECT payload FROM results WHERE key=?", (key,)).fetchone()
            return None if row is None else bytes(row["payload"])

    def result_count(self, key: str) -> int:
        """Result rows for a key — 0 or 1 by schema; tests assert it."""
        with self._con() as con:
            row = con.execute(
                "SELECT COUNT(*) AS n FROM results WHERE key=?",
                (key,)).fetchone()
            return int(row["n"])

    def counts(self) -> Dict[str, int]:
        """Per-state job counts plus ``done_cached`` and ``results``."""
        out = {state: 0 for state in STATES}
        with self._con() as con:
            for row in con.execute(
                    "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
                out[row["state"]] = int(row["n"])
            out["done_cached"] = int(con.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state='done' "
                "AND cached=1").fetchone()["n"])
            out["results"] = int(con.execute(
                "SELECT COUNT(*) AS n FROM results").fetchone()["n"])
        return out

    def claim_latencies(self, since_id: int = 0) \
            -> Tuple[List[Tuple[int, float]], int]:
        """Queue-to-claim latencies for jobs above ``since_id``.

        Returns ``([(job_id, latency_seconds), ...], new_cursor)`` —
        the server feeds these into its claim-latency histogram on
        scrape, advancing the cursor so each job is observed once
        (re-claims after a lease expiry are not re-observed; this is a
        fleet-health signal, not an audit ledger).
        """
        with self._con() as con:
            rows = con.execute(
                "SELECT id, claimed_at - created_at AS lat FROM jobs "
                "WHERE claimed_at IS NOT NULL AND id > ? ORDER BY id",
                (since_id,)).fetchall()
            out = [(int(r["id"]), float(r["lat"])) for r in rows]
            cursor = out[-1][0] if out else since_id
            return out, cursor

    def workers(self, liveness_window: float = 60.0) \
            -> List[Dict[str, Any]]:
        """Known workers with an ``alive`` flag (recent heartbeat)."""
        now = self._now()
        with self._con() as con:
            rows = con.execute("SELECT * FROM workers ORDER BY id").fetchall()
            out = []
            for row in rows:
                rec = dict(row)
                rec["alive"] = (now - rec["last_beat"]) <= liveness_window
                out.append(rec)
            return out

    # ---------------------------------------------------------- schedules
    def schedule_last_run(self, name: str) -> Optional[float]:
        with self._con() as con:
            row = con.execute(
                "SELECT last_run FROM schedules WHERE name=?",
                (name,)).fetchone()
            return None if row is None or row["last_run"] is None \
                else float(row["last_run"])

    def schedule_mark_run(self, name: str, when: float,
                          job_id: Optional[int] = None) -> None:
        with self._con() as con:
            con.execute(
                "INSERT INTO schedules (name, last_run, last_job_id) "
                "VALUES (?,?,?) ON CONFLICT(name) DO UPDATE SET "
                "last_run=?, last_job_id=?",
                (name, when, job_id, when, job_id))
