"""Well-formedness validator for exported traces (CI entry point).

Usage::

    python -m repro.obs.validate spans.jsonl [trace.chrome.json]

Checks the span JSONL for structural soundness — every span parented to
a span of the same trace (or a root), no negative durations, every
parent span covering its children — and, when given, that the Chrome
export parses and matches the trace-event schema.  Exits non-zero with
a per-problem listing on failure; prints a one-line summary on success.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from .critical_path import EPS, analyze
from .export import load_spans_jsonl, validate_chrome_trace
from .span import Span


def validate_spans(spans: List[Span]) -> List[str]:
    """Structural checks over closed spans; returns a list of problems."""
    problems: List[str] = []
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        ids = {s.span_id for s in group}
        roots = 0
        for span in group:
            where = f"trace {trace_id} span {span.span_id} ({span.name})"
            if span.parent_id is None:
                roots += 1
            elif span.parent_id not in ids:
                problems.append(f"{where}: parent {span.parent_id} missing")
            if span.end is not None and span.end < span.start - EPS:
                problems.append(f"{where}: negative duration "
                                f"[{span.start}, {span.end}]")
        if roots != 1:
            problems.append(f"trace {trace_id}: {roots} root spans "
                            f"(expected exactly 1)")
        by_id = {s.span_id: s for s in group}
        for span in group:
            if span.parent_id is None or span.parent_id not in by_id:
                continue
            parent = by_id[span.parent_id]
            where = f"trace {trace_id} span {span.span_id} ({span.name})"
            if span.start < parent.start - EPS:
                problems.append(f"{where}: starts before parent "
                                f"({span.start} < {parent.start})")
            if (span.end is not None and parent.end is not None
                    and span.end > parent.end + EPS):
                problems.append(f"{where}: ends after parent "
                                f"({span.end} > {parent.end})")
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs.validate spans.jsonl "
              "[trace.chrome.json]", file=sys.stderr)
        return 2
    spans, events = load_spans_jsonl(argv[0])
    if not spans:
        print(f"{argv[0]}: no spans found", file=sys.stderr)
        return 1
    problems = validate_spans(spans)
    if len(argv) > 1:
        problems += [f"chrome: {p}" for p in validate_chrome_trace(argv[1])]
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        print(f"{len(problems)} problem(s) in {argv[0]}", file=sys.stderr)
        return 1
    report = analyze(spans)
    print(f"OK: {len(spans)} spans, {len(events)} events, "
          f"{report.count} complete traces, "
          f"mean magnification {report.mean_magnification:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main(sys.argv[1:]))
