"""Well-formedness validator for exported telemetry (CI entry point).

Usage::

    python -m repro.obs.validate spans.jsonl [trace.chrome.json] \
        [--metrics metrics.jsonl] [--timeline timeline.jsonl]

Checks the span JSONL for structural soundness — every span parented to
a span of the same trace (or a root), no negative durations, every
parent span covering its children — and, when given, that the Chrome
export parses and matches the trace-event schema.  ``--metrics`` and
``--timeline`` additionally check the JSONL time series: timestamps
nondecreasing (within a file for metrics, within a ``timeline_begin``
segment for timelines — multi-cluster appends restart the sim clock at
a segment boundary), every series name on the known-series whitelist,
and no NaN values.  Exits non-zero with a per-problem listing on
failure; prints a one-line summary on success.
"""

from __future__ import annotations

import math
import sys
from typing import Any, Dict, List

from .critical_path import EPS, analyze
from .export import load_spans_jsonl, validate_chrome_trace
from .span import Span
from .timeline import KNOWN_MARKS, KNOWN_SERIES

#: Metric families the run wiring and the experiment service can emit
#: into a metrics JSONL (raw names; the timeline's ``_rate`` forms are
#: in :data:`repro.obs.timeline.KNOWN_SERIES`).
KNOWN_METRICS = frozenset({
    name for name in KNOWN_SERIES if not name.endswith("_rate")
}) | frozenset({
    "ibridge_benefit",
    "svc_jobs", "svc_results", "svc_workers_alive", "svc_workers_known",
    "svc_cache_hit_ratio", "svc_submissions_total", "svc_dedup_hits_total",
    "svc_claim_latency_seconds", "svc_timeline_last",
    "svc_client_retries",
})


def validate_spans(spans: List[Span]) -> List[str]:
    """Structural checks over closed spans; returns a list of problems."""
    problems: List[str] = []
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        ids = {s.span_id for s in group}
        roots = 0
        for span in group:
            where = f"trace {trace_id} span {span.span_id} ({span.name})"
            if span.parent_id is None:
                roots += 1
            elif span.parent_id not in ids:
                problems.append(f"{where}: parent {span.parent_id} missing")
            if span.end is not None and span.end < span.start - EPS:
                problems.append(f"{where}: negative duration "
                                f"[{span.start}, {span.end}]")
        if roots != 1:
            problems.append(f"trace {trace_id}: {roots} root spans "
                            f"(expected exactly 1)")
        by_id = {s.span_id: s for s in group}
        for span in group:
            if span.parent_id is None or span.parent_id not in by_id:
                continue
            parent = by_id[span.parent_id]
            where = f"trace {trace_id} span {span.span_id} ({span.name})"
            if span.start < parent.start - EPS:
                problems.append(f"{where}: starts before parent "
                                f"({span.start} < {parent.start})")
            if (span.end is not None and parent.end is not None
                    and span.end > parent.end + EPS):
                problems.append(f"{where}: ends after parent "
                                f"({span.end} > {parent.end})")
    return problems


def _bad_value(value: Any) -> bool:
    try:
        return math.isnan(float(value))
    except (TypeError, ValueError):
        return True


def validate_metrics_rows(rows: List[Dict[str, Any]]) -> List[str]:
    """Well-formedness checks over metrics JSONL rows.

    Timestamps must be nondecreasing — except that a multi-cluster
    experiment appends each cluster's series to one file and every
    cluster's sim clock starts over, so a decrease is allowed when it
    rewinds to (or before) the file's very first timestamp.
    """
    problems: List[str] = []
    prev_t = None
    first_t = None
    for i, row in enumerate(rows):
        if row.get("type") == "histogram":
            if _bad_value(row.get("count")) or _bad_value(row.get("sum")):
                problems.append(f"row {i}: histogram with bad count/sum")
            continue
        name = row.get("name")
        if name not in KNOWN_METRICS:
            problems.append(f"row {i}: unknown metric {name!r}")
        if _bad_value(row.get("value")):
            problems.append(f"row {i}: bad value {row.get('value')!r}")
        t = row.get("t")
        if not isinstance(t, (int, float)) or t != t:
            problems.append(f"row {i}: bad timestamp {t!r}")
            continue
        if first_t is None:
            first_t = t
        if prev_t is not None and t < prev_t and t > first_t:
            problems.append(f"row {i}: timestamp went backwards "
                            f"({prev_t} -> {t}) mid-run")
        prev_t = t
    return problems


def validate_timeline_rows(rows: List[Dict[str, Any]]) -> List[str]:
    """Well-formedness checks over timeline JSONL rows.

    Every export is prefixed by a ``timeline_begin`` segment header;
    timestamps must be nondecreasing *within* a segment (each segment
    is one cluster's run, so its clock never rewinds).
    """
    problems: List[str] = []
    if rows and rows[0].get("type") != "timeline_begin":
        problems.append("row 0: missing timeline_begin segment header")
    prev_t = None
    for i, row in enumerate(rows):
        kind = row.get("type")
        if kind == "timeline_begin":
            prev_t = None  # new segment: fresh sim clock
            if _bad_value(row.get("dt")) or row.get("dt", 0) <= 0:
                problems.append(f"row {i}: segment header with bad dt")
            continue
        if kind == "mark":
            if row.get("name") not in KNOWN_MARKS:
                problems.append(f"row {i}: unknown mark "
                                f"{row.get('name')!r}")
        else:
            series = row.get("series")
            if series not in KNOWN_SERIES:
                problems.append(f"row {i}: unknown series {series!r}")
            if _bad_value(row.get("value")):
                problems.append(f"row {i}: bad value {row.get('value')!r}")
        t = row.get("t")
        if not isinstance(t, (int, float)) or t != t:
            problems.append(f"row {i}: bad timestamp {t!r}")
            continue
        if prev_t is not None and t < prev_t:
            problems.append(f"row {i}: timestamp went backwards "
                            f"({prev_t} -> {t}) within a segment")
        prev_t = t
    return problems


def main(argv: List[str]) -> int:
    positional: List[str] = []
    metrics_path = None
    timeline_path = None
    it = iter(argv)
    for arg in it:
        if arg == "--metrics":
            metrics_path = next(it, None)
        elif arg == "--timeline":
            timeline_path = next(it, None)
        else:
            positional.append(arg)
    if not positional and not metrics_path and not timeline_path:
        print("usage: python -m repro.obs.validate spans.jsonl "
              "[trace.chrome.json] [--metrics metrics.jsonl] "
              "[--timeline timeline.jsonl]", file=sys.stderr)
        return 2

    problems: List[str] = []
    spans: List[Span] = []
    events: List[Dict[str, Any]] = []
    if positional:
        spans, events = load_spans_jsonl(positional[0])
        if not spans:
            print(f"{positional[0]}: no spans found", file=sys.stderr)
            return 1
        problems += validate_spans(spans)
        if len(positional) > 1:
            problems += [f"chrome: {p}"
                         for p in validate_chrome_trace(positional[1])]
    nrows = {"metrics": 0, "timeline": 0}
    if metrics_path:
        from .metrics import load_metrics_jsonl
        rows = load_metrics_jsonl(metrics_path)
        nrows["metrics"] = len(rows)
        problems += [f"metrics: {p}" for p in validate_metrics_rows(rows)]
    if timeline_path:
        from .timeline import load_timeline_jsonl
        rows = load_timeline_jsonl(timeline_path)
        nrows["timeline"] = len(rows)
        problems += [f"timeline: {p}" for p in validate_timeline_rows(rows)]
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    summary = []
    if spans:
        report = analyze(spans)
        summary.append(f"{len(spans)} spans, {len(events)} events, "
                       f"{report.count} complete traces, "
                       f"mean magnification "
                       f"{report.mean_magnification:.2f}x")
    if metrics_path:
        summary.append(f"{nrows['metrics']} metrics rows")
    if timeline_path:
        summary.append(f"{nrows['timeline']} timeline rows")
    print("OK: " + "; ".join(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main(sys.argv[1:]))
