"""Unified run report: one console/markdown digest per observed run.

Usage::

    python -m repro.obs.report --trace trace.jsonl \
        --timeline timeline.jsonl [--metrics metrics.jsonl] \
        [--shard-profile profile.json] [--format console|markdown] \
        [--out report.md]

Joins the three telemetry artifacts a traced run leaves behind — the
span JSONL (where did each request's latency go), the metrics JSONL
(what was the final state), and the timeline JSONL (how did the run
evolve) — plus the sharded engine's barrier profile, into one report:

* the critical-path straggler table with a per-request magnification
  CDF (the paper's striping-magnification effect as percentiles);
* one sparkline + min/mean/p99/last line per timeline series;
* the shard barrier-profile table (bottleneck shard, parallel
  efficiency) when a profile JSON is given;
* fault-window and GC-storm annotations pulled from timeline marks.

Every section is optional: the report renders whatever artifacts it is
given.  ``--format markdown`` wraps tables in code fences for PR/CI
summaries; the default console format prints them bare.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .critical_path import analyze
from .export import load_spans_jsonl
from .metrics import load_metrics_jsonl, percentile
from .timeline import load_timeline_jsonl, sparkline, summarize_series

#: Cap on distinct series rendered as sparklines (a 16-server cluster
#: wires hundreds of labelled gauges; the report shows the busiest).
MAX_SPARK_SERIES = 24


def _magnification_cdf(mags: List[float]) -> List[str]:
    ordered = sorted(mags)
    lines = ["magnification CDF (straggler / median sibling):"]
    for q in (10.0, 50.0, 90.0, 99.0):
        lines.append(f"  p{q:g}: {percentile(ordered, q):.2f}x")
    lines.append(f"  max: {ordered[-1]:.2f}x over {len(ordered)} "
                 "multi-piece requests")
    return lines


def trace_section(path: str) -> List[str]:
    spans, events = load_spans_jsonl(path)
    report = analyze(spans)
    lines = [report.format()]
    mags = report.magnifications()
    if mags:
        lines.extend(_magnification_cdf(mags))
    lines.append(f"({len(spans)} spans, {len(events)} instant events, "
                 f"{report.count} complete traces)")
    return lines


def timeline_section(rows: List[Dict[str, Any]]) -> List[str]:
    samples = [r for r in rows if "series" in r]
    if not samples:
        return ["(no timeline samples)"]
    summary = summarize_series(samples)
    series: Dict[str, List[float]] = {}
    for row in samples:
        labels = row.get("labels") or {}
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        key = f"{row['series']}{{{inner}}}" if inner else row["series"]
        series.setdefault(key, []).append(float(row["value"]))
    # Busiest (highest-variance-proxy: widest range) series first.
    ranked = sorted(summary, key=lambda k: -(summary[k]["max"]
                                             - summary[k]["min"]))
    shown = ranked[:MAX_SPARK_SERIES]
    width = max(len(k) for k in shown)
    lines = [f"{len(summary)} series, {len(samples)} samples"]
    for key in shown:
        s = summary[key]
        lines.append(
            f"{key:<{width}} {sparkline(series[key]):<32} "
            f"min {s['min']:.4g}  mean {s['mean']:.4g}  "
            f"p99 {s['p99']:.4g}  last {s['last']:.4g}")
    if len(ranked) > len(shown):
        lines.append(f"(+{len(ranked) - len(shown)} flat series elided)")
    return lines


def marks_section(rows: List[Dict[str, Any]]) -> List[str]:
    marks = [r for r in rows if r.get("type") == "mark"]
    if not marks:
        return []
    lines = []
    for m in sorted(marks, key=lambda r: r["t"]):
        attrs = m.get("attrs") or {}
        inner = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        lines.append(f"t={m['t']:.6g} {m['name']}"
                     + (f" ({inner})" if inner else ""))
    return lines


def metrics_section(path: str) -> List[str]:
    rows = load_metrics_jsonl(path)
    hists = [r for r in rows if r.get("type") == "histogram"]
    samples = [r for r in rows if "value" in r and "t" in r]
    finals: Dict[str, float] = {}
    for row in samples:  # last write wins: the final sample of a series
        labels = row.get("labels") or {}
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        key = f"{row['name']}{{{inner}}}" if inner else row["name"]
        finals[key] = float(row["value"])
    lines = [f"{len(samples)} samples over {len(finals)} series"]
    nonzero = {k: v for k, v in finals.items() if v}
    for key in sorted(nonzero)[:16]:
        lines.append(f"  final {key} = {nonzero[key]:.6g}")
    for h in hists:
        lines.append(f"  histogram {h['name']}: n={h['count']}, "
                     f"sum={h['sum']:.6g}")
    return lines


def shard_section(path: str) -> List[str]:
    from ..sim.parallel import format_shard_profile
    with open(path, "r", encoding="utf-8") as fh:
        profile = json.load(fh)
    # Accept either the raw extra dict or a whole result-extra dump.
    if "windows" not in profile and "shard_profile" in profile:
        profile = profile["shard_profile"]
    return [format_shard_profile(profile)]


def render(sections: List[tuple], markdown: bool) -> str:
    out: List[str] = []
    if markdown:
        out.append("# Run report")
    for title, lines in sections:
        if not lines:
            continue
        if markdown:
            out.append(f"\n## {title}\n")
            out.append("```")
            out.extend(lines)
            out.append("```")
        else:
            out.append(f"\n=== {title} ===")
            out.extend(lines)
    return "\n".join(out) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a unified run report from trace, metrics, "
                    "timeline, and shard-profile artifacts.")
    parser.add_argument("--trace", help="span JSONL (from --trace-out)")
    parser.add_argument("--metrics", help="metrics JSONL")
    parser.add_argument("--timeline", help="timeline JSONL")
    parser.add_argument("--shard-profile",
                        help="shard_profile JSON (sharded runs)")
    parser.add_argument("--format", choices=("console", "markdown"),
                        default="console")
    parser.add_argument("--out", help="write the report here instead of "
                                      "stdout")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.timeline
            or args.shard_profile):
        parser.error("give at least one of --trace/--metrics/--timeline/"
                     "--shard-profile")

    sections: List[tuple] = []
    if args.trace:
        sections.append(("Critical path", trace_section(args.trace)))
    if args.timeline:
        rows = load_timeline_jsonl(args.timeline)
        sections.append(("Timeline", timeline_section(rows)))
        sections.append(("Fault / GC windows", marks_section(rows)))
    if args.metrics:
        sections.append(("Metrics", metrics_section(args.metrics)))
    if args.shard_profile:
        sections.append(("Shard barrier profile",
                         shard_section(args.shard_profile)))

    text = render(sections, markdown=args.format == "markdown")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
