"""Critical-path analysis and straggler attribution over span trees.

For every trace (one :class:`~repro.pfs.messages.ParentRequest`) the
analyzer:

1. walks the span tree backwards from the root's completion, always
   descending into the child whose completion gated progress (the
   *straggler chain*) — producing a sequence of segments that exactly
   tiles the parent's latency;
2. attributes each segment to its span's ``kind`` (client, rpc,
   network, server, queue-wait, device service), so the per-kind
   breakdown sums to the parent latency by construction;
3. names the straggler sub-request — the per-server piece that finished
   last — and computes the *magnification factor*: straggler time over
   the median sibling time.  This is the paper's striping-magnification
   effect (§II, Fig. 2) rendered as a per-request number: a fragment
   that costs 3x its siblings drags the whole synchronous request to
   3x, no matter how fast the other pieces were.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .span import KIND_RPC, Span

#: Slack for float comparisons between adjacent span boundaries.
EPS = 1e-9


@dataclass
class TraceTree:
    """One trace's spans indexed for traversal."""

    root: Span
    spans: List[Span]
    children: Dict[int, List[Span]] = field(default_factory=dict)

    def child_spans(self, span: Span) -> List[Span]:
        return self.children.get(span.span_id, [])


@dataclass
class PathSegment:
    """One interval of the critical path, attributed to one span."""

    name: str
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceReport:
    """Critical-path attribution for one parent request."""

    trace_id: int
    latency: float
    #: Seconds attributed to each span kind along the critical path;
    #: values sum to ``latency`` (within float tolerance) by
    #: construction.
    breakdown: Dict[str, float]
    #: The straggler chain, root completion back to root start.
    path: List[PathSegment]
    #: Attrs of the sub-request that finished last (None for traces
    #: with no rpc children, e.g. hand-built degenerate trees).
    straggler: Optional[Dict[str, Any]] = None
    #: straggler time / median sibling time; None for single-piece
    #: requests (nothing to magnify).
    magnification: Optional[float] = None
    #: True when the straggler is also the smallest sibling — the
    #: unaligned-fragment signature the paper's Fig. 2 motivates.
    straggler_is_smallest: Optional[bool] = None


def build_trees(spans: Sequence[Span]) -> Dict[int, TraceTree]:
    """Group closed spans into per-trace trees (keyed by trace id).

    Traces without a closed root span are skipped: a bounded tracer may
    have dropped their spans, and an aborted run may have left them
    open — either way there is nothing sound to attribute.
    """
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        by_trace.setdefault(span.trace_id, []).append(span)
    trees: Dict[int, TraceTree] = {}
    for trace_id, group in by_trace.items():
        ids = set()
        root = None
        multiple_roots = False
        for s in group:
            ids.add(s.span_id)
            if s.parent_id is None:
                if root is None:
                    root = s
                else:
                    multiple_roots = True
        if root is None or multiple_roots:
            continue
        children: Dict[int, List[Span]] = {}
        for span in group:
            if span is root or span.parent_id not in ids:
                continue
            children.setdefault(span.parent_id, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: (s.start, s.end, s.span_id))
        trees[trace_id] = TraceTree(root=root, spans=group, children=children)
    return trees


def _walk(tree: TraceTree, span: Span, lo: float, hi: float,
          breakdown: Dict[str, float], path: List[PathSegment]) -> None:
    """Attribute ``[lo, hi]`` of ``span``; recurse down gating children.

    Walks backwards from ``hi``: the child that finished last (at or
    before the current point) gated progress, so its interval belongs
    to it; any gap above it is the span's own time.  The recursion
    partitions ``[lo, hi]`` exactly, which is what makes the per-kind
    breakdown sum to the root latency.
    """
    cur = hi
    kids = tree.child_spans(span)
    while cur - lo > EPS:
        # Single pass for the gating child: the candidate with the
        # greatest (end, start, span_id).  Equivalent to building the
        # candidate list and taking max(), minus the allocations —
        # this walk runs over every retained trace at the end of every
        # traced run, so it is part of the tracing overhead budget.
        gate = None
        for c in kids:
            end = c.end
            if (end is None or end > cur + EPS or end <= lo + EPS
                    or c.start >= cur - EPS):
                continue
            if gate is None or \
                    (end, c.start, c.span_id) > (gate.end, gate.start,
                                                 gate.span_id):
                gate = c
        if gate is None:
            breakdown[span.kind] = breakdown.get(span.kind, 0.0) + (cur - lo)
            path.append(PathSegment(span.name, span.kind, lo, cur))
            return
        top = min(gate.end, cur)
        if cur - top > EPS:
            breakdown[span.kind] = breakdown.get(span.kind, 0.0) + (cur - top)
            path.append(PathSegment(span.name, span.kind, top, cur))
        child_lo = max(gate.start, lo)
        _walk(tree, gate, child_lo, top, breakdown, path)
        cur = child_lo


def analyze_trace(tree: TraceTree) -> TraceReport:
    """Critical-path attribution for one span tree."""
    root = tree.root
    breakdown: Dict[str, float] = {}
    path: List[PathSegment] = []
    _walk(tree, root, root.start, root.end, breakdown, path)
    report = TraceReport(trace_id=root.trace_id, latency=root.duration,
                         breakdown=breakdown, path=path)

    subs = [s for s in tree.child_spans(root) if s.kind == KIND_RPC]
    if subs:
        straggler = max(subs, key=lambda s: (s.end, s.duration, s.span_id))
        report.straggler = dict(straggler.attrs or {})
        report.straggler.setdefault("duration", straggler.duration)
        siblings = [s for s in subs if s is not straggler]
        if siblings:
            durs = sorted(s.duration for s in siblings)
            mid = durs[len(durs) // 2] if len(durs) % 2 else \
                0.5 * (durs[len(durs) // 2 - 1] + durs[len(durs) // 2])
            if mid > 0:
                report.magnification = straggler.duration / mid
            sizes = [(s.attrs or {}).get("nbytes") for s in subs]
            if all(isinstance(n, (int, float)) for n in sizes):
                report.straggler_is_smallest = (
                    (straggler.attrs or {}).get("nbytes") == min(sizes))
    return report


@dataclass
class RunReport:
    """Aggregate straggler attribution over every trace of a run."""

    traces: List[TraceReport] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.traces)

    def magnifications(self) -> List[float]:
        return [t.magnification for t in self.traces
                if t.magnification is not None]

    @property
    def mean_magnification(self) -> float:
        mags = self.magnifications()
        return sum(mags) / len(mags) if mags else 0.0

    @property
    def max_magnification(self) -> float:
        mags = self.magnifications()
        return max(mags) if mags else 0.0

    def breakdown_totals(self) -> Dict[str, float]:
        """Seconds per span kind summed over every critical path."""
        totals: Dict[str, float] = {}
        for trace in self.traces:
            for kind, seconds in trace.breakdown.items():
                totals[kind] = totals.get(kind, 0.0) + seconds
        return totals

    def straggler_servers(self) -> Dict[int, int]:
        """{server id: times it hosted the straggler piece}."""
        tally: TallyCounter = TallyCounter()
        for trace in self.traces:
            if trace.straggler and "server" in trace.straggler:
                tally[trace.straggler["server"]] += 1
        return dict(sorted(tally.items()))

    @property
    def straggler_smallest_fraction(self) -> float:
        """Of multi-piece requests, how often the smallest piece gated."""
        flags = [t.straggler_is_smallest for t in self.traces
                 if t.straggler_is_smallest is not None]
        if not flags:
            return 0.0
        return sum(1 for f in flags if f) / len(flags)

    def format(self) -> str:
        """Printable summary (used by the CLI after traced runs)."""
        from ..analysis.report import format_table
        totals = self.breakdown_totals()
        total = sum(totals.values()) or 1.0
        rows = [[kind, round(seconds, 6), f"{seconds / total * 100:.1f}%"]
                for kind, seconds in sorted(totals.items(),
                                            key=lambda kv: -kv[1])]
        out = format_table(
            ["span kind", "critical-path s", "share"], rows,
            title=f"Critical-path attribution over {self.count} requests")
        mags = self.magnifications()
        if mags:
            out += (f"\n  striping magnification (straggler/median sibling): "
                    f"mean {self.mean_magnification:.2f}x, "
                    f"max {self.max_magnification:.2f}x over {len(mags)} "
                    f"multi-piece requests")
            out += (f"\n  straggler was the smallest piece in "
                    f"{self.straggler_smallest_fraction * 100:.0f}% of them")
        servers = self.straggler_servers()
        if servers:
            top = sorted(servers.items(), key=lambda kv: -kv[1])[:4]
            out += ("\n  straggler server counts: "
                    + ", ".join(f"ds{s}:{n}" for s, n in top))
        return out


def analyze(spans: Sequence[Span]) -> RunReport:
    """Build trees from ``spans`` and attribute every complete trace."""
    trees = build_trees(spans)
    report = RunReport()
    for trace_id in sorted(trees):
        report.traces.append(analyze_trace(trees[trace_id]))
    return report
