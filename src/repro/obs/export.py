"""Span exporters: JSONL and Chrome trace-event (Perfetto) JSON.

Two formats, one source of truth:

* **JSONL** — one ``Span.to_dict()`` record per line, plus instant
  events.  Appended per simulated cluster (mirroring the
  ``--audit-trace`` contract: the CLI truncates the file once per
  invocation, runs append).  This is the format the critical-path
  analyzer and CI validator read back.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` array
  format understood by ``chrome://tracing`` and https://ui.perfetto.dev.
  Spans become ``ph="X"`` complete events with microsecond timestamps;
  each trace (parent request) becomes a ``pid`` with a metadata name
  record so the UI groups a request's spans together.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .span import Span
from .timeline import series_key

#: Chrome trace events use microseconds; the sim uses seconds.
_US = 1e6


# ----------------------------------------------------------------- JSONL
def append_spans(path: str, spans: Sequence[Span],
                 events: Sequence[Dict[str, Any]] = ()) -> int:
    """Append span + event records to a JSONL file; returns row count."""
    rows = 0
    with open(path, "a", encoding="utf-8") as fh:
        for span in spans:
            json.dump(span.to_dict(), fh, default=str)
            fh.write("\n")
            rows += 1
        for rec in events:
            json.dump(rec, fh, default=str)
            fh.write("\n")
            rows += 1
    return rows


def load_spans_jsonl(path: str) -> Tuple[List[Span], List[Dict[str, Any]]]:
    """Read back a span JSONL file -> (spans, instant events)."""
    spans: List[Span] = []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "span":
                spans.append(Span.from_dict(rec))
            else:
                events.append(rec)
    return spans, events


# ------------------------------------------------------- Chrome / Perfetto
def chrome_path_for(jsonl_path: str) -> str:
    """Derive the Chrome JSON path from a span JSONL path."""
    if jsonl_path.endswith(".jsonl"):
        return jsonl_path[: -len(".jsonl")] + ".chrome.json"
    return jsonl_path + ".chrome.json"


def _lanes(spans: Sequence[Span]) -> Dict[int, int]:
    """Assign a tid lane per top-level subtree so siblings don't stack.

    The root span and everything under each of its children get their
    own lane; a span keeps its parent's lane so nested work renders as
    a flame stack inside the sub-request's row.
    """
    lane_of: Dict[int, int] = {}
    by_parent: Dict[Optional[int], List[Span]] = {}
    roots: List[Span] = []
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        if parent is None:
            roots.append(span)
        by_parent.setdefault(parent, []).append(span)
    for root in roots:
        lane_of[root.span_id] = 0
        next_lane = 1
        for child in sorted(by_parent.get(root.span_id, []),
                            key=lambda s: (s.start, s.span_id)):
            stack = [child]
            lane = next_lane
            next_lane += 1
            while stack:
                span = stack.pop()
                lane_of[span.span_id] = lane
                stack.extend(by_parent.get(span.span_id, []))
    return lane_of


def chrome_trace(spans: Sequence[Span],
                 events: Sequence[Dict[str, Any]] = (),
                 counters: Sequence[Dict[str, Any]] = ()) -> Dict[str, Any]:
    """Build a Chrome trace-event document from spans.

    ``counters`` takes timeline sample rows (``{"t", "series",
    "labels", "value"}`` — see :mod:`repro.obs.timeline`) and renders
    each labelled series as a Perfetto *counter track* (``ph: "C"``) on
    pid 0, so queue depth and SSD occupancy plot under the span lanes.
    """
    out: List[Dict[str, Any]] = []
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        out.append({
            "ph": "M", "name": "process_name", "pid": trace_id, "tid": 0,
            "args": {"name": f"request {trace_id}"},
        })
        lane_of = _lanes(group)
        for span in group:
            ev: Dict[str, Any] = {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": trace_id,
                "tid": lane_of.get(span.span_id, 0),
                "ts": span.start * _US,
                "dur": span.duration * _US,
            }
            if span.attrs:
                ev["args"] = {k: v for k, v in span.attrs.items()}
            out.append(ev)
    for rec in events:
        ev = {
            "ph": "i", "name": rec.get("name", "event"), "cat": "event",
            "pid": 0, "tid": 0, "ts": float(rec.get("t", 0.0)) * _US,
            "s": "g",
        }
        if rec.get("attrs"):
            ev["args"] = rec["attrs"]
        out.append(ev)
    for row in counters:
        if "series" not in row:
            continue  # segment headers / marks ride the events path
        out.append({
            "ph": "C",
            "name": series_key(row["series"], row.get("labels") or {}),
            "pid": 0, "tid": 0,
            "ts": float(row["t"]) * _US,
            "args": {"value": float(row["value"])},
        })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[Span],
                       events: Sequence[Dict[str, Any]] = (),
                       counters: Sequence[Dict[str, Any]] = ()) -> int:
    """Write the Chrome JSON document; returns the event count."""
    doc = chrome_trace(spans, events, counters)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def validate_chrome_trace(path: str) -> List[str]:
    """Schema-check a Chrome trace file; returns a list of problems."""
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "B", "E", "C"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        if "name" not in ev:
            problems.append(f"event {i}: missing name")
        if ph in ("X", "i", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event {i}: counter without args")
            elif any(not isinstance(v, (int, float)) or v != v
                     for v in args.values()):
                problems.append(f"event {i}: non-numeric counter value")
    return problems
