"""End-to-end observability: request tracing, metrics, critical paths.

The paper's central claim is that one slow fragment gates the whole
synchronous parallel request (striping magnification, §II).  This
package makes that visible per request instead of only in aggregate:

* :mod:`repro.obs.span` — sim-time spans with trace/span/parent IDs,
  propagated client → network → server → iBridge manager → block queue
  → device, so every :class:`~repro.pfs.messages.ParentRequest` yields
  a causal span tree separating queue-wait, network and device-service
  time.
* :mod:`repro.obs.critical_path` — walks each tree, names the straggler
  sub-request, attributes the parent's latency along the slowest path,
  and computes per-request magnification factors (straggler time over
  median sibling time) — Fig. 2's motivation, quantified per request.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  sampled on sim-time ticks with JSONL time-series export.
* :mod:`repro.obs.export` — span JSONL and Chrome trace-event /
  Perfetto JSON exporters (``--trace-out`` / ``--metrics-out``).
* :mod:`repro.obs.runtime` — per-cluster wiring plus the adapters that
  let :class:`~repro.audit.trace.EventTrace` and
  :class:`~repro.block.blktrace.BlockTracer` feed the same sink.
* :mod:`repro.obs.timeline` — sim-time series recorder: samples every
  registry gauge on a fixed cadence (``ObsConfig.timeline_dt``) into a
  bounded ring buffer, differencing cumulative series into rates, with
  event-driven marks for fault windows and GC storms.
* :mod:`repro.obs.report` — the ``python -m repro.obs.report`` CLI that
  joins trace + metrics + timeline (+ shard barrier profile) into one
  console/markdown run report.

Everything is flag-gated (``ObsConfig.enabled``) following the
``BlockTracer`` pattern: with observability off, instrumented sites
cost one attribute load and a ``None`` test — no records, no spans, no
sampler process (measured by ``benchmarks/perf/obs_bench.py``).
"""

from .critical_path import RunReport, TraceReport, analyze, build_trees
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import ObsRuntime
from .span import Span, Tracer
from .timeline import (TimelineRecorder, load_timeline_jsonl, series_key,
                       sparkline, summarize_series)

__all__ = [
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsRuntime",
    "TimelineRecorder",
    "TraceReport",
    "RunReport",
    "analyze",
    "build_trees",
    "load_timeline_jsonl",
    "series_key",
    "sparkline",
    "summarize_series",
]
