"""Sim-time series recorder: how the system evolved over the run.

The metrics registry (:mod:`repro.obs.metrics`) answers "what was the
final state"; the critical-path analyzer answers "where did one
request's latency go".  The :class:`TimelineRecorder` answers the
question in between — *how did the run evolve* — by snapshotting every
registry gauge on a fixed sim-time cadence (``ObsConfig.timeline_dt``)
into a bounded ring buffer:

* plain gauges (queue depth, SSD log occupancy, partition shares,
  ``ssd_gc_active``, write amplification, outstanding sub-requests)
  are sampled as-is;
* cumulative series (counters and monotonically increasing gauges such
  as the iBridge admission totals) are *differenced* into per-second
  rates, which is the form the paper-relevant admission dynamics read
  in (``<name>_rate`` series);
* event-driven marks (fault windows, GC-storm begin/end) are recorded
  out of band via :meth:`TimelineRecorder.mark` — devices and the
  fault injector feed them through :class:`~repro.obs.runtime.ObsRuntime`.

Export is JSONL (one ``{"t", "series", "labels", "value"}`` row per
sample, marks as ``{"type": "mark", ...}`` rows) or CSV, with every
export prefixed by a ``{"type": "timeline_begin", ...}`` segment header
so multi-cluster appends stay checkable (timestamps must be
nondecreasing within a segment — ``python -m repro.obs.validate``
enforces this).  :func:`summarize_series` reduces a series list to
min/mean/p99/last — the flat form workers attach to results and the
run-report CLI renders as sparklines.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, percentile

#: Registry series that are cumulative totals: the timeline emits them
#: as differenced per-second ``<name>_rate`` series instead of raw
#: values.  (Counters are always cumulative; these are the gauges that
#: wrap monotonically increasing stats.)
CUMULATIVE_SERIES = frozenset({
    "ibridge_redirected_writes",
    "ibridge_rejected_admissions",
    "ssd_gc_stall_seconds",
})

#: Every series name the obs wiring can produce, raw or differenced —
#: the whitelist ``python -m repro.obs.validate`` checks timeline (and
#: metrics) JSONL against.  Extend this set when wiring a new gauge.
KNOWN_SERIES = frozenset({
    "queue_depth",
    "ssd_gc_active",
    "ssd_write_amplification",
    "ssd_gc_free_fraction",
    "ssd_gc_stall_seconds",
    "ssd_log_live_bytes",
    "ssd_log_free_segments",
    "partition_used_bytes",
    "partition_fragment_share",
    "ibridge_redirected_writes",
    "ibridge_rejected_admissions",
    "ibridge_admissions",
    "outstanding_subrequests",
}) | frozenset(f"{name}_rate" for name in CUMULATIVE_SERIES) \
  | frozenset({"ibridge_admissions_rate"})

#: Mark names the wiring can produce (fault windows + GC storms).
KNOWN_MARKS = frozenset({
    "gc_storm_begin", "gc_storm_end", "fault_begin", "fault_end",
})


def series_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical flat key for one labelled series:
    ``queue_depth{dev=hdd0,server=3}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class TimelineRecorder:
    """Ring-buffered gauge sampler driven by a sim-time ticker."""

    def __init__(self, registry: MetricsRegistry, dt: float,
                 limit: int = 100_000) -> None:
        if dt <= 0:
            raise ValueError("timeline dt must be positive")
        self.registry = registry
        self.dt = dt
        #: Sample rows ``{"t", "series", "labels", "value"}``, oldest
        #: evicted once ``limit`` is reached (bounded retention).
        self.rows: deque = deque(maxlen=limit or None)
        #: Event-driven marks ``{"t", "name", "attrs"}`` (same bound).
        self.marks: deque = deque(maxlen=limit or None)
        #: Rows dropped by ring-buffer eviction (retention telemetry).
        self.evicted = 0
        self._prev: Dict[Tuple[str, tuple], float] = {}
        self._prev_t: Optional[float] = None
        self._stopped = False
        self.ticks = 0

    # ------------------------------------------------------------ sampling
    def sample(self, t: float) -> None:
        """Record one tick: every gauge, counters/cumulatives as rates."""
        rows = self.rows
        at_cap = rows.maxlen is not None and len(rows) == rows.maxlen
        prev = self._prev
        dt = (t - self._prev_t) if self._prev_t is not None else None
        for gauge in self.registry._gauges.values():
            value = gauge.read()
            if gauge.name in CUMULATIVE_SERIES:
                self._rate_row(t, dt, gauge.name, gauge.labels, value, prev)
            else:
                if at_cap:
                    self.evicted += 1
                rows.append({"t": t, "series": gauge.name,
                             "labels": gauge.labels, "value": value})
                at_cap = (rows.maxlen is not None
                          and len(rows) == rows.maxlen)
        for counter in self.registry._counters.values():
            self._rate_row(t, dt, counter.name, counter.labels,
                           counter.value, prev)
        self._prev_t = t
        self.ticks += 1

    def _rate_row(self, t: float, dt: Optional[float], name: str,
                  labels: Dict[str, Any], value: float,
                  prev: Dict[Tuple[str, tuple], float]) -> None:
        key = (name, tuple(sorted(labels.items())))
        last = prev.get(key)
        prev[key] = value
        if last is None or dt is None or dt <= 0:
            return  # first tick: no interval to rate over
        if len(self.rows) == self.rows.maxlen and self.rows.maxlen:
            self.evicted += 1
        self.rows.append({"t": t, "series": f"{name}_rate",
                          "labels": labels, "value": (value - last) / dt})

    def mark(self, name: str, t: float, **attrs: Any) -> None:
        """Record one event-driven mark (fault window edge, GC storm)."""
        self.marks.append({"t": t, "name": name, "attrs": attrs})

    # ----------------------------------------------------------- lifecycle
    def start(self, env):
        """Run the ticker as a sim process (mirrors the metrics sampler:
        consumes heap sequence numbers, stops at the tick after
        :meth:`stop` so ``env.run()`` to exhaustion can end)."""
        return env.process(self._ticker(env), name="obs-timeline")

    def _ticker(self, env):
        while not self._stopped:
            self.sample(env.now)
            yield env.timeout(self.dt)

    def stop(self) -> None:
        self._stopped = True

    def clear(self) -> None:
        """Drop warm-pass samples (measurement reset)."""
        self.rows.clear()
        self.marks.clear()
        self._prev.clear()
        self._prev_t = None
        self.evicted = 0
        self.ticks = 0

    # ------------------------------------------------------------- export
    def merged_rows(self) -> List[Dict[str, Any]]:
        """Samples + marks merged into one t-ordered row list."""
        out: List[Dict[str, Any]] = list(self.rows)
        out.extend({"type": "mark", "t": m["t"], "name": m["name"],
                    "attrs": m["attrs"]} for m in self.marks)
        out.sort(key=lambda r: r["t"])
        return out

    def export_jsonl(self, path: str, mode: str = "a") -> int:
        """Append a segment header + all rows to ``path``; row count."""
        rows = self.merged_rows()
        header = {"type": "timeline_begin", "dt": self.dt,
                  "rows": len(rows), "evicted": self.evicted}
        with open(path, mode, encoding="utf-8") as fh:
            json.dump(header, fh)
            fh.write("\n")
            for row in rows:
                json.dump(row, fh, default=str)
                fh.write("\n")
        return len(rows)

    def export_csv(self, path: str, mode: str = "a") -> int:
        return write_timeline_csv(path, self.merged_rows(), mode=mode)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return summarize_series(self.rows)


# --------------------------------------------------------------- helpers
def write_timeline_csv(path: str, rows: Iterable[Dict[str, Any]],
                       mode: str = "a") -> int:
    """Write timeline rows as CSV (``t,series,labels,value``); marks
    become ``mark:<name>`` series rows with value 1."""
    import csv

    count = 0
    with open(path, mode, encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        if mode == "w" or fh.tell() == 0:
            writer.writerow(["t", "series", "labels", "value"])
        for row in rows:
            if row.get("type") == "mark":
                writer.writerow([row["t"], f"mark:{row['name']}",
                                 json.dumps(row.get("attrs", {}),
                                            sort_keys=True), 1])
            else:
                writer.writerow([row["t"], row["series"],
                                 json.dumps(row.get("labels", {}),
                                            sort_keys=True), row["value"]])
            count += 1
    return count


def load_timeline_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read back a timeline JSONL file (headers + samples + marks)."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def summarize_series(rows: Iterable[Dict[str, Any]]) \
        -> Dict[str, Dict[str, float]]:
    """Per-series ``{min, mean, p99, last, n}`` over sample rows.

    Keys are :func:`series_key` strings; marks and segment headers are
    ignored.  This is the compact, digest-safe form attached to results
    and shipped by service workers.
    """
    values: Dict[str, List[float]] = {}
    for row in rows:
        if "series" not in row:
            continue
        key = series_key(row["series"], row.get("labels") or {})
        values.setdefault(key, []).append(float(row["value"]))
    out: Dict[str, Dict[str, float]] = {}
    for key, series in values.items():
        ordered = sorted(series)
        out[key] = {
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(series) / len(series),
            "p99": percentile(ordered, 99.0),
            "last": series[-1],
            "n": float(len(series)),
        }
    return out


_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Unicode sparkline of a series, downsampled to ``width`` buckets
    (mean per bucket).  Flat series render as a line of low bars."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        buckets: List[float] = []
        step = len(vals) / width
        for i in range(width):
            lo, hi = int(i * step), max(int((i + 1) * step), int(i * step) + 1)
            chunk = vals[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        vals = buckets
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_BARS[0] * len(vals)
    return "".join(
        _SPARK_BARS[min(len(_SPARK_BARS) - 1,
                        int((v - lo) / span * len(_SPARK_BARS)))]
        for v in vals)
