"""Sim-time spans and the tracer that records them.

A :class:`Span` is one timed operation on the path of a request:
``trace_id`` groups every span of one parent request, ``parent_id``
links a span to its causal parent, and ``kind`` is the coarse category
the critical-path analyzer attributes time to (``client``, ``rpc``,
``network``, ``server``, ``queue``, ``service``).

The tracer follows the ``BlockTracer`` pattern: construction is cheap,
and every instrumented site guards with ``if tracer is not None`` so a
run without observability pays one attribute load per site and nothing
else.  Spans are plain ``__slots__`` objects — a traced run allocates
one per operation, which is the dominant (and only) tracing cost.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

#: Span kinds the critical-path analyzer knows how to attribute.
KIND_CLIENT = "client"
KIND_RPC = "rpc"
KIND_NETWORK = "network"
KIND_SERVER = "server"
KIND_QUEUE = "queue"
KIND_SERVICE = "service"


class Span:
    """One timed operation; ``end is None`` while still open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "start", "end", "attrs")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, kind: str, start: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach (or update) attributes after the span was opened —
        used where the interesting fact (route taken, return value) is
        only known mid-operation."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL wire form (see :mod:`repro.obs.export`)."""
        rec: Dict[str, Any] = {
            "type": "span", "trace": self.trace_id, "id": self.span_id,
            "parent": self.parent_id, "name": self.name, "kind": self.kind,
            "t0": self.start, "t1": self.end,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec

    @classmethod
    def from_dict(cls, rec: Dict[str, Any]) -> "Span":
        span = cls(rec["trace"], rec["id"], rec.get("parent"), rec["name"],
                   rec.get("kind", "other"), rec["t0"], rec.get("attrs"))
        span.end = rec.get("t1")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name} #{self.span_id} trace={self.trace_id} "
                f"[{self.start}, {self.end})>")


class Tracer:
    """Records spans (and instant events) for one simulated run.

    Retention is bounded by ``max_spans``: past the cap new spans are
    counted in :attr:`dropped` but not retained (they are still useful
    as a signal that the in-memory analysis is partial; the JSONL
    mirror written by :class:`~repro.obs.runtime.ObsRuntime` is not
    affected because it is fed from the same list before clearing).
    """

    def __init__(self, max_spans: int = 200_000) -> None:
        self.enabled = True
        self.max_spans = max_spans
        self.spans: List[Span] = []
        #: Instant events fed by the EventTrace/BlockTracer adapters.
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        #: Called with each span as it closes (see
        #: :meth:`~repro.obs.runtime.ObsRuntime.flush_spans`): the hook
        #: incremental streaming hangs off.  Closure-driven rather than a
        #: sim process, so enabling it cannot perturb event schedules.
        #: Note it fires even for spans past the retention cap — the
        #: streamed file is complete where the in-memory list is partial.
        self.sink: Optional[Callable[[Span], None]] = None

    # ------------------------------------------------------------- spans
    def start(self, name: str, kind: str, trace_id: int, start: float,
              parent: Optional[Span] = None,
              parent_id: Optional[int] = None, **attrs: Any) -> Span:
        """Open a span; pass either a parent span or an explicit id."""
        if parent is not None:
            parent_id = parent.span_id
        span = Span(trace_id, next(self._ids), parent_id, name, kind,
                    start, attrs or None)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def finish(self, span: Span, end: float) -> None:
        span.end = end
        if self.sink is not None:
            self.sink(span)

    # ------------------------------------------------------------- events
    def event(self, name: str, time: float, **attrs: Any) -> None:
        """Record an instant (zero-duration) telemetry event."""
        rec = {"type": "event", "name": name, "t": time}
        if attrs:
            rec["attrs"] = attrs
        if len(self.events) < self.max_spans:
            self.events.append(rec)
        else:
            self.dropped += 1

    # ------------------------------------------------------------- misc
    def clear(self) -> None:
        """Drop retained spans/events (measurement-state reset)."""
        self.spans.clear()
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)
