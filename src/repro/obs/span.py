"""Sim-time spans and the tracer that records them.

A :class:`Span` is one timed operation on the path of a request:
``trace_id`` groups every span of one parent request, ``parent_id``
links a span to its causal parent, and ``kind`` is the coarse category
the critical-path analyzer attributes time to (``client``, ``rpc``,
``network``, ``server``, ``queue``, ``service``).

The tracer follows the ``BlockTracer`` pattern: construction is cheap,
and every instrumented site guards with ``if tracer is not None`` so a
run without observability pays one attribute load per site and nothing
else.  Spans are plain ``__slots__`` objects — a traced run allocates
one per operation, which is the dominant (and only) tracing cost.  Two
hot-path mitigations keep that cost down:

* **Empty-attrs sentinel.**  Spans opened without attributes share one
  immutable empty mapping (:data:`EMPTY_ATTRS`) instead of each holding
  ``None``/a fresh dict; :meth:`Span.annotate` copies on first write.
  The sentinel is falsy, so every ``span.attrs or {}`` /
  ``if span.attrs:`` consumer behaves exactly as before.
* **Slab/freelist + 1-in-N sampling.**  With ``sample_n > 1`` only
  traces whose id is divisible by N are retained.  :meth:`Tracer.root`
  returns ``None`` for the others, and because every instrumented site
  hangs child spans off a non-``None`` parent, an unsampled trace
  costs one modulo — no span object is ever built for it.  Spans of
  unsampled traces that *are* opened directly via :meth:`Tracer.start`
  are recycled through a bounded freelist once they close, so they
  cost slot writes instead of an allocation.  The sampling decision is
  a pure function of the trace id and therefore constant down the
  whole request tree — every retained trace is complete.  Caveat: a
  recycled span object may still be referenced
  by a straggler (e.g. a late duplicate RPC attempt under fault
  injection reading ``sub.span``); such a reference sees the recycled
  span's *new* identity.  This only mislabels telemetry of unsampled
  traces on faulted runs — never retained data — and ``sample_n == 1``
  (the default) never recycles anything.
"""

from __future__ import annotations

import itertools
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Optional

#: Span kinds the critical-path analyzer knows how to attribute.
KIND_CLIENT = "client"
KIND_RPC = "rpc"
KIND_NETWORK = "network"
KIND_SERVER = "server"
KIND_QUEUE = "queue"
KIND_SERVICE = "service"

#: Shared immutable mapping for spans with no attributes.  Falsy (it is
#: empty), so serialization and ``attrs or {}`` call sites are
#: unchanged; :meth:`Span.annotate` swaps it for a private dict on the
#: first write (copy-on-write).
EMPTY_ATTRS: Dict[str, Any] = MappingProxyType({})


class Span:
    """One timed operation; ``end is None`` while still open."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "start", "end", "attrs", "sampled")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, kind: str, start: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs if attrs else EMPTY_ATTRS
        self.sampled = True

    @property
    def duration(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach (or update) attributes after the span was opened —
        used where the interesting fact (route taken, return value) is
        only known mid-operation.  Copy-on-write: the shared empty
        sentinel is never mutated."""
        if self.attrs is EMPTY_ATTRS or not self.attrs:
            self.attrs = dict(attrs)
        else:
            self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL wire form (see :mod:`repro.obs.export`)."""
        rec: Dict[str, Any] = {
            "type": "span", "trace": self.trace_id, "id": self.span_id,
            "parent": self.parent_id, "name": self.name, "kind": self.kind,
            "t0": self.start, "t1": self.end,
        }
        if self.attrs:
            rec["attrs"] = dict(self.attrs)
        return rec

    @classmethod
    def from_dict(cls, rec: Dict[str, Any]) -> "Span":
        span = cls(rec["trace"], rec["id"], rec.get("parent"), rec["name"],
                   rec.get("kind", "other"), rec["t0"], rec.get("attrs"))
        span.end = rec.get("t1")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name} #{self.span_id} trace={self.trace_id} "
                f"[{self.start}, {self.end})>")


class Tracer:
    """Records spans (and instant events) for one simulated run.

    Retention is bounded by ``max_spans``: past the cap new spans are
    counted in :attr:`dropped` but not retained (they are still useful
    as a signal that the in-memory analysis is partial; the JSONL
    mirror written by :class:`~repro.obs.runtime.ObsRuntime` is not
    affected because it is fed from the same list before clearing).

    ``sample_n`` enables 1-in-N root-trace sampling (see the module
    docstring): unsampled spans are neither retained nor streamed, and
    their objects are recycled through a freelist at :meth:`finish`.
    """

    #: Freelist depth: enough to cover the spans in flight at any
    #: instant on a deep cluster; past this, finished unsampled spans
    #: fall to the garbage collector like before.
    FREELIST_CAP = 4096

    def __init__(self, max_spans: int = 200_000, sample_n: int = 1) -> None:
        self.enabled = True
        self.max_spans = max_spans
        self.sample_n = max(1, int(sample_n))
        self.spans: List[Span] = []
        #: Instant events fed by the EventTrace/BlockTracer adapters.
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        #: Work discarded by the 1-in-N sampler: whole trees pruned at
        #: :meth:`root` plus individual spans recycled at
        #: :meth:`finish` (distinct from ``dropped``, which counts
        #: retention-cap overflow of *sampled* spans).
        self.unsampled = 0
        self._ids = itertools.count(1)
        self._free: List[Span] = []
        #: Called with each span as it closes (see
        #: :meth:`~repro.obs.runtime.ObsRuntime.flush_spans`): the hook
        #: incremental streaming hangs off.  Closure-driven rather than a
        #: sim process, so enabling it cannot perturb event schedules.
        #: Note it fires even for spans past the retention cap — the
        #: streamed file is complete where the in-memory list is partial.
        #: It never fires for unsampled spans.
        self.sink: Optional[Callable[[Span], None]] = None

    # ------------------------------------------------------------- spans
    def sampled(self, trace_id: int) -> bool:
        """Whether a trace id falls in the retained 1-in-N sample."""
        return self.sample_n <= 1 or trace_id % self.sample_n == 0

    def root(self, name: str, kind: str, trace_id: int, start: float,
             **attrs: Any) -> Optional[Span]:
        """Open a trace's root span — or ``None`` when the trace falls
        outside the 1-in-N sample.

        This is the hot-path form of sampling: instrumented sites hang
        child spans off a non-``None`` parent, so returning ``None``
        here prunes the *entire* tree of an unsampled trace before a
        single span object is touched.  The per-span freelist in
        :meth:`start`/:meth:`finish` still covers callers that open
        unsampled spans directly.
        """
        if self.sample_n > 1 and trace_id % self.sample_n:
            self.unsampled += 1
            return None
        return self.start(name, kind, trace_id, start, **attrs)

    def start(self, name: str, kind: str, trace_id: int, start: float,
              parent: Optional[Span] = None,
              parent_id: Optional[int] = None, **attrs: Any) -> Span:
        """Open a span; pass either a parent span or an explicit id."""
        if parent is not None:
            parent_id = parent.span_id
        sample_n = self.sample_n
        keep = sample_n <= 1 or trace_id % sample_n == 0
        free = self._free
        if free:
            # Slab path: refill a recycled span object slot by slot
            # instead of allocating.  Recycled spans only come from unsampled
            # finishes, so nothing retained/streamed aliases them.
            span = free.pop()
            span.trace_id = trace_id
            span.span_id = next(self._ids)
            span.parent_id = parent_id
            span.name = name
            span.kind = kind
            span.start = start
            span.end = None
            span.attrs = attrs if attrs else EMPTY_ATTRS
        else:
            span = Span(trace_id, next(self._ids), parent_id, name, kind,
                        start, attrs if attrs else None)
        span.sampled = keep
        if keep:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped += 1
        return span

    def finish(self, span: Span, end: float) -> None:
        span.end = end
        if span.sampled:
            if self.sink is not None:
                self.sink(span)
            return
        self.unsampled += 1
        free = self._free
        if len(free) < self.FREELIST_CAP:
            span.attrs = EMPTY_ATTRS  # drop attr references early
            free.append(span)

    # ------------------------------------------------------------- events
    def event(self, name: str, time: float, **attrs: Any) -> None:
        """Record an instant (zero-duration) telemetry event."""
        rec = {"type": "event", "name": name, "t": time}
        if attrs:
            rec["attrs"] = attrs
        if len(self.events) < self.max_spans:
            self.events.append(rec)
        else:
            self.dropped += 1

    # ------------------------------------------------------------- misc
    def clear(self) -> None:
        """Drop retained spans/events (measurement-state reset)."""
        self.spans.clear()
        self.events.clear()
        self.dropped = 0
        self.unsampled = 0

    def __len__(self) -> int:
        return len(self.spans)
