"""A small time-series metrics registry sampled on sim-time ticks.

Three instrument types, modelled on the Prometheus client surface:

* :class:`Counter` — monotonically increasing count (admissions,
  rejections, redirected writes).
* :class:`Gauge` — a callback read at sample time (queue depth, SSD log
  occupancy, partition ratio).
* :class:`Histogram` — bucketed distribution fed by ``observe`` (the
  Eq. 1/3 benefit values at decision time).

A :class:`MetricsRegistry` owns the instruments and, when started on an
environment, runs a sampler process that snapshots every counter and
gauge each ``period`` simulated seconds into an in-memory time series
exported as JSONL (one ``{"t", "name", "labels", "value"}`` row per
sample).  Histograms are exported once, as their final bucket counts.

The sampler consumes event-heap sequence numbers like the audit
watchdog does, so enabling metrics perturbs event schedules; this is
why the observability config is part of the experiment-matrix cache key
(see :mod:`repro.experiments.runner`).
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


# ----------------------------------------------- Prometheus exposition
def _prom_name(name: str) -> str:
    """Sanitize a metric/label name to the Prometheus charset."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: float) -> str:
    """Render a sample value (Prometheus uses Go-style floats)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: Dict[str, Any],
                 extra: Optional[Dict[str, str]] = None) -> str:
    """Render a ``{k="v",...}`` label block ('' when empty)."""
    items: List[Tuple[str, str]] = []
    for k, v in sorted(labels.items()):
        key = re.sub(r"[^a-zA-Z0-9_]", "_", str(k))
        if not key or key[0].isdigit():
            key = "_" + key
        val = str(v).replace("\\", r"\\").replace('"', r"\"") \
                    .replace("\n", r"\n")
        items.append((key, val))
    for k, v in (extra or {}).items():
        items.append((k, v))
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Instantaneous value read from a callback at sample time."""

    __slots__ = ("name", "labels", "fn")

    def __init__(self, name: str, labels: Dict[str, Any],
                 fn: Callable[[], float]) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn

    def read(self) -> float:
        return float(self.fn())


class Histogram:
    """Fixed-bucket histogram (upper bounds; +inf bucket is implicit)."""

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, labels: Dict[str, Any],
                 buckets: Sequence[float]) -> None:
        self.name = name
        self.labels = labels
        self.bounds = sorted(buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_row(self) -> Dict[str, Any]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {"name": self.name, "labels": self.labels, "type": "histogram",
                "count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Instrument registry + sim-time sampler + JSONL export."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: Sampled time-series rows, in sample order.
        self.samples: List[Dict[str, Any]] = []
        self._stopped = False

    # -------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, labels)
        return inst

    def gauge(self, name: str, fn: Callable[[], float],
              **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges[key] = Gauge(name, labels, fn)
        return inst

    def histogram(self, name: str, buckets: Sequence[float],
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, labels, buckets)
        return inst

    # ----------------------------------------------------------- sampling
    def sample(self, t: float) -> None:
        """Snapshot every counter and gauge at sim time ``t``."""
        rows = self.samples
        for counter in self._counters.values():
            rows.append({"t": t, "name": counter.name,
                         "labels": counter.labels, "value": counter.value})
        for gauge in self._gauges.values():
            rows.append({"t": t, "name": gauge.name,
                         "labels": gauge.labels, "value": gauge.read()})

    def start(self, env, period: float):
        """Start the periodic sampler process on ``env``.

        Stops at the next tick after :meth:`stop` — mirroring the audit
        watchdog's lifecycle so ``env.run()`` (to exhaustion) can end.
        """
        if period <= 0:
            return None
        return env.process(self._sampler(env, period), name="obs-sampler")

    def _sampler(self, env, period: float):
        while not self._stopped:
            self.sample(env.now)
            yield env.timeout(period)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------- export
    def final_rows(self) -> List[Dict[str, Any]]:
        """Histogram summaries (appended after the time series)."""
        return [h.to_row() for h in self._histograms.values()]

    def export_jsonl(self, path: str, mode: str = "a") -> int:
        """Append all samples + histogram rows to ``path``; row count."""
        rows = list(self.samples) + self.final_rows()
        with open(path, mode, encoding="utf-8") as fh:
            for row in rows:
                json.dump(row, fh, default=str)
                fh.write("\n")
        return len(rows)

    def to_prometheus_text(self) -> str:
        """Render the registry's *current* state as Prometheus text.

        OpenMetrics-style exposition: one ``# TYPE`` line per metric
        family, labels rendered ``{k="v"}``, histograms exported as
        cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
        ``_count``.  Gauges read their callbacks at render time, so
        this is a live snapshot — the service scrapes it under
        ``/metrics`` and the CLI's ``--metrics-text`` writes the final
        snapshot of a run.  :func:`parse_prometheus_text` round-trips
        it (asserted by tests/test_obs.py).
        """
        lines: List[str] = []
        families: Dict[str, str] = {}

        def family(name: str, kind: str) -> str:
            pname = _prom_name(name)
            if families.get(pname) is None:
                families[pname] = kind
                lines.append(f"# TYPE {pname} {kind}")
            return pname

        for counter in self._counters.values():
            pname = family(counter.name, "counter")
            lines.append(f"{pname}{_prom_labels(counter.labels)} "
                         f"{_prom_value(counter.value)}")
        for gauge in self._gauges.values():
            pname = family(gauge.name, "gauge")
            lines.append(f"{pname}{_prom_labels(gauge.labels)} "
                         f"{_prom_value(gauge.read())}")
        for hist in self._histograms.values():
            pname = family(hist.name, "histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                le = _prom_labels(hist.labels,
                                  {"le": _prom_value(float(bound))})
                lines.append(f"{pname}_bucket{le} {cumulative}")
            le = _prom_labels(hist.labels, {"le": "+Inf"})
            lines.append(f"{pname}_bucket{le} {hist.count}")
            lab = _prom_labels(hist.labels)
            lines.append(f"{pname}_sum{lab} {_prom_value(hist.sum)}")
            lines.append(f"{pname}_count{lab} {hist.count}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop samples and reset instruments (measurement reset)."""
        self.samples.clear()
        for counter in self._counters.values():
            counter.value = 0.0
        for hist in self._histograms.values():
            hist.counts = [0] * (len(hist.bounds) + 1)
            hist.count = 0
            hist.sum = 0.0


def load_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read back a metrics JSONL file (tests/CI helpers)."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str):
    """Parse Prometheus exposition text back into plain data.

    Returns ``(types, samples)``: ``types`` maps family name to its
    declared type, ``samples`` maps ``(name, ((label, value), ...))``
    to the float sample.  Label values come back as strings (the wire
    format is untyped) — the round-trip test compares accordingly.
    Raises ``ValueError`` on a malformed sample line.
    """
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels = tuple(sorted(
            (k, v.replace(r"\n", "\n").replace(r"\"", '"')
              .replace(r"\\", "\\"))
            for k, v in _LABEL_RE.findall(m.group("labels") or "")))
        raw = m.group("value")
        value = float("nan") if raw == "NaN" else float(
            raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        samples[(m.group("name"), labels)] = value
    return types, samples


#: Default benefit-value histogram buckets (seconds of saved service
#: time per striping unit; negative buckets capture rejected returns).
BENEFIT_BUCKETS: Sequence[float] = (-0.01, -0.001, 0.0, 0.001, 0.005,
                                    0.01, 0.05, 0.1)


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of pre-sorted values (None when empty)."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]
