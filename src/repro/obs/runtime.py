"""Per-cluster observability wiring: one telemetry spine per run.

:class:`ObsRuntime` owns the run's :class:`~repro.obs.span.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` and attaches them to every
instrumented component (clients, network, servers, iBridge managers,
block queues) the way :class:`~repro.audit.runtime.AuditRuntime`
attaches its auditors.  It also installs the sink adapters that make the
two pre-existing telemetry sources — the audit
:class:`~repro.audit.trace.EventTrace` and the per-disk
:class:`~repro.block.blktrace.BlockTracer` — feed the same tracer as
instant events, so one exported file carries the whole story of a run.

Lifecycle (mirrors the audit runtime):

* built by :class:`~repro.pfs.cluster.Cluster` when
  ``config.obs.enabled``;
* the metrics sampler runs as a sim process until :meth:`stop`
  (``Cluster.shutdown`` calls it, like the watchdog);
* :meth:`finish_run` (called by the workload harness after the drain)
  takes a final sample and exports spans/metrics to the configured
  paths — appending, so multi-cluster experiments accumulate into one
  file that the CLI truncated once up front (the ``--audit-trace``
  contract).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .critical_path import RunReport, analyze
from .export import append_spans
from .metrics import MetricsRegistry
from .span import Tracer
from .timeline import TimelineRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ObsConfig
    from ..pfs.cluster import Cluster


class ObsRuntime:
    """Tracer + metrics registry + component wiring for one cluster."""

    def __init__(self, env, config: "ObsConfig") -> None:
        self.env = env
        self.config = config
        self.tracer: Optional[Tracer] = (
            Tracer(max_spans=config.max_spans,
                   sample_n=config.trace_sample_n) if config.trace else None)
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None)
        #: Sim-time series recorder (None unless timeline_dt > 0): the
        #: continuous-telemetry sibling of the one-shot registry sample.
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder(self.registry, config.timeline_dt,
                             config.timeline_limit)
            if self.registry is not None and config.timeline_dt > 0
            else None)
        #: Fault-injector record list (attached by the cluster after the
        #: injector installs); converted to timeline marks at finish.
        self._fault_records = None
        self._fault_marked = 0
        self._finished = False
        # Incremental span streaming (config.flush_spans > 0): closed
        # spans buffer here and hit the JSONL file every flush_spans
        # closures, so an aborted / budget-killed / OOM-killed episode
        # still leaves its trace prefix on disk instead of losing
        # everything export-at-finish would have written.
        self._stream_buf: list = []
        self._events_streamed = 0
        self._streaming = bool(self.tracer is not None
                               and config.trace_path
                               and config.flush_spans > 0)
        if self._streaming:
            self.tracer.sink = self._span_closed

    # ------------------------------------------------------------- wiring
    def wire_cluster(self, cluster: "Cluster") -> None:
        """Attach the tracer/registry to every instrumented component."""
        tracer = self.tracer
        reg = self.registry
        cluster.network.obs = tracer
        if tracer is not None and cluster.audit is not None:
            self.attach_event_trace(cluster.audit.trace)
        for server in cluster.servers:
            if getattr(server, "is_remote", False):
                continue  # stub relays have no queues/devices to wire
            server.obs = tracer
            if self.timeline is not None:
                # GC-storm edges become event-driven timeline marks.
                env = self.env
                server.ssd.obs_mark = (
                    lambda name, tl=self.timeline, sid=server.id:
                    tl.mark(name, env.now, server=sid))
            self._wire_queue(server.ssd_queue, server.id, "ssd")
            for d, unit in enumerate(server.disks):
                self._wire_queue(unit.queue, server.id, f"hdd{d}")
                if tracer is not None:
                    self.attach_block_tracer(unit.tracer, unit.queue.name)
                if unit.ibridge is not None:
                    self._wire_manager(unit.ibridge, server.id, d)
        if reg is not None:
            reg.start(self.env, self.config.sample_period)
        if self.timeline is not None:
            self.timeline.start(self.env)

    def wire_client(self, client) -> None:
        client.obs = self.tracer
        if self.registry is not None:
            self.registry.gauge("outstanding_subrequests",
                                (lambda c=client: c.outstanding),
                                client=client.id)

    def attach_faults(self, injector) -> None:
        """Record the injector's window log; its begin/end records are
        replayed as timeline marks at finish (they carry sim times, so
        the pull is lossless)."""
        self._fault_records = injector.records

    def _wire_queue(self, queue, server_id: int, dev: str) -> None:
        queue.obs = self.tracer
        if self.registry is not None:
            self.registry.gauge("queue_depth", (lambda q=queue: q.pending),
                                server=server_id, dev=dev)
            device = queue.device
            if getattr(device, "ftl", None) is not None:
                self.registry.gauge(
                    "ssd_gc_active",
                    (lambda d=device: 1 if d.gc_active else 0),
                    server=server_id, dev=dev)
                self.registry.gauge(
                    "ssd_write_amplification",
                    (lambda d=device: d.ftl.write_amplification),
                    server=server_id, dev=dev)
                self.registry.gauge(
                    "ssd_gc_free_fraction",
                    (lambda d=device: d.ftl.free_fraction()),
                    server=server_id, dev=dev)
                self.registry.gauge(
                    "ssd_gc_stall_seconds",
                    (lambda d=device: d.gc_stall_time),
                    server=server_id, dev=dev)

    def _wire_manager(self, manager, server_id: int, disk: int) -> None:
        manager.obs = self.tracer
        manager.metrics = self.registry
        reg = self.registry
        if reg is None:
            return
        if manager._log is not None:
            reg.gauge("ssd_log_live_bytes",
                      (lambda m=manager: m._log.live_bytes
                       if m._log is not None else 0),
                      server=server_id, disk=disk)
            reg.gauge("ssd_log_free_segments",
                      (lambda m=manager: m._log.free_segments
                       if m._log is not None else 0),
                      server=server_id, disk=disk)
        reg.gauge("partition_used_bytes",
                  (lambda m=manager: m.partition.used()),
                  server=server_id, disk=disk)
        reg.gauge("partition_fragment_share",
                  (lambda m=manager: m.partition.shares()[1]),
                  server=server_id, disk=disk)
        # Cumulative manager counters sampled as time series: the
        # sampled deltas are the paper-relevant admission rates.
        reg.gauge("ibridge_redirected_writes",
                  (lambda m=manager: m.stats.ssd_redirected_writes),
                  server=server_id, disk=disk)
        reg.gauge("ibridge_rejected_admissions",
                  (lambda m=manager: m.stats.rejected_admissions),
                  server=server_id, disk=disk)

    # ------------------------------------------------------------ adapters
    def attach_event_trace(self, trace) -> None:
        """Mirror audit trace records into the tracer as instant events."""
        tracer = self.tracer
        if tracer is None:
            return

        def sink(record: dict) -> None:
            attrs = {k: v for k, v in record.items() if k not in ("t", "kind")}
            tracer.event(f"audit.{record.get('kind', 'event')}",
                         float(record.get("t", 0.0)), **attrs)

        trace.set_sink(sink)

    def attach_block_tracer(self, block_tracer, dev: str) -> None:
        """Mirror blktrace dispatch records into the tracer."""
        tracer = self.tracer
        if tracer is None:
            return

        def sink(rec) -> None:
            tracer.event("blk.dispatch", rec.time, dev=dev,
                         op=rec.op.name.lower(), sectors=rec.sectors,
                         merged=rec.merged)

        block_tracer.sink = sink

    # ---------------------------------------------------------- streaming
    def _span_closed(self, span) -> None:
        self._stream_buf.append(span)
        if len(self._stream_buf) >= self.config.flush_spans:
            self.flush_spans()

    def flush_spans(self) -> int:
        """Write buffered closed spans (+ new instant events) to the
        trace path now; returns the number of rows appended.

        No-op unless streaming is on.  Safe to call at any time — the
        chaos episode runner calls it after catching a typed abort so
        the failure's trace survives for the reproducer.
        """
        if not self._streaming:
            return 0
        events = self.tracer.events[self._events_streamed:]
        self._events_streamed = len(self.tracer.events)
        if not self._stream_buf and not events:
            return 0
        rows = append_spans(self.config.trace_path, self._stream_buf, events)
        self._stream_buf.clear()
        return rows

    # ----------------------------------------------------------- lifecycle
    def stop(self) -> None:
        """Stop the samplers (lets ``env.run()`` terminate)."""
        if self.registry is not None:
            self.registry.stop()
        if self.timeline is not None:
            self.timeline.stop()

    def reset(self) -> None:
        """Drop telemetry accumulated by warm runs (measurement reset)."""
        if self.tracer is not None:
            self.tracer.clear()
        if self.registry is not None:
            self.registry.clear()
        if self.timeline is not None:
            self.timeline.clear()
            self._fault_marked = 0
        # Anything still buffered belongs to the discarded passes, and
        # tracer.clear() emptied the events list the stream index points
        # into.
        self._stream_buf.clear()
        self._events_streamed = 0

    def finish_run(self) -> None:
        """Final sample + export to the configured paths (idempotent)."""
        if self._finished:
            return
        self._finished = True
        if self.timeline is not None:
            self.timeline.sample(self.env.now)
            self.timeline.stop()
            self._mark_fault_windows()
            path = self.config.timeline_path
            if path:
                if path.endswith(".csv"):
                    self.timeline.export_csv(path)
                else:
                    self.timeline.export_jsonl(path)
        if self.registry is not None:
            self.registry.sample(self.env.now)
            self.registry.stop()
            if self.config.metrics_path:
                self.registry.export_jsonl(self.config.metrics_path)
            if self.config.metrics_text_path:
                with open(self.config.metrics_text_path, "w",
                          encoding="utf-8") as fh:
                    fh.write(self.registry.to_prometheus_text())
        if self.tracer is not None and self.config.trace_path:
            if self._streaming:
                # Everything closed already streamed; drain the tail.
                self.flush_spans()
            else:
                closed = [s for s in self.tracer.spans if s.end is not None]
                append_spans(self.config.trace_path, closed,
                             self.tracer.events)

    def _mark_fault_windows(self) -> None:
        """Convert injector begin/end records into timeline marks."""
        if self.timeline is None or self._fault_records is None:
            return
        records = self._fault_records[self._fault_marked:]
        self._fault_marked = len(self._fault_records)
        for rec in records:
            attrs = {"event": rec.event.kind.value}
            if getattr(rec.event, "server", None) is not None:
                attrs["server"] = rec.event.server
            self.timeline.mark(f"fault_{rec.phase}", rec.time, **attrs)

    def timeline_summary(self):
        """Per-series min/mean/p99/last dict (None when timeline off)."""
        if self.timeline is None:
            return None
        return self.timeline.summary()

    # ------------------------------------------------------------ analysis
    def analyze(self) -> RunReport:
        """Critical-path report over the spans retained in memory."""
        if self.tracer is None:
            return RunReport()
        return analyze(self.tracer.spans)
