"""Deterministic fault injection and failure recovery (``repro.faults``).

Declarative :class:`FaultPlan` windows — device fail-slow/fail-stop,
SSD failure with dirty-log drain or forfeit, network delay/drop, data
server crash/restart — scheduled on the simulated clock by a
:class:`FaultInjector` and recovered by the stack under test: iBridge's
SSD-bypass degraded mode and the PFS client's timeout/retry.  All
stochastic behaviour draws from seeded RNG substreams, so a plan
replays bit-identically.
"""

from .device import FaultableDevice, faultable
from .health import restoration_failures
from .injector import FaultInjector, partition_events
from .plan import (ALL_KINDS, FaultEvent, FaultKind, FaultPlan, FaultRecord,
                   fail_slow, gc_storm, server_outage, ssd_outage)

__all__ = [
    "ALL_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultableDevice",
    "fail_slow",
    "faultable",
    "gc_storm",
    "partition_events",
    "restoration_failures",
    "server_outage",
    "ssd_outage",
]
