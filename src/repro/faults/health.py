"""Post-recovery health checks: did every fault window actually heal?

:func:`restoration_failures` is the restoration oracle shared by the
chaos episode runner and the sharded coordinator.  It reads a settled
cluster — one run past its plan's horizon and drained — and reports
every wound the recovery paths failed to close: a server still crashed,
a block queue still paused, an iBridge manager still in SSD-bypass
mode, a GC storm still active, or an injector log whose ``begin``
transitions outnumber its ``end``\\ s.

On a sharded cluster the function sees one *shard's* view: remote
server stubs carry no devices and are skipped, and the log-balance
check counts only the events partitioned to the local injector
(:attr:`FaultInjector.events`), so each shard's answer covers exactly
the faults it drives.  The coordinator concatenates the per-shard
lists — the union is the fleet check the serial oracle performs.
"""

from __future__ import annotations

from typing import List


def restoration_failures(cluster) -> List[str]:
    """Post-settle recovery checks; every entry is one unhealed wound."""
    out = []
    for server in cluster.servers:
        if server.is_remote:
            continue
        if server.crashed:
            out.append(f"restore:server{server.id}-still-crashed")
        if server.ssd_queue.paused:
            out.append(f"restore:server{server.id}-ssd-queue-paused")
        if getattr(server.ssd, "_storm_depth", 0) > 0:
            out.append(f"restore:server{server.id}-ssd-storm-active")
        for d, unit in enumerate(server.disks):
            if unit.queue.paused:
                out.append(f"restore:server{server.id}-hdd{d}-queue-paused")
            if unit.ibridge is not None and not unit.ibridge.ssd_available:
                out.append(f"restore:server{server.id}-disk{d}-ssd-bypass")
    if cluster.faults is not None:
        records = cluster.faults.records
        begun = sum(1 for r in records if r.phase == "begin")
        ended = sum(1 for r in records if r.phase == "end")
        local = cluster.faults.events
        finite = sum(1 for _idx, e in local if e.duration is not None)
        if begun != len(local) or ended != finite:
            out.append(f"restore:fault-log-unbalanced"
                       f"({begun}/{len(local)} begun,"
                       f" {ended}/{finite} ended)")
    return out
