"""Declarative fault plans: what breaks, where, when, and how badly.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` windows
scheduled on the *simulated* clock.  Plans are plain data — dataclasses
round-trippable through dicts, JSON, and (when PyYAML is installed)
YAML — so a failing scenario can be checked into a repo and replayed
bit-identically: all stochastic behaviour a plan triggers (network
message drops) draws from :func:`repro.util.rng.rng_stream` substreams
derived from the cluster seed plus the plan name, never from global
randomness.

Event taxonomy (see docs/FAULTS.md for recovery semantics):

========================  ====================================================
``device_slow``           Fail-slow window on one disk (or a server's SSD):
                          positioning/latency and transfer/bandwidth
                          multipliers wrap the device timing model.  iBridge's
                          service model sees the same degradation, as the
                          paper's measured EWMA would.
``device_fail``           Fail-stop window on one disk: its block queue is
                          paused; pending and new requests wait for recovery.
``ssd_fail``              SSD fail-stop on one server.  iBridge enters
                          SSD-bypass degraded mode: the dirty log is drained
                          (``policy="drain"``, graceful removal) or forfeited
                          (``policy="forfeit"``, hard failure), all traffic is
                          routed to the disks, and the cache is re-admitted
                          once the (replacement) SSD returns.
``net_delay``             Every message touching the target endpoints pays an
                          extra fixed delay.
``net_drop``              Messages touching the target endpoints are dropped
                          with probability ``drop_prob`` (deterministic RNG
                          substream); client retry recovers.
``server_crash``          Data-server crash: replies in flight are lost and
                          new requests are ignored until the restart at the
                          window end.  Client timeout/retry recovers.
``gc_storm``              SSD garbage-collection storm on one server's drive
                          — or, with ``server=None``, a *correlated* storm on
                          every drive in the fleet at once (firmware-epoch /
                          synchronized-wearout behaviour).  Every command on
                          an affected drive stalls one ``gc_slice`` and reads
                          pay the GC jitter term; works with or without the
                          FTL model enabled.  Storm windows nest and compose
                          with other fault kinds.
========================  ====================================================
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..errors import FaultError


class FaultKind(str, Enum):
    """The supported fault classes."""

    DEVICE_SLOW = "device_slow"
    DEVICE_FAIL = "device_fail"
    SSD_FAIL = "ssd_fail"
    NET_DELAY = "net_delay"
    NET_DROP = "net_drop"
    SERVER_CRASH = "server_crash"
    GC_STORM = "gc_storm"


#: Events with ``duration=None`` never revert (whole-run faults).
@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window."""

    kind: FaultKind
    #: Simulated start time (seconds) relative to injector installation.
    start: float = 0.0
    #: Window length; ``None`` means the fault lasts to the end of run.
    duration: Optional[float] = None
    #: Target data server id (``None`` = all servers, where sensible).
    server: Optional[int] = None
    #: Disk index within the server (device_slow / device_fail).
    disk: int = 0
    #: device_slow: multiplier on positioning / per-command latency.
    latency_mult: float = 1.0
    #: device_slow: multiplier on transfer time (inverse bandwidth).
    bw_mult: float = 1.0
    #: device_slow targets "hdd" (default) or "ssd".
    device: str = "hdd"
    #: net_delay: extra one-way delay per message (seconds).
    delay: float = 0.0
    #: net_drop: per-message drop probability.
    drop_prob: float = 0.0
    #: ssd_fail: "forfeit" (hard fail-stop, dirty bytes lost) or
    #: "drain" (graceful removal, dirty log written back first).
    policy: str = "forfeit"

    def validate(self) -> None:
        if self.start < 0:
            raise FaultError(f"fault start must be non-negative, got {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise FaultError(f"fault duration must be positive, got {self.duration}")
        if self.kind in (FaultKind.DEVICE_SLOW, FaultKind.DEVICE_FAIL,
                         FaultKind.SSD_FAIL, FaultKind.SERVER_CRASH):
            if self.server is None:
                raise FaultError(f"{self.kind.value} needs a target server")
        if self.kind in (FaultKind.DEVICE_FAIL, FaultKind.SERVER_CRASH,
                         FaultKind.SSD_FAIL) and self.duration is None:
            raise FaultError(
                f"{self.kind.value} needs a finite duration: an unrecovered "
                f"fail-stop can never drain at end of run")
        if self.kind is FaultKind.DEVICE_SLOW:
            if self.latency_mult < 1.0 or self.bw_mult < 1.0:
                raise FaultError("fail-slow multipliers must be >= 1")
            if self.latency_mult == 1.0 and self.bw_mult == 1.0:
                raise FaultError("device_slow with both multipliers at 1 "
                                 "is a no-op")
            if self.device not in ("hdd", "ssd"):
                raise FaultError(f"unknown device {self.device!r}")
        if self.kind is FaultKind.NET_DELAY and self.delay <= 0:
            raise FaultError("net_delay needs a positive delay")
        if self.kind is FaultKind.NET_DROP:
            if not 0.0 < self.drop_prob <= 1.0:
                raise FaultError("net_drop needs drop_prob in (0, 1]")
        if self.kind is FaultKind.SSD_FAIL and self.policy not in ("forfeit",
                                                                   "drain"):
            raise FaultError(f"unknown ssd_fail policy {self.policy!r}")
        if self.kind is FaultKind.GC_STORM and self.duration is None:
            raise FaultError(
                "gc_storm needs a finite duration: an unending storm makes "
                "every drain estimate meaningless")
        if self.disk < 0:
            raise FaultError("disk index must be non-negative")

    @property
    def end(self) -> Optional[float]:
        """Window end time, or ``None`` for whole-run faults."""
        if self.duration is None:
            return None
        return self.start + self.duration

    def to_dict(self) -> dict:
        out = {"kind": self.kind.value}
        for f in dataclasses.fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        data = dict(data)
        try:
            kind = FaultKind(data.pop("kind"))
        except (KeyError, ValueError) as exc:
            raise FaultError(f"fault event needs a valid kind: {exc}") from None
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultError(f"unknown fault event fields: {sorted(unknown)}")
        event = cls(kind=kind, **data)
        event.validate()
        return event


#: Fault kinds whose windows may NOT overlap on the same target: their
#: begin/revert actions are not composable (a second ``set_slowdown``
#: overwrites the first and the first cleanup then clears both; a second
#: ``pause`` on an already-paused queue resumes too early at the first
#: window end; crash/ssd-fail transitions are explicitly one-at-a-time).
#: Network windows are excluded — each installs its own independent
#: ``NetFault`` and stacking them is well-defined.
_EXCLUSIVE_KINDS = frozenset({FaultKind.DEVICE_SLOW, FaultKind.DEVICE_FAIL,
                              FaultKind.SSD_FAIL, FaultKind.SERVER_CRASH})


def _target_key(event: FaultEvent) -> Optional[tuple]:
    """Exclusion-group key for overlap checking (None = no exclusion)."""
    if event.kind not in _EXCLUSIVE_KINDS:
        return None
    if event.kind is FaultKind.SERVER_CRASH:
        return ("server", event.server)
    if event.kind is FaultKind.SSD_FAIL:
        # The SSD fail-stop and a device fault aimed at the SSD both
        # manipulate the same queue/device; they share one group.
        return ("ssd", event.server)
    if event.device == "ssd":
        return ("ssd", event.server)
    return ("hdd", event.server, event.disk)


def _windows_overlap(a: FaultEvent, b: FaultEvent) -> bool:
    a_end = float("inf") if a.end is None else a.end
    b_end = float("inf") if b.end is None else b.end
    return a.start < b_end and b.start < a_end


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated set of fault events for one run."""

    events: tuple = ()
    #: Used (with the cluster seed) to derive the RNG substreams for
    #: stochastic faults, so the same plan replays bit-identically.
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def validate(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultError(f"not a FaultEvent: {event!r}")
            event.validate()
        # Same-target windows of non-composable kinds must not overlap.
        # Before this check the overlap semantics were implicit in
        # FaultInjector._drive (last writer won, cleanups raced); the
        # plan generator (repro.chaos) relies on rejection to keep its
        # sampled plans well-defined.
        by_target: dict = {}
        for event in self.events:
            key = _target_key(event)
            if key is None:
                continue
            for other in by_target.setdefault(key, []):
                if _windows_overlap(event, other):
                    raise FaultError(
                        f"plan {self.name!r}: overlapping {event.kind.value} "
                        f"window [{event.start}, {event.end}) collides with "
                        f"{other.kind.value} [{other.start}, {other.end}) on "
                        f"the same target {key}; same-target fail/slow "
                        f"windows must be disjoint (merge or re-place them)")
            by_target[key].append(event)

    def horizon(self) -> float:
        """Latest finite window end (0.0 for an empty plan).

        Whole-run events (``duration=None``) contribute only their start
        time — they never revert, so there is nothing to wait for.
        """
        out = 0.0
        for event in self.events:
            out = max(out, event.start if event.end is None else event.end)
        return out

    @classmethod
    def merge(cls, *plans: "FaultPlan", name: Optional[str] = None) -> "FaultPlan":
        """Combine several plans into one validated plan.

        Events keep plan order (first plan's events first); the merged
        plan is re-validated, so same-target overlaps *across* the
        source plans are rejected just like overlaps within one plan.
        The chaos generator builds per-category sub-plans and merges
        them through this helper.
        """
        events: List[FaultEvent] = []
        names: List[str] = []
        for plan in plans:
            if not isinstance(plan, FaultPlan):
                raise FaultError(f"merge() takes FaultPlans, got {plan!r}")
            events.extend(plan.events)
            names.append(plan.name)
        merged = cls(events=tuple(events),
                     name=name if name is not None else "+".join(names) or
                     "fault-plan")
        merged.validate()
        return merged

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {"name": self.name,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "events" not in data:
            raise FaultError("a fault plan is a mapping with an 'events' list")
        events = [FaultEvent.from_dict(e) for e in data["events"]]
        plan = cls(events=tuple(events), name=data.get("name", "fault-plan"))
        plan.validate()
        return plan

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON (or, with PyYAML installed, YAML) file."""
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if path.endswith((".yml", ".yaml")):
            try:
                import yaml  # type: ignore
            except ImportError as exc:  # pragma: no cover - env dependent
                raise FaultError(
                    "YAML fault plans need PyYAML; use JSON instead") from exc
            data = yaml.safe_load(text)
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise FaultError(f"invalid fault plan in {path}: {exc}") from None
        return cls.from_dict(data)

    # --------------------------------------------------------- constructors
    @classmethod
    def single(cls, event: FaultEvent, name: str = "fault-plan") -> "FaultPlan":
        plan = cls(events=(event,), name=name)
        plan.validate()
        return plan


@dataclass
class FaultRecord:
    """One applied/reverted fault transition (the injector's own log).

    Kept independently of the audit trace so replay-determinism can be
    asserted even on unaudited runs.
    """

    time: float
    phase: str          # "begin" | "end"
    event: FaultEvent
    detail: dict = field(default_factory=dict)
    #: Position of ``event`` in its plan.  Partition-independent: a
    #: sharded injector records the same index the serial one does, so
    #: merged logs sort and compare across shard counts.
    index: int = -1

    def signature(self) -> tuple:
        """Hashable identity used by determinism tests."""
        return (round(self.time, 9), self.phase, self.event.to_dict(),
                tuple(sorted(self.detail.items())))


def fail_slow(server: int, factor: float, start: float = 0.0,
              duration: Optional[float] = None, disk: int = 0,
              bw_mult: float = 1.0, device: str = "hdd") -> FaultEvent:
    """Convenience: a positioning-latency fail-slow window.

    ``factor`` multiplies positioning (seek/rotation/settle) time — the
    signature of an aging spindle; transfer bandwidth is scaled
    separately via ``bw_mult``.
    """
    return FaultEvent(kind=FaultKind.DEVICE_SLOW, server=server, disk=disk,
                      start=start, duration=duration, latency_mult=factor,
                      bw_mult=bw_mult, device=device)


def ssd_outage(server: int, start: float, duration: float,
               policy: str = "forfeit") -> FaultEvent:
    """Convenience: an SSD fail-stop window with recovery at the end."""
    return FaultEvent(kind=FaultKind.SSD_FAIL, server=server, start=start,
                      duration=duration, policy=policy)


def gc_storm(start: float, duration: float,
             server: Optional[int] = None) -> FaultEvent:
    """Convenience: a GC storm on one drive, or — ``server=None`` — a
    correlated storm across every drive in the fleet at once."""
    return FaultEvent(kind=FaultKind.GC_STORM, server=server, start=start,
                      duration=duration)


def server_outage(server: int, start: float, duration: float) -> FaultEvent:
    """Convenience: a data-server crash window (restart at the end)."""
    return FaultEvent(kind=FaultKind.SERVER_CRASH, server=server, start=start,
                      duration=duration)


ALL_KINDS: List[str] = [k.value for k in FaultKind]
