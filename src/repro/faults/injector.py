"""The fault injector: drives a :class:`FaultPlan` against a cluster.

One injector per run.  At installation it wraps every device a plan
event targets in a :class:`~repro.faults.device.FaultableDevice` (a
timing-transparent proxy, so untargeted behaviour is bit-identical) and
spawns one driver process per event.  Each driver sleeps to its window
start, applies the fault, sleeps the window duration, and runs the
recovery:

======================  ==============================================
``device_slow``         Wrapper multipliers on + the iBridge service
                        model degraded to match (Eq. 1 averages
                        *measured* times in the paper; our samples are
                        profile estimates, so the degradation must be
                        mirrored for T to rise).  Both cleared at end.
``device_fail``         Block queue paused (in-flight dispatch
                        completes; queued requests wait); resumed at
                        window end.
``ssd_fail``            ``IBridgeManager.ssd_fail`` per manager on the
                        server (drain or forfeit the dirty log, then
                        degraded SSD-bypass mode); ``ssd_restore`` at
                        window end — never before the fail transition
                        finished, so a long drain defers the restore.
``net_delay``/``drop``  A :class:`~repro.net.NetFault` window on the
                        fabric; drop decisions draw from a
                        seed+plan-name RNG substream.
``server_crash``        ``DataServer.crash`` / ``restart``.
======================  ==============================================

Every transition is appended to :attr:`records` (the injector's own
deterministic log, used by replay tests) and — when the run is audited —
emitted as ``fault_begin`` / ``fault_end`` trace events.  Fail-stop
kinds that legitimately stall block queues are flagged to the audit
runtime so the livelock watchdog stands down for the window.

Sharded runs (``repro.sim.parallel``) pass a
:class:`~repro.sim.parallel.ShardContext` as ``shard``: the plan is
then *partitioned* — each server/device-targeted event installs only on
the shard that owns its target, while network windows and correlated
fleet-wide events (``gc_storm`` with ``server=None``) install on every
shard (the sender leg of a cross-shard message runs on the client's
shard, the reply leg on the server's, so a net window must exist on
both sides to be honored).  Events keep their *plan* index through the
partition, so the drop-RNG substream key ``fault:<plan>:<idx>:drop`` is
identical no matter which shard drives the event — and ``shards=1``
consumes the streams exactly like the serial injector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..net import NetFault
from ..util.rng import rng_stream
from .device import FaultableDevice, faultable
from .plan import FaultEvent, FaultKind, FaultPlan, FaultRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..audit.runtime import AuditRuntime
    from ..pfs.cluster import Cluster

#: Kinds whose windows stop block-request completions by design (the
#: audit watchdog must not read the stall as a livelock).
_STALLING = frozenset({FaultKind.DEVICE_FAIL, FaultKind.SERVER_CRASH})

#: Kinds installed on *every* shard of a partitioned run.  Network
#: windows affect message legs played on both endpoints' shards; a
#: ``gc_storm`` without a target server storms each shard's local
#: drives.  Everything else targets one server and installs only on
#: the owning shard.
_BROADCAST_KINDS = frozenset({FaultKind.NET_DELAY, FaultKind.NET_DROP})


def partition_events(plan: FaultPlan, shard) -> List[Tuple[int, FaultEvent]]:
    """The ``(plan_index, event)`` pairs one shard installs.

    ``shard=None`` (the serial build) installs everything.  Indices are
    plan positions, not partition positions — they key the drop-RNG
    substreams and the merged-record sort, both of which must not
    depend on how the plan was split.
    """
    pairs = list(enumerate(plan.events))
    if shard is None:
        return pairs
    out = []
    for idx, ev in pairs:
        if ev.kind in _BROADCAST_KINDS or ev.server is None:
            out.append((idx, ev))
        elif shard.owns_server(ev.server):
            out.append((idx, ev))
    return out


class FaultInjector:
    """Schedules and reverts the faults of one plan on one cluster."""

    def __init__(self, cluster: "Cluster", plan: FaultPlan,
                 audit: Optional["AuditRuntime"] = None,
                 shard=None) -> None:
        plan.validate()
        self.cluster = cluster
        self.plan = plan
        self.shard = shard
        #: The (plan index, event) pairs this injector drives — the
        #: whole plan serially, this shard's slice under partitioning.
        self.events: List[Tuple[int, FaultEvent]] = partition_events(
            plan, shard)
        self.env = cluster.env
        self.audit = audit if audit is not None else cluster.audit
        #: Chronological fault transitions (replay-determinism log).
        self.records: List[FaultRecord] = []
        #: Currently active fault windows.
        self.active = 0
        self._installed = False
        self._check_targets()

    # --------------------------------------------------------- validation
    def _check_targets(self) -> None:
        from ..errors import FaultError
        nservers = len(self.cluster.servers)
        for ev in self.plan.events:
            if ev.server is not None and not 0 <= ev.server < nservers:
                raise FaultError(
                    f"{ev.kind.value} targets server {ev.server}; cluster "
                    f"has {nservers}")
            if ev.kind in (FaultKind.DEVICE_SLOW, FaultKind.DEVICE_FAIL):
                server = self.cluster.servers[ev.server]
                if ev.device == "hdd" and not server.is_remote:
                    # Remote stubs have no devices; the owning shard
                    # runs the same bound check on the real server.
                    ndisks = len(server.disks)
                    if ev.disk >= ndisks:
                        raise FaultError(
                            f"{ev.kind.value} targets disk {ev.disk}; server "
                            f"{ev.server} has {ndisks}")

    # ------------------------------------------------------- installation
    def install(self) -> "FaultInjector":
        """Wrap targeted devices and start one driver per local event."""
        if self._installed:
            return self
        self._installed = True
        for _idx, ev in self.events:
            if ev.kind in (FaultKind.DEVICE_SLOW, FaultKind.DEVICE_FAIL):
                self._wrap(ev)
        # Driver creation order == plan order; the heap's sequence-number
        # tie-break then makes simultaneous windows apply in plan order.
        for idx, ev in self.events:
            self.env.process(self._drive(idx, ev),
                             name=f"fault:{idx}:{ev.kind.value}")
        return self

    def _wrap(self, ev: FaultEvent) -> FaultableDevice:
        """Swap the targeted device for its fault wrapper (idempotent)."""
        server = self.cluster.servers[ev.server]
        if ev.device == "ssd" or ev.kind is FaultKind.SSD_FAIL:
            wrapper = faultable(server.ssd_queue.device)
            server.ssd = wrapper
            server.ssd_queue.device = wrapper
            return wrapper
        unit = server.disks[ev.disk]
        wrapper = faultable(unit.queue.device)
        unit.hdd = wrapper
        unit.queue.device = wrapper
        return wrapper

    # ------------------------------------------------------------ driving
    def _drive(self, idx: int, ev: FaultEvent):
        env = self.env
        if ev.start > 0:
            yield env.timeout(ev.start)
        cleanup = yield from self._begin(idx, ev)
        if ev.duration is None:
            return  # whole-run fault; never reverts
        yield env.timeout(ev.duration)
        if cleanup is not None:
            yield from cleanup()
        self._record("end", ev, idx)

    def _record(self, phase: str, ev: FaultEvent, idx: int,
                **detail) -> None:
        self.records.append(FaultRecord(time=self.env.now, phase=phase,
                                        event=ev, detail=detail, index=idx))
        if phase == "begin":
            self.active += 1
        else:
            self.active = max(0, self.active - 1)
        if self.audit is not None:
            note = (self.audit.fault_begin if phase == "begin"
                    else self.audit.fault_end)
            note(ev.kind.value, stalling=ev.kind in _STALLING,
                 server=ev.server, **detail)

    def _begin(self, idx: int, ev: FaultEvent):
        """Apply the fault; returns the cleanup generator-factory."""
        kind = ev.kind
        if kind is FaultKind.DEVICE_SLOW:
            return self._begin_slow(ev, idx)
        if kind is FaultKind.DEVICE_FAIL:
            return self._begin_fail(ev, idx)
        if kind is FaultKind.SSD_FAIL:
            return (yield from self._begin_ssd_fail(ev, idx))
        if kind in (FaultKind.NET_DELAY, FaultKind.NET_DROP):
            return self._begin_net(idx, ev)
        if kind is FaultKind.SERVER_CRASH:
            return self._begin_crash(ev, idx)
        if kind is FaultKind.GC_STORM:
            return self._begin_gc_storm(ev, idx)
        raise AssertionError(f"unhandled fault kind {kind!r}")  # pragma: no cover
        yield  # pragma: no cover - makes _begin a generator

    # ------------------------------------------------------ per-kind logic
    def _managers(self, server_id: int):
        server = self.cluster.servers[server_id]
        return [u.ibridge for u in server.disks if u.ibridge is not None]

    def _begin_slow(self, ev: FaultEvent, idx: int):
        server = self.cluster.servers[ev.server]
        if ev.device == "ssd":
            wrapper: FaultableDevice = server.ssd_queue.device
            models = []  # the service model tracks the disk, not the SSD
        else:
            unit = server.disks[ev.disk]
            wrapper = unit.queue.device
            models = ([unit.ibridge.model] if unit.ibridge is not None
                      else [])
        wrapper.set_slowdown(ev.latency_mult, ev.bw_mult)
        for model in models:
            model.set_degradation(ev.latency_mult, ev.bw_mult)
        self._record("begin", ev, idx, latency_mult=ev.latency_mult,
                     bw_mult=ev.bw_mult, device=ev.device)

        def cleanup():
            wrapper.clear_slowdown()
            for model in models:
                model.clear_degradation()
            return
            yield  # pragma: no cover - generator form for _drive

        return cleanup

    def _begin_fail(self, ev: FaultEvent, idx: int):
        server = self.cluster.servers[ev.server]
        if ev.device == "ssd":
            queue = server.ssd_queue
        else:
            queue = server.disks[ev.disk].queue
        queue.device.fail_stop()
        queue.pause()
        self._record("begin", ev, idx, queue=queue.name)

        def cleanup():
            queue.device.recover()
            queue.resume()
            return
            yield  # pragma: no cover

        return cleanup

    def _begin_ssd_fail(self, ev: FaultEvent, idx: int):
        managers = self._managers(ev.server)
        dirty = sum(m.mapping.dirty_bytes for m in managers)
        self._record("begin", ev, idx, policy=ev.policy, dirty_bytes=dirty)
        procs = [self.env.process(m.ssd_fail(ev.policy),
                                  name=f"ssd-fail:{ev.server}:{i}")
                 for i, m in enumerate(managers)]

        def cleanup():
            # A graceful drain may outlast the window: the replacement
            # SSD is admitted only after the fail transition finished,
            # so the restore never races the forfeit/drain loop.
            if procs:
                yield self.env.all_of(procs)
            for m in managers:
                m.ssd_restore()

        return cleanup
        yield  # pragma: no cover - generator form for _begin

    def _begin_net(self, idx: int, ev: FaultEvent):
        endpoints = (None if ev.server is None
                     else {self.cluster.servers[ev.server].name})
        rng = None
        if ev.kind is FaultKind.NET_DROP:
            rng = rng_stream(self.cluster.config.seed,
                             f"fault:{self.plan.name}:{idx}:drop")
        fault = NetFault(delay=ev.delay, drop_prob=ev.drop_prob,
                         endpoints=endpoints, rng=rng)
        self.cluster.network.add_fault(fault)
        self._record("begin", ev, idx, delay=ev.delay,
                     drop_prob=ev.drop_prob)

        def cleanup():
            self.cluster.network.remove_fault(fault)
            return
            yield  # pragma: no cover

        return cleanup

    def _begin_gc_storm(self, ev: FaultEvent, idx: int):
        # ``server=None`` is the correlated multi-device form: every
        # drive in the fleet storms at once.  Storm state nests (a depth
        # counter on the drive), so overlapping windows compose.  Under
        # sharding the fleet form installs on every shard and each shard
        # storms only the drives it owns — the union is the fleet.
        if ev.server is None:
            servers = [s for s in self.cluster.servers if not s.is_remote]
        else:
            servers = [self.cluster.servers[ev.server]]
        drives = [s.ssd for s in servers]
        for drive in drives:
            drive.gc_storm_begin()
        self._record("begin", ev, idx, drives=len(drives))

        def cleanup():
            for drive in drives:
                drive.gc_storm_end()
            return
            yield  # pragma: no cover

        return cleanup

    def _begin_crash(self, ev: FaultEvent, idx: int):
        server = self.cluster.servers[ev.server]
        server.crash()
        self._record("begin", ev, idx, epoch=server.epoch)

        def cleanup():
            server.restart()
            return
            yield  # pragma: no cover

        return cleanup

    # ----------------------------------------------------------- replay
    def signature(self) -> tuple:
        """Hashable transition log for replay-determinism assertions."""
        return tuple(r.signature() for r in self.records)
