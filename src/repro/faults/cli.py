"""``python -m repro.faults`` — lint fault plans offline.

Service-submitted campaigns carry fault plans as JSON; a malformed one
used to surface only at cluster build time, deep inside a worker.  The
``validate`` subcommand runs the full plan linter (schema, per-event
field validation, the same-target overlap rule, horizon computation)
without building anything::

    python -m repro.faults validate plan.json
    python -m repro.faults validate plan.json --num-servers 4 \\
        --disks-per-server 2

The optional topology flags additionally run the injector's target
bound checks (server ids, disk indices) against the cluster the plan is
meant for — the same checks :class:`repro.faults.FaultInjector`
performs, minus the build.

Exit status: 0 for a valid plan, 1 for any
:class:`~repro.errors.FaultError` (the message goes to stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import FaultError
from .plan import FaultKind, FaultPlan


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fault-plan utilities (offline plan linting).")
    sub = p.add_subparsers(dest="command", required=True)
    v = sub.add_parser("validate",
                       help="lint a plan file: schema, overlaps, horizon")
    v.add_argument("plan", help="plan file (JSON, or YAML with PyYAML)")
    v.add_argument("--num-servers", type=int, default=None, metavar="N",
                   help="also bound-check event targets against an "
                        "N-server cluster")
    v.add_argument("--disks-per-server", type=int, default=None,
                   metavar="N",
                   help="also bound-check disk indices (needs "
                        "--num-servers)")
    return p


def _check_topology(plan: FaultPlan, num_servers: int,
                    disks_per_server: Optional[int]) -> None:
    """The injector's target bound checks, without a cluster."""
    for i, ev in enumerate(plan.events):
        if ev.server is not None and not 0 <= ev.server < num_servers:
            raise FaultError(
                f"event[{i}] {ev.kind.value} targets server {ev.server}; "
                f"cluster has {num_servers}")
        if (disks_per_server is not None
                and ev.kind in (FaultKind.DEVICE_SLOW,
                                FaultKind.DEVICE_FAIL)
                and ev.device == "hdd" and ev.disk >= disks_per_server):
            raise FaultError(
                f"event[{i}] {ev.kind.value} targets disk {ev.disk}; "
                f"servers have {disks_per_server}")


def _validate(args) -> int:
    try:
        plan = FaultPlan.from_file(args.plan)
        if args.num_servers is not None:
            _check_topology(plan, args.num_servers, args.disks_per_server)
        elif args.disks_per_server is not None:
            raise FaultError("--disks-per-server needs --num-servers")
    except OSError as exc:
        print(f"error: cannot read {args.plan}: {exc}", file=sys.stderr)
        return 1
    except FaultError as exc:
        print(f"invalid: {exc}", file=sys.stderr)
        return 1
    finite = sum(1 for e in plan.events if e.duration is not None)
    kinds = sorted({e.kind.value for e in plan.events})
    print(f"ok: plan {plan.name!r}: {len(plan)} event(s) "
          f"({finite} finite), horizon {plan.horizon():g}s"
          + (f", kinds: {', '.join(kinds)}" if kinds else ""))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if args.command == "validate":
        return _validate(args)
    raise AssertionError(args.command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
