"""Transparent fault wrapper around a :class:`repro.devices.Device`.

The wrapper interposes on the timing interface only: positioning time is
scaled by ``latency_mult`` (an aging spindle's seeks/settles) and
transfer time by ``bw_mult`` (a throttled or degraded medium), while all
state — head position, stats, config — lives in (and is forwarded to)
the wrapped device.  Swapping a wrapper in for the original device is
therefore invisible to the block layer, the local store, and the
experiment stats readers; only service times change.

Fail-stop is modelled at the *queue* level (a failed device's
:class:`~repro.block.queue.BlockQueue` is paused so pending requests
wait for recovery); the wrapper's ``failed`` flag exists as a hard
backstop — serving a request on a failed device is a simulation bug and
raises :class:`repro.errors.DeviceFailedError`.
"""

from __future__ import annotations

from ..devices.base import Device, Op
from ..errors import DeviceFailedError


class FaultableDevice:
    """Delegating proxy over a device with fail-slow/fail-stop state."""

    #: Attributes owned by the wrapper itself; everything else is
    #: forwarded to the wrapped device (reads *and* writes, so existing
    #: code that pokes ``device._head`` etc. keeps working).
    _OWN = frozenset({"_inner", "latency_mult", "bw_mult", "failed"})

    def __init__(self, inner: Device) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "latency_mult", 1.0)
        object.__setattr__(self, "bw_mult", 1.0)
        object.__setattr__(self, "failed", False)

    # ----------------------------------------------------------- delegation
    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __setattr__(self, name, value):
        if name in type(self)._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    @property
    def inner(self) -> Device:
        """The wrapped device."""
        return self._inner

    @property
    def degraded(self) -> bool:
        return self.latency_mult != 1.0 or self.bw_mult != 1.0

    # ------------------------------------------------------------- faults
    def set_slowdown(self, latency_mult: float = 1.0,
                     bw_mult: float = 1.0) -> None:
        """Enter (or, with 1.0/1.0, leave) a fail-slow window."""
        self.latency_mult = float(latency_mult)
        self.bw_mult = float(bw_mult)

    def clear_slowdown(self) -> None:
        self.set_slowdown(1.0, 1.0)

    def fail_stop(self) -> None:
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    # -------------------------------------------------------- timing model
    def positioning_time(self, op: Op, lbn: int, nbytes: int) -> float:
        return self._inner.positioning_time(op, lbn, nbytes) * self.latency_mult

    def transfer_time(self, op: Op, nbytes: int) -> float:
        return self._inner.transfer_time(op, nbytes) * self.bw_mult

    def estimate_service_time(self, op: Op, lbn: int, nbytes: int) -> float:
        self._inner.check_range(lbn, nbytes)
        return (self.positioning_time(op, lbn, nbytes)
                + self.transfer_time(op, nbytes))

    def serve(self, op: Op, lbn: int, nbytes: int,
              idle_gap: float = 0.0) -> float:
        # Mirrors Device.serve with the scaled timing components, so the
        # wrapped device's stats record the times actually charged.
        if self.failed:
            raise DeviceFailedError(
                f"{self._inner.name}: I/O at lbn={lbn} on a failed device "
                f"(fail-stop windows must pause the block queue)")
        inner = self._inner
        inner.check_range(lbn, nbytes)
        if idle_gap > 0.0:
            inner.notice_idle(idle_gap)
        pos = self.positioning_time(op, lbn, nbytes)
        xfer = self.transfer_time(op, nbytes)
        # Internal machinery (FTL programming, GC stalls) is charged
        # unscaled: latency/bandwidth faults degrade the *interface*,
        # not the drive's own background work.
        extra = inner.service_extra(op, lbn, nbytes)
        inner._head = lbn + nbytes
        inner._after_serve()
        inner.stats.positioning_time += pos
        inner.stats.busy_time += pos + xfer + extra
        if op.is_write:
            inner.stats.writes += 1
            inner.stats.bytes_written += nbytes
        else:
            inner.stats.reads += 1
            inner.stats.bytes_read += nbytes
        return pos + xfer + extra


def faultable(device: Device) -> FaultableDevice:
    """Wrap ``device`` (idempotent: wrappers are returned unchanged)."""
    if isinstance(device, FaultableDevice):
        return device
    return FaultableDevice(device)
