"""Calibration of device models against the paper's Table II.

Two pieces:

* :func:`derive_ssd_setup` — closed-form derivation of SSD per-command
  setup costs from the four corner bandwidths at a reference request
  size (4 KB in Table II).
* :func:`microbenchmark` — the Table II experiment: run 4 KB
  sequential and uniformly-random read/write streams against a device
  model and report the achieved MB/s for each corner.

The SSD corners reproduce Table II essentially exactly.  The HDD
*sequential* corners reproduce exactly; the HDD *random* corners are
documented deviations: the paper's 15 MB/s random-read figure for a
7200-RPM disk is a deep-queue/spec-sheet number no single-spindle
latency model can reproduce, while our model's random corners reflect
per-request positioning — which is what actually drives every other
experiment in the paper (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import SSDConfig
from ..units import KiB, MiB
from .base import Device, Op


def derive_ssd_setup(seq_bw: float, rand_bw: float,
                     ref_size: int = 4 * KiB) -> float:
    """Per-command setup cost making ``ref_size`` random ops hit ``rand_bw``.

    A random op takes ``setup + ref_size/seq_bw``; solving
    ``ref_size / (setup + ref_size/seq_bw) == rand_bw`` for setup gives
    ``ref_size * (1/rand_bw - 1/seq_bw)``.
    """
    if rand_bw > seq_bw:
        raise ValueError("random bandwidth cannot exceed sequential bandwidth")
    return ref_size * (1.0 / rand_bw - 1.0 / seq_bw)


def calibrated_ssd_config(base: SSDConfig | None = None) -> SSDConfig:
    """An :class:`SSDConfig` whose setups are derived from its corners."""
    cfg = base or SSDConfig()
    return SSDConfig(
        capacity=cfg.capacity,
        seq_read_bw=cfg.seq_read_bw,
        seq_write_bw=cfg.seq_write_bw,
        read_setup=derive_ssd_setup(cfg.seq_read_bw, 60 * MiB),
        write_setup=derive_ssd_setup(cfg.seq_write_bw, 30 * MiB),
    )


@dataclass(frozen=True)
class CornerResult:
    """Measured throughput for one Table II corner."""

    pattern: str       # "sequential" or "random"
    op: Op
    request_size: int
    requests: int
    seconds: float

    @property
    def mib_per_s(self) -> float:
        return (self.requests * self.request_size) / MiB / self.seconds


def microbenchmark(device: Device, op: Op, pattern: str,
                   request_size: int = 4 * KiB, requests: int = 2000,
                   span: int | None = None, seed: int = 7) -> CornerResult:
    """Measure one corner: stream or uniform-random 4 KB ops.

    ``span`` bounds the random placement region (defaults to the whole
    device, matching how corner benchmarks are usually run).
    """
    span = span or device.capacity
    span = min(span, device.capacity)
    rng = np.random.default_rng(seed)
    total = 0.0
    if pattern == "sequential":
        # Untimed warmup positions the head at the stream start, so the
        # measurement reflects steady-state streaming (corner benchmarks
        # never charge the initial seek).
        device.serve(op, 0, request_size)
        lbn = request_size
        for _ in range(requests):
            if lbn + request_size > span:
                lbn = 0
            total += device.serve(op, lbn, request_size)
            lbn += request_size
    elif pattern == "random":
        slots = max(1, (span - request_size) // request_size)
        picks = rng.integers(0, slots, size=requests)
        for p in picks:
            total += device.serve(op, int(p) * request_size, request_size)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    return CornerResult(pattern=pattern, op=op, request_size=request_size,
                        requests=requests, seconds=total)


def table2_corners(device: Device, request_size: int = 4 * KiB,
                   requests: int = 2000) -> Dict[str, float]:
    """All four Table II corners for ``device``, as {corner: MiB/s}."""
    out: Dict[str, float] = {}
    for pattern in ("sequential", "random"):
        for op in (Op.READ, Op.WRITE):
            res = microbenchmark(device, op, pattern,
                                 request_size=request_size, requests=requests)
            out[f"{pattern}_{op.value}"] = res.mib_per_s
    return out
