"""Abstract storage device model.

A device is a *timing* model: given an operation, a starting LBN (byte
address on the device) and a size, it returns how long the device needs
to serve it, updating its internal head/activity state.  The block
layer (``repro.block``) owns queueing and dispatch order; devices serve
exactly one request at a time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum

from ..errors import StorageError


class Op(str, Enum):
    """I/O operation direction."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is Op.WRITE


@dataclass
class DeviceStats:
    """Aggregate counters a device keeps while serving requests."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    positioning_time: float = 0.0

    @property
    def total_requests(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class Device(abc.ABC):
    """Base class for storage device timing models."""

    name: str = "device"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError(f"device capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.stats = DeviceStats()
        self._head = 0  # byte address just past the last served request

    @property
    def head(self) -> int:
        """Current head position (byte address after the last request)."""
        return self._head

    def check_range(self, lbn: int, nbytes: int) -> None:
        """Validate that ``[lbn, lbn+nbytes)`` lies on the device."""
        if nbytes <= 0:
            raise StorageError(f"request size must be positive, got {nbytes}")
        if lbn < 0 or lbn + nbytes > self.capacity:
            raise StorageError(
                f"request [{lbn}, {lbn + nbytes}) outside device of "
                f"capacity {self.capacity}")

    @abc.abstractmethod
    def positioning_time(self, op: Op, lbn: int, nbytes: int) -> float:
        """Time to position for a request at ``lbn`` from the current head.

        ``nbytes`` participates because small non-contiguous writes pay
        a read-modify-write penalty on the disk model.
        """

    @abc.abstractmethod
    def transfer_time(self, op: Op, nbytes: int) -> float:
        """Media transfer time for ``nbytes``."""

    def estimate_service_time(self, op: Op, lbn: int, nbytes: int) -> float:
        """Service-time estimate *without* mutating device state.

        This is what iBridge's Eq. 1 evaluates when deciding whether to
        redirect a request: ``D_to_T(seek) + R + Size/B`` from the
        current head position.
        """
        self.check_range(lbn, nbytes)
        return self.positioning_time(op, lbn, nbytes) + self.transfer_time(op, nbytes)

    def notice_idle(self, idle_gap: float) -> None:
        """Tell the device it sat idle for ``idle_gap`` seconds before
        the request about to be served (rotational state decays)."""

    def service_extra(self, op: Op, lbn: int, nbytes: int) -> float:
        """Extra service time charged by device-internal machinery.

        Called exactly once per served request, after the positioning
        and transfer components are computed; unlike those it *may*
        mutate internal state (an FTL programs pages here, garbage
        collection stalls land here).  Deliberately excluded from
        :meth:`estimate_service_time`, which must stay side-effect-free
        and models only what the host can predict (Eq. 1).
        """
        return 0.0

    def _after_serve(self) -> None:
        """Hook run after each served request (clears transient state)."""

    def serve(self, op: Op, lbn: int, nbytes: int,
              idle_gap: float = 0.0) -> float:
        """Serve the request, update state, and return the service time."""
        self.check_range(lbn, nbytes)
        if idle_gap > 0.0:
            self.notice_idle(idle_gap)
        pos = self.positioning_time(op, lbn, nbytes)
        xfer = self.transfer_time(op, nbytes)
        extra = self.service_extra(op, lbn, nbytes)
        self._head = lbn + nbytes
        self._after_serve()
        self.stats.positioning_time += pos
        self.stats.busy_time += pos + xfer + extra
        if op.is_write:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        return pos + xfer + extra

    def reset_stats(self) -> None:
        """Zero the counters (head position is preserved)."""
        self.stats = DeviceStats()
