"""Solid-state drive timing model.

The SSD has no positional state to speak of: any non-contiguous command
pays a small, distance-independent setup cost (flash page lookup, FTL
indirection); contiguous commands stream at the sequential bandwidth.
The setup costs are derived in closed form from the paper's Table II so
that 4 KB random accesses reproduce the random corners exactly (see
``repro.devices.calibration.derive_ssd_setup``).

The large sequential/random *write* gap (140 vs 30 MB/s) is the reason
iBridge writes redirected data into a log-structured file on the SSD:
the log turns random application writes into contiguous device writes.

Contiguity is tracked **per operation class** (one read head, one write
head): the drive interleaves host streams across independent channels,
so the fill daemon's sequential log appends stay contiguous even while
partition reads land between them.  A single shared head would charge
``write_setup`` on every log append and erase exactly the sequential
advantage the log exists to exploit.

With ``SSDConfig.ftl_enabled`` the drive additionally runs the
page-mapped FTL/GC model from :mod:`repro.devices.ftl`: writes program
pages, garbage collection copies live pages and erases blocks, and the
time that work costs is charged to foreground commands through
:meth:`service_extra` — as one stop-and-collect stall (``gc_mode =
"pause"``) or spread in ``gc_slice`` instalments (``"throttle"``).
Reads served during a GC window pay a seeded uniform jitter term
(read/program/erase contention on the chip), the dominant tail
contributor in SSD read-variability studies.  ``last_gc_stall`` exposes
the GC share of the most recent command so the block layer can emit GC
pause spans for ``critical_path`` attribution.
"""

from __future__ import annotations

from ..config import SSDConfig
from ..util.rng import rng_stream
from .base import Device, Op
from .ftl import FlashTranslationLayer


class SolidStateDrive(Device):
    """SSD model calibrated to Table II."""

    name = "ssd"

    def __init__(self, config: SSDConfig | None = None, *,
                 seed: int = 0, name: str | None = None) -> None:
        self.config = config or SSDConfig()
        self.config.validate()
        super().__init__(self.config.capacity)
        if name is not None:
            self.name = name
        self._heads = {Op.READ: 0, Op.WRITE: 0}
        self._rng = rng_stream(seed, f"ssd-gc:{self.name}")
        self.ftl: FlashTranslationLayer | None = None
        if self.config.ftl_enabled:
            self.ftl = FlashTranslationLayer(
                self.config.capacity, self.config.ftl_page_size,
                self.config.ftl_pages_per_block,
                self.config.ftl_over_provision)
        self._collecting = False
        self._gc_debt = 0.0
        self._gc_coordinator = None
        self._storm_depth = 0
        #: GC/storm share of the most recently served command's time;
        #: the block layer reads this to emit ``ssd.gc`` spans.
        self.last_gc_stall = 0.0
        #: Cumulative foreground time lost to GC stalls and storms.
        self.gc_stall_time = 0.0
        #: Optional observability hook (``callable(name)``): the obs
        #: timeline wires this to record GC-storm begin/end marks.
        #: ``None`` on unobserved runs — one attribute test per edge.
        self.obs_mark = None

    # ----------------------------------------------------------- streams
    def is_contiguous(self, lbn: int, op: Op = Op.READ) -> bool:
        """True when a request at ``lbn`` continues ``op``'s stream."""
        return lbn == self._heads[op]

    def reset_streams(self) -> None:
        """Forget stream state (measurement-window resets)."""
        self._head = 0
        self._heads = {Op.READ: 0, Op.WRITE: 0}

    def positioning_time(self, op: Op, lbn: int, nbytes: int) -> float:
        if self.is_contiguous(lbn, op):
            return 0.0
        return self.config.write_setup if op.is_write else self.config.read_setup

    def transfer_time(self, op: Op, nbytes: int) -> float:
        bw = self.config.seq_write_bw if op.is_write else self.config.seq_read_bw
        return nbytes / bw

    # ----------------------------------------------------------- FTL / GC
    @property
    def gc_active(self) -> bool:
        return (self._collecting or self._gc_debt > 0.0
                or self._storm_depth > 0)

    def set_gc_coordinator(self, coordinator) -> None:
        self._gc_coordinator = coordinator

    def gc_storm_begin(self) -> None:
        """Enter a GC-storm window (chaos fault): every command stalls
        one ``gc_slice`` and reads jitter, FTL or not."""
        self._storm_depth += 1
        if self.obs_mark is not None:
            self.obs_mark("gc_storm_begin")

    def gc_storm_end(self) -> None:
        if self._storm_depth > 0:
            self._storm_depth -= 1
            if self.obs_mark is not None:
                self.obs_mark("gc_storm_end")

    def trim(self, lbn: int, nbytes: int) -> None:
        """Host discard hint (the manager trims dropped log extents)."""
        if self.ftl is not None:
            self.ftl.trim(lbn, nbytes)

    def ftl_reset(self) -> None:
        """Factory-fresh internals (drive replacement after ssd_fail)."""
        if self.ftl is not None:
            self.ftl.reset()
        self._collecting = False
        self._gc_debt = 0.0
        self.last_gc_stall = 0.0
        self.reset_streams()

    def _gc_step_cost(self, copied_pages: int) -> float:
        """Time one collection burst step costs the drive: read + program
        the copied pages, then erase the reclaimed block."""
        nbytes = copied_pages * self.config.ftl_page_size
        return (nbytes / self.config.seq_read_bw
                + nbytes / self.config.seq_write_bw
                + self.config.gc_erase_time)

    def _gc_charge(self, min_free: int) -> float:
        """Run the collector as policy allows; return this command's
        foreground stall.  ``min_free`` is the free-block floor the
        upcoming command needs programmed headroom for — enforced even
        against a denying coordinator (emergency trickle: a policy may
        shape the tail but never wedge a drive)."""
        ftl, cfg = self.ftl, self.config
        if ftl.free_fraction() < cfg.gc_low_watermark:
            self._collecting = True
        allowed = self._collecting
        if self._gc_coordinator is not None:
            allowed = self._gc_coordinator.should_collect(
                self, pressured=self._collecting)
        if allowed:
            while ftl.free_fraction() < cfg.gc_high_watermark:
                copied = ftl.collect_one()
                if copied is None:
                    break
                self._gc_debt += self._gc_step_cost(copied)
            if ftl.free_fraction() >= cfg.gc_high_watermark:
                self._collecting = False
        while ftl.free_blocks < min_free:
            copied = ftl.collect_one()
            if copied is None:
                break
            self._gc_debt += self._gc_step_cost(copied)
        if self._gc_debt <= 0.0:
            return 0.0
        if cfg.gc_mode == "pause":
            charge = self._gc_debt
        else:
            charge = min(self._gc_debt, cfg.gc_slice)
        self._gc_debt -= charge
        return charge

    def notice_idle(self, idle_gap: float) -> None:
        """Idle time is when real drives collect for free: retire GC
        debt, then run background collection within the gap.  A burst
        that overruns the gap spills back into ``_gc_debt`` — GC that
        *starts* in an idle window but finishes under the next command
        stalls that command, which is exactly how saturated drives leak
        background work into the foreground."""
        budget = idle_gap
        paid = min(self._gc_debt, budget)
        self._gc_debt -= paid
        budget -= paid
        ftl, cfg = self.ftl, self.config
        if ftl is None:
            return
        # Idle collection answers to the same fleet policy as foreground
        # bursts.  An uncoordinated drive only collects under watermark
        # pressure (reactive); a coordinated drive collects proactively
        # whenever its window is open, which is the point of scheduling:
        # the window tells it *now* is a good time to work ahead.
        if ftl.free_fraction() < cfg.gc_low_watermark:
            self._collecting = True
        allowed = self._collecting
        if self._gc_coordinator is not None:
            allowed = self._gc_coordinator.should_collect(
                self, pressured=self._collecting)
        if not allowed:
            return
        while budget > 0.0 and ftl.free_fraction() < cfg.gc_high_watermark:
            copied = ftl.collect_one()
            if copied is None:
                break
            budget -= self._gc_step_cost(copied)
        if budget < 0.0:
            self._gc_debt += -budget
        if ftl.free_fraction() >= cfg.gc_high_watermark:
            self._collecting = False

    def service_extra(self, op: Op, lbn: int, nbytes: int) -> float:
        stall = 0.0
        if self.ftl is not None:
            # GC before programming: the command's pages must have
            # erased blocks to land in.
            min_free = 2
            if op.is_write:
                block_bytes = (self.config.ftl_page_size
                               * self.config.ftl_pages_per_block)
                min_free = 2 + -(-nbytes // block_bytes)
            stall += self._gc_charge(min_free)
            if op.is_write:
                self.ftl.host_write(lbn, nbytes)
        if self._storm_depth > 0:
            stall += self.config.gc_slice
        if (not op.is_write and self.config.gc_read_jitter > 0
                and (stall > 0.0 or self.gc_active)):
            stall += float(self._rng.random()) * self.config.gc_read_jitter
        self._heads[op] = lbn + nbytes
        self.last_gc_stall = stall
        self.gc_stall_time += stall
        return stall
