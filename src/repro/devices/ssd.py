"""Solid-state drive timing model.

The SSD has no positional state to speak of: any non-contiguous command
pays a small, distance-independent setup cost (flash page lookup, FTL
indirection); contiguous commands stream at the sequential bandwidth.
The setup costs are derived in closed form from the paper's Table II so
that 4 KB random accesses reproduce the random corners exactly (see
``repro.devices.calibration.derive_ssd_setup``).

The large sequential/random *write* gap (140 vs 30 MB/s) is the reason
iBridge writes redirected data into a log-structured file on the SSD:
the log turns random application writes into contiguous device writes.
"""

from __future__ import annotations

from ..config import SSDConfig
from .base import Device, Op


class SolidStateDrive(Device):
    """SSD model calibrated to Table II."""

    name = "ssd"

    def __init__(self, config: SSDConfig | None = None) -> None:
        self.config = config or SSDConfig()
        self.config.validate()
        super().__init__(self.config.capacity)

    def is_contiguous(self, lbn: int) -> bool:
        """True when a request at ``lbn`` continues the current stream."""
        return lbn == self._head

    def positioning_time(self, op: Op, lbn: int, nbytes: int) -> float:
        if self.is_contiguous(lbn):
            return 0.0
        return self.config.write_setup if op.is_write else self.config.read_setup

    def transfer_time(self, op: Op, nbytes: int) -> float:
        bw = self.config.seq_write_bw if op.is_write else self.config.seq_read_bw
        return nbytes / bw
