"""Page-mapped flash translation layer and fleet GC coordination.

The plain :class:`~repro.devices.ssd.SolidStateDrive` is a bandwidth
table; this module models what happens *inside* the drive when the
host sustains writes: a page-mapped FTL with over-provisioning, erase
blocks, and a garbage collector that must copy live pages before it
can erase — the mechanism behind write amplification and GC stalls.

The FTL is a pure state machine (no timing, no randomness): the SSD
charges time for the work it reports, and the audit layer calls
:meth:`FlashTranslationLayer.verify` to check its ledgers.  The ledger
identity the auditor relies on::

    device_pages_written == host_pages_written + gc_pages_copied

i.e. every physical page program is either a host write or a GC copy,
so write amplification = device / host ≥ 1 balances by construction
and any drift is a model bug.

:class:`GCCoordinator` implements the fleet-level scheduling policies
from the "Optimize Unsynchronized GC in an SSD Array" line of work:
unsynchronized per-drive GC magnifies stripe stragglers because a
stripe is as slow as its slowest member and *some* member is almost
always collecting; synchronizing (stop-the-fleet) or staggering
(round-robin slots) the collection windows trades a little average
latency for a much shorter tail.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..errors import StorageError


class _Block:
    """One erase block: programmed slots hold logical page numbers
    (``None`` once invalidated)."""

    __slots__ = ("index", "pages")

    def __init__(self, index: int) -> None:
        self.index = index
        self.pages: List[Optional[int]] = []

    @property
    def filled(self) -> int:
        return len(self.pages)

    @property
    def valid(self) -> int:
        return sum(1 for p in self.pages if p is not None)


class FlashTranslationLayer:
    """Page-mapped FTL over ``logical_capacity`` bytes of host space."""

    def __init__(self, logical_capacity: int, page_size: int,
                 pages_per_block: int, over_provision: float) -> None:
        if logical_capacity <= 0 or page_size <= 0 or pages_per_block < 2:
            raise StorageError("invalid FTL geometry")
        if over_provision <= 0:
            raise StorageError("FTL needs over-provisioned spare blocks")
        self._logical_capacity = logical_capacity
        self._over_provision = over_provision
        self.page_size = page_size
        self.pages_per_block = pages_per_block
        self.logical_pages = -(-logical_capacity // page_size)
        phys_pages = int(self.logical_pages * (1.0 + over_provision))
        self.total_blocks = -(-phys_pages // pages_per_block)
        if self.total_blocks < self.logical_pages / pages_per_block + 2:
            raise StorageError(
                "FTL over-provisioning too small to leave spare blocks")
        #: logical page -> (erase block, slot index)
        self.page_map: Dict[int, tuple] = {}
        self._free_ids = deque(range(self.total_blocks))
        self._sealed: Dict[int, _Block] = {}
        self._active = _Block(self._free_ids.popleft())
        # ---- write-amplification ledger -----------------------------
        self.host_pages_written = 0
        self.gc_pages_copied = 0
        self.device_pages_written = 0
        self.pages_trimmed = 0
        self.erases = 0
        self.gc_runs = 0

    # --------------------------------------------------------------- state
    @property
    def free_blocks(self) -> int:
        return len(self._free_ids)

    def free_fraction(self) -> float:
        return len(self._free_ids) / self.total_blocks

    @property
    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 1.0
        return self.device_pages_written / self.host_pages_written

    # --------------------------------------------------------------- I/O
    def _invalidate_page(self, lpn: int) -> None:
        loc = self.page_map.pop(lpn, None)
        if loc is None:
            return
        block, slot = loc
        block.pages[slot] = None

    def _program(self, lpn: int) -> None:
        if self._active.filled >= self.pages_per_block:
            self._sealed[self._active.index] = self._active
            if not self._free_ids:
                raise StorageError(
                    "FTL out of free blocks (GC must run before writes)")
            self._active = _Block(self._free_ids.popleft())
        self._active.pages.append(lpn)
        self.page_map[lpn] = (self._active, self._active.filled - 1)
        self.device_pages_written += 1

    def host_write(self, lbn: int, nbytes: int) -> int:
        """Program the pages covering ``[lbn, lbn+nbytes)``; returns the
        page count (sub-page writes still program a whole page)."""
        if nbytes <= 0:
            raise StorageError("FTL write size must be positive")
        first = lbn // self.page_size
        last = (lbn + nbytes - 1) // self.page_size
        for lpn in range(first, last + 1):
            self._invalidate_page(lpn)
            self._program(lpn)
        pages = last - first + 1
        self.host_pages_written += pages
        return pages

    def trim(self, lbn: int, nbytes: int) -> int:
        """Invalidate pages *fully* covered by ``[lbn, lbn+nbytes)``.

        Boundary pages shared with a neighbouring live extent stay
        mapped until overwritten, exactly like a real discard.
        """
        if nbytes <= 0:
            return 0
        first = -(-lbn // self.page_size)              # round up
        last = (lbn + nbytes) // self.page_size        # exclusive
        trimmed = 0
        for lpn in range(first, last):
            if lpn in self.page_map:
                self._invalidate_page(lpn)
                trimmed += 1
        self.pages_trimmed += trimmed
        return trimmed

    # --------------------------------------------------------------- GC
    def collect_one(self) -> Optional[int]:
        """Collect the sealed block with the fewest valid pages.

        Copies its live pages forward, erases it, and returns the number
        of pages copied; ``None`` when there is nothing to collect.
        """
        if not self._sealed:
            return None
        victim = min(self._sealed.values(),
                     key=lambda b: (b.valid, b.index))
        if victim.valid >= self.pages_per_block:
            return None  # fully-live fleet: collecting reclaims nothing
        del self._sealed[victim.index]
        copied = 0
        for lpn in victim.pages:
            if lpn is not None:
                # _program sees the stale mapping removed first so the
                # copy is the single live location.
                del self.page_map[lpn]
                self._program(lpn)
                copied += 1
        victim.pages = []
        self._free_ids.append(victim.index)
        self.gc_pages_copied += copied
        self.erases += 1
        self.gc_runs += 1
        return copied

    def reset(self) -> None:
        """Factory-fresh state (drive replacement); ledgers restart."""
        self.__init__(self._logical_capacity, self.page_size,
                      self.pages_per_block, self._over_provision)

    # --------------------------------------------------------------- audit
    def verify(self) -> None:
        """Raise :class:`StorageError` on any ledger/mapping drift."""
        if self.device_pages_written != (self.host_pages_written
                                         + self.gc_pages_copied):
            raise StorageError(
                f"FTL WA ledger drift: device={self.device_pages_written} "
                f"!= host={self.host_pages_written} "
                f"+ gc={self.gc_pages_copied}")
        blocks = list(self._sealed.values()) + [self._active]
        valid_total = 0
        for b in blocks:
            if not 0 <= b.valid <= b.filled <= self.pages_per_block:
                raise StorageError(f"FTL block {b.index} slot drift")
            valid_total += b.valid
        if valid_total != len(self.page_map):
            raise StorageError(
                f"FTL mapping drift: {valid_total} valid slots vs "
                f"{len(self.page_map)} mapped pages")
        for lpn, (block, slot) in self.page_map.items():
            if block.pages[slot] != lpn:
                raise StorageError(f"FTL map entry for page {lpn} is stale")
        if len(self._free_ids) + len(blocks) != self.total_blocks:
            raise StorageError("FTL block census drift")


class GCCoordinator:
    """Fleet-level GC scheduling across the per-server SSD array.

    Policies:

    - ``"sync"`` — stop-the-fleet: the moment any registered drive is
      under GC pressure, *every* drive is cleared to collect, so the
      collection windows align in time and a stripe pays one shared
      stall instead of eight scattered ones.
    - ``"stagger"`` — round-robin time slots of ``slot`` seconds; a
      drive collects (proactively) only during its own slot, so at most
      one drive per stripe is collecting at any instant and the rest of
      the array serves at full speed.

    Drives still hold an emergency trickle path (collect one block when
    nearly out of space) that bypasses the coordinator — a policy may
    shape the tail, never wedge a drive.
    """

    def __init__(self, env, policy: str, slot: float) -> None:
        if policy not in ("sync", "stagger"):
            raise StorageError(f"unknown GC coordination policy {policy!r}")
        self.env = env
        self.policy = policy
        self.slot = slot
        self._drives: List[object] = []
        self._index: Dict[int, int] = {}
        self._pressured: set = set()

    def register(self, ssd) -> None:
        self._index[id(ssd)] = len(self._drives)
        self._drives.append(ssd)
        ssd.set_gc_coordinator(self)

    def should_collect(self, ssd, pressured: bool) -> bool:
        """Is ``ssd`` cleared to run a collection burst right now?"""
        key = id(ssd)
        if pressured:
            self._pressured.add(key)
        else:
            self._pressured.discard(key)
        if self.policy == "sync":
            return bool(self._pressured)
        # Stagger: the in-slot drive collects whether pressured or not
        # (working ahead inside its window is the point); everyone else
        # waits for their turn.
        n = len(self._drives) or 1
        turn = int(self.env.now / self.slot) % n
        return turn == self._index.get(key, -1)
