"""Storage device timing models (HDD and SSD) plus calibration tools."""

from .base import Device, DeviceStats, Op
from .calibration import (CornerResult, calibrated_ssd_config, derive_ssd_setup,
                          microbenchmark, table2_corners)
from .hdd import HardDisk, SeekCurve
from .profiling import SeekProfile, profile_device
from .ssd import SolidStateDrive

__all__ = [
    "Device",
    "DeviceStats",
    "Op",
    "HardDisk",
    "SeekCurve",
    "SolidStateDrive",
    "SeekProfile",
    "profile_device",
    "derive_ssd_setup",
    "calibrated_ssd_config",
    "microbenchmark",
    "table2_corners",
    "CornerResult",
]
