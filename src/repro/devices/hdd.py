"""Hard disk timing model.

Positioning for a non-contiguous request costs ``D_to_T(distance) +
rotational_miss`` where ``D_to_T`` is a concave (square-root) seek
curve, as in the offline-profiling approach of Huang et al. (FS2, SOSP
2005) that the paper adopts for its service-time estimator.  Random
writes pay an additional settle penalty, which reproduces the paper's
observation (Table II, Fig. 4) that unaligned *writes* suffer roughly
three times more than unaligned reads on the stock system.

Contiguous requests (starting exactly at the head position, within the
configured slack) stream at the sequential bandwidth with no
positioning cost — this is what makes large merged dispatches efficient
and small interleaved fragments expensive, the paper's core physics.
"""

from __future__ import annotations

import math

from ..config import HDDConfig
from .base import Device, Op


class SeekCurve:
    """The ``D_to_T`` seek-distance → seek-time function.

    ``time(d) = base + (full - base) * sqrt(d / capacity)`` for d > 0.
    The square-root form matches empirical disk seek profiles: short
    seeks are dominated by head settle, long seeks by the accelerate/
    coast/decelerate phases.
    """

    def __init__(self, base: float, full: float, capacity: int) -> None:
        self.base = float(base)
        self.full = float(full)
        self.capacity = int(capacity)
        self._span = self.full - self.base

    def __call__(self, distance: int) -> float:
        if distance <= 0:
            return 0.0
        frac = min(1.0, distance / self.capacity)
        return self.base + self._span * math.sqrt(frac)

    def mean_random(self) -> float:
        """Expected seek time between two uniformly random positions.

        ``E[sqrt(|U - V|)] = 8/15`` for independent U, V ~ Uniform(0,1).
        """
        return self.base + self._span * (8.0 / 15.0)


class HardDisk(Device):
    """7200-RPM disk model calibrated per DESIGN.md §6."""

    name = "hdd"

    def __init__(self, config: HDDConfig | None = None) -> None:
        self.config = config or HDDConfig()
        self.config.validate()
        super().__init__(self.config.capacity)
        self.seek_curve = SeekCurve(
            self.config.seek_base, self.config.seek_full, self.config.capacity)
        self._rotated_away = False

    def notice_idle(self, idle_gap: float) -> None:
        if idle_gap > self.config.sweep_idle_reset:
            self._rotated_away = True

    def _after_serve(self) -> None:
        self._rotated_away = False

    def is_contiguous(self, lbn: int) -> bool:
        """True when a request at ``lbn`` continues the current stream."""
        return abs(lbn - self._head) <= self.config.contiguity_slack

    def positioning_time(self, op: Op, lbn: int, nbytes: int) -> float:
        if self.is_contiguous(lbn):
            if op.is_write and self._rotated_away:
                # Synchronous sequential writes: after an idle gap the
                # target sector has rotated past, costing a revolution
                # even with no seek.
                return self.config.rotational_miss
            return 0.0
        delta = lbn - self._head
        reposition = self.seek_curve(abs(delta)) + self.config.rotational_miss
        if not op.is_write:
            if 0 < delta <= self.config.skip_window:
                # Short forward skip: the head can stay on track and let
                # the unwanted media pass underneath.  (Backward skips
                # always need a full rotation.)
                reposition = min(reposition, delta / self.config.seq_read_bw)
            return reposition
        # Writes: a dense forward continuation behaves like part of one
        # sequential sweep (batched read-modify-write, minor penalty); a
        # genuine reposition pays the full settle for small writes.  A
        # sweep is only available while the device stayed busy — once it
        # idled, the platter rotated away (see sweep_idle_reset).
        jump = reposition + self._write_penalty(nbytes)
        if 0 < delta <= self.config.write_sweep_window and not self._rotated_away:
            sweep = (delta / self.config.seq_read_bw
                     + self.config.write_large_penalty)
            return min(sweep, jump)
        return jump

    def _write_penalty(self, nbytes: int) -> float:
        """Extra cost of a repositioned (non-sweep) write (see HDDConfig)."""
        if nbytes < self.config.write_settle_threshold:
            return self.config.write_settle
        return self.config.write_large_penalty

    def transfer_time(self, op: Op, nbytes: int) -> float:
        bw = self.config.seq_write_bw if op.is_write else self.config.seq_read_bw
        return nbytes / bw
