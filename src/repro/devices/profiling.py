"""Offline disk profiling: recover the ``D_to_T`` seek curve empirically.

The paper obtains its seek-distance → seek-time function "from an
offline profiling of the disk" (Huang et al., FS2).  We do the same
against the device *model*: issue probe pairs at controlled distances,
measure positioning time, and fit the concave curve

    t(d) = a + b * sqrt(d / capacity)

by least squares on the sqrt-transformed distances.  iBridge's
service-time estimator then uses the *fitted* curve rather than reading
the model's private parameters, so the estimator honestly reflects what
a deployment could measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import StorageError
from .base import Device, Op
from .hdd import SeekCurve


@dataclass(frozen=True)
class SeekProfile:
    """A fitted seek curve plus the constant (rotation) residual.

    ``positioning(d) = seek(d) + rotation`` for non-contiguous reads.
    ``write_penalty`` is the extra positioning observed for writes.
    """

    seek: SeekCurve
    rotation: float
    write_penalty: float
    samples: int

    def positioning(self, distance: int, is_write: bool = False) -> float:
        """Estimated positioning time for a ``distance``-byte seek."""
        if distance <= 0:
            return 0.0
        t = self.seek(distance) + self.rotation
        if is_write:
            t += self.write_penalty
        return t


def _probe(device: Device, op: Op, distances: Sequence[int],
           probe_size: int) -> List[Tuple[int, float]]:
    samples: List[Tuple[int, float]] = []
    lbn = 0
    for dist in distances:
        # Position the head deterministically, then measure a request at
        # the target distance.  The positioning component is the total
        # service time minus the (known-rate) transfer time.
        device.serve(op, lbn, probe_size)
        target = lbn + probe_size + dist
        if target + probe_size > device.capacity:
            target = max(0, lbn + probe_size - dist - probe_size)
        total = device.serve(op, target, probe_size)
        pos = total - device.transfer_time(op, probe_size)
        samples.append((dist, pos))
        lbn = (target + probe_size) % max(1, device.capacity - 4 * probe_size)
    return samples


def profile_device(device: Device, points: int = 24,
                   probe_size: int = 4096) -> SeekProfile:
    """Fit a :class:`SeekProfile` by probing ``device`` offline.

    Probes ``points`` distances spaced geometrically from 64 KB to half
    the device capacity for reads, plus a write pass to estimate the
    write settle penalty.
    """
    if points < 3:
        raise StorageError("need at least 3 profiling points")
    cap = device.capacity
    # Start probing beyond any forward-skip window so the fit captures
    # the true seek curve (short forward skips are a dispatch-order
    # artefact, not part of D_to_T).
    floor = getattr(getattr(device, "config", None), "skip_window", 0) * 2
    floor = max(floor, 64 * 1024)
    distances = np.unique(np.geomspace(floor, cap // 2, points).astype(np.int64))
    read_samples = _probe(device, Op.READ, distances.tolist(), probe_size)

    d = np.array([s[0] for s in read_samples], dtype=np.float64)
    t = np.array([s[1] for s in read_samples], dtype=np.float64)
    x = np.sqrt(d / cap)
    # Least squares for t = intercept + slope * sqrt(d/cap).
    design = np.column_stack([np.ones_like(x), x])
    (intercept, slope), *_ = np.linalg.lstsq(design, t, rcond=None)
    slope = max(0.0, float(slope))
    intercept = max(0.0, float(intercept))

    # Split the intercept into a seek base and rotational residual by
    # extrapolating to a short (one-stripe) seek: the short-seek excess
    # over the curve trend is attributed to rotation.  For the model
    # family we fit (same functional form) the decomposition is exact up
    # to numerical noise, and iBridge only ever uses their sum.
    rotation = intercept / 2.0
    seek_base = intercept - rotation
    seek = SeekCurve(seek_base, seek_base + slope, cap)

    write_samples = _probe(device, Op.WRITE, distances[: max(3, points // 3)].tolist(),
                           probe_size)
    w = np.array([s[1] for s in write_samples], dtype=np.float64)
    predicted = np.array([seek(int(dd)) + rotation for dd, _ in write_samples])
    write_penalty = max(0.0, float(np.mean(w - predicted)))

    return SeekProfile(seek=seek, rotation=rotation,
                       write_penalty=write_penalty,
                       samples=len(read_samples) + len(write_samples))
