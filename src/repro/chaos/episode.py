"""Run one sampled chaos episode and judge it with the oracles.

An **episode** = build a fresh cluster from the spec, run the sampled
workload under the sampled fault plan, settle past the fault horizon so
every window has reverted, drain, and then read the oracles:

* the audit :meth:`~repro.audit.runtime.AuditRuntime.verdict`
  (conservation/coherence ledgers + livelock watchdog) collected
  non-strictly, so one episode reports every violation;
* **restoration** checks — after the last window reverts and the system
  settles, no server may still be crashed, no block queue paused, no
  iBridge manager in SSD-bypass mode, and every finite fault window
  must have logged its ``end`` transition;
* **recovery telemetry** — retry exhaustion means the client gave up on
  a sub-request even though the generator sized the retry budget to
  outlast every window: a recovery bug by construction.

A budget guard process bounds the episode in simulated seconds and
engine events (both deterministic) plus real seconds (backstop), so a
livelocked sample surfaces as a ``budget-exceeded`` verdict instead of
hanging the harness.

Everything an episode returns is a plain picklable dict, and
:func:`episode_signature` hashes the deterministic subset — the replay
contract ``same spec ⇒ same signature`` is what the CLI's determinism
check and the corpus replay assert.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..config import (AuditConfig, ClusterConfig, ObsConfig, RetryConfig,
                      ServerConfig)
from ..devices.base import Op
from ..errors import (AuditError, ChaosError, EpisodeBudgetError,
                      ReproError, RequestTimeoutError)
from ..experiments.runner import stable_hash
from ..faults.health import restoration_failures
from ..faults.plan import FaultPlan
from ..pfs.cluster import Cluster
from ..workloads import IorMpiIo, MpiIoTest, recovery_snapshot, run_workload

#: Type alias for readability; an episode result is a plain dict.
EpisodeResult = Dict

#: Simulated seconds run past the fault horizon before the restoration
#: oracles are read — covers the injector's cleanup transitions and the
#: first post-recovery writeback pass.
SETTLE_SLACK = 0.05

#: Sim-time gap between budget-guard checks.  The guard is a sim
#: process (it consumes event-heap sequence numbers), but its schedule
#: is a pure function of the spec, so determinism is preserved.
_GUARD_PERIOD = 0.05


# ---------------------------------------------------------------- build
def build_config(spec: Dict) -> ClusterConfig:
    """The cluster config an episode runs under (audited, non-strict)."""
    c = spec["cluster"]
    config = ClusterConfig(
        num_servers=c["num_servers"],
        server=ServerConfig(disks_per_server=c["disks_per_server"]),
        audit=AuditConfig(enabled=True, strict=False),
        retry=RetryConfig(enabled=True, **spec["retry"]),
        obs=ObsConfig(enabled=False),
        seed=spec["seed"],
    )
    if c["ibridge"]:
        config = config.with_ibridge(ssd_partition=c["ssd_partition"])
    if c.get("ftl"):
        # Shrink the drive so the few-MiB chaos workloads actually put
        # the FTL under page pressure (a 120 GiB drive would never GC).
        from ..units import MiB
        config = config.with_ftl(
            capacity=max(8 * c["ssd_partition"], 64 * MiB))
    if int(c.get("shards", 1) or 1) > 1:
        # Inline driver only: episodes already fan out across processes
        # at the campaign level, and pickled exceptions across worker
        # pipes would blur the failure classification.
        config = config.with_shards(int(c["shards"]), shard_mode="inline")
    config.validate()
    return config


def build_workload(spec: Dict):
    w = spec["workload"]
    op = Op.READ if w["op"] == "read" else Op.WRITE
    size = w["iterations"] * w["nprocs"] * w["request_size"]
    if w["kind"] == "mpi-io-test":
        return MpiIoTest(nprocs=w["nprocs"], request_size=w["request_size"],
                         file_size=size, op=op,
                         offset_shift=w["offset_shift"])
    if w["kind"] == "ior":
        return IorMpiIo(nprocs=w["nprocs"], request_size=w["request_size"],
                        file_size=size, op=op)
    raise ChaosError(f"unknown workload kind {w['kind']!r}")


# ---------------------------------------------------------------- guard
def _budget_guard(env, budget: Dict, wall_start: float):
    sim_cap = budget["sim_time"]
    event_cap = budget["events"]
    wall_cap = budget["wall_clock"]
    while True:
        yield env.timeout(_GUARD_PERIOD)
        if env.now > sim_cap:
            raise EpisodeBudgetError(
                f"episode passed {sim_cap}s of simulated time "
                f"(now {env.now:.3f}s) — livelock or runaway workload")
        if env._seq > event_cap:
            raise EpisodeBudgetError(
                f"episode scheduled more than {event_cap} engine events")
        if time.monotonic() - wall_start > wall_cap:
            raise EpisodeBudgetError(
                f"episode exceeded the {wall_cap}s real-time backstop")


def _classify(exc: BaseException) -> str:
    if isinstance(exc, EpisodeBudgetError):
        return "budget-exceeded"
    if isinstance(exc, RequestTimeoutError):
        return "retry-exhausted"
    if isinstance(exc, AuditError):
        return "violation"
    return "crash"


# -------------------------------------------------------------- running
def run_episode(spec: Dict) -> EpisodeResult:
    """Execute one episode; never raises for in-simulation failures.

    Infrastructure errors (a broken spec, an unbuildable config) raise
    normally — those are tester bugs, not findings.
    """
    if spec.get("schema") != 1:
        raise ChaosError(f"unsupported episode spec schema "
                         f"{spec.get('schema')!r}")
    config = build_config(spec)
    workload = build_workload(spec)
    plan = FaultPlan.from_dict(spec["faults"])
    if config.shards > 1:
        return _run_episode_sharded(spec, config, workload, plan)
    cluster = Cluster(config, fault_plan=plan if len(plan) else None)
    env = cluster.env
    wall_start = time.monotonic()
    env.process(_budget_guard(env, spec["budget"], wall_start),
                name="chaos-budget-guard")

    status, error = "ok", None
    start = env.now
    try:
        run_workload(cluster, workload, drain=True,
                     warm_runs=spec["workload"]["warm_runs"])
    except ReproError as exc:
        status, error = _classify(exc), f"{type(exc).__name__}: {exc}"

    # Settle past the fault horizon so every window reverts, then drain
    # once more: recovery writeback after the last window is part of
    # the episode.  Skipped when the budget already fired — the guard
    # died raising and the run is torn anyway.
    settled = False
    if status != "budget-exceeded":
        try:
            horizon = plan.horizon() + SETTLE_SLACK
            if env.now < horizon:
                env.run(until=horizon)
            cluster.drain()
            settled = True
        except ReproError as exc:
            if status == "ok":
                status, error = _classify(exc), f"{type(exc).__name__}: {exc}"
    makespan = env.now - start
    cluster.shutdown()

    verdict = cluster.audit.verdict()
    recovery = recovery_snapshot(cluster)
    failures = []
    if status != "ok":
        failures.append(status)
    if not verdict["ok"]:
        failures.append("audit:" + "+".join(verdict["checks"]))
    elif verdict["watchdog_fired"]:
        failures.append("watchdog")
    if status == "ok" and recovery["exhausted_subrequests"] > 0:
        failures.append("retry-exhausted")
    if settled:
        failures.extend(restoration_failures(cluster))

    fault_log = ([{"time": round(r.time, 9), "phase": r.phase,
                   "event": r.event.to_dict()}
                  for r in cluster.faults.records]
                 if cluster.faults is not None else [])
    result: EpisodeResult = {
        "spec": spec,
        "status": status,
        "ok": not failures,
        "failures": failures,
        "error": error,
        "makespan": round(makespan, 9),
        "recovery": recovery,
        "verdict": verdict,
        "fault_log": fault_log,
    }
    result["signature"] = episode_signature(result)
    return result


def _coordinator_guard(budget: Dict, wall_start: float):
    """The sharded analog of :func:`_budget_guard`.

    Runs at the coordinator between window barriers — never inside a
    shard's event heap, so it cannot perturb event order.  Sim time is
    read from the window end, engine events from the per-window heap
    sequence deltas summed across shards (both deterministic); the
    wall-clock backstop stays real-time.
    """
    state = {"events": 0}
    sim_cap = budget["sim_time"]
    event_cap = budget["events"]
    wall_cap = budget["wall_clock"]

    def guard(t_end: float, events: int) -> None:
        state["events"] += events
        if t_end > sim_cap:
            raise EpisodeBudgetError(
                f"episode passed {sim_cap}s of simulated time "
                f"(window end {t_end:.3f}s) — livelock or runaway "
                "workload")
        if state["events"] > event_cap:
            raise EpisodeBudgetError(
                f"episode scheduled more than {event_cap} engine events")
        if time.monotonic() - wall_start > wall_cap:
            raise EpisodeBudgetError(
                f"episode exceeded the {wall_cap}s real-time backstop")

    return guard


def _run_episode_sharded(spec: Dict, config, workload,
                         plan: FaultPlan) -> EpisodeResult:
    """The episode body on the partitioned-horizon engine.

    Same phases and oracles as the serial path — run, settle past the
    horizon, drain, judge — with the coordinator merging per-shard
    verdicts, recovery counters, restoration findings and fault logs.
    The fault-log entries additionally carry ``index`` (plan position)
    and ``shard`` (the injector that drove the transition); broadcast
    events legitimately log once per shard.
    """
    from ..sim.parallel import (_merge_audit, merge_fault_records,
                                merge_recovery, run_sharded_episode)
    wall_start = time.monotonic()
    guard = _coordinator_guard(spec["budget"], wall_start)
    out = run_sharded_episode(
        config, workload, fault_plan=plan if len(plan) else None,
        settle_until=plan.horizon() + SETTLE_SLACK,
        warm_runs=spec["workload"]["warm_runs"], guard=guard)
    summaries = out["summaries"]

    status, error = "ok", None
    if out["error"] is not None:
        exc = out["error"]
        status, error = _classify(exc), f"{type(exc).__name__}: {exc}"

    verdict = _merge_audit(config, summaries)
    recovery = merge_recovery(summaries)
    failures = []
    if status != "ok":
        failures.append(status)
    if not verdict["ok"]:
        failures.append("audit:" + "+".join(verdict["checks"]))
    elif verdict["watchdog_fired"]:
        failures.append("watchdog")
    if status == "ok" and recovery["exhausted_subrequests"] > 0:
        failures.append("retry-exhausted")
    if out["settled"]:
        failures.extend(sorted(out["restoration"]))

    fault_log = [{"time": round(r["time"], 9), "phase": r["phase"],
                  "event": r["event"], "index": r["index"],
                  "shard": r["shard"]}
                 for r in merge_fault_records(summaries)]
    result: EpisodeResult = {
        "spec": spec,
        "status": status,
        "ok": not failures,
        "failures": failures,
        "error": error,
        "makespan": round(max(s["now"] for s in summaries), 9),
        "recovery": recovery,
        "verdict": verdict,
        "fault_log": fault_log,
        "shards": config.shards,
        "windows": out["windows"],
    }
    result["signature"] = episode_signature(result)
    return result


def episode_signature(result: EpisodeResult) -> str:
    """Hash of the deterministic episode outcome (the replay contract).

    The error *message* is excluded: the wall-clock backstop writes a
    real-time figure into budget messages, and determinism must not
    hinge on prose.  Everything else — spec, status, fault transition
    log, makespan, telemetry, verdict — replays bit-identically.
    """
    return stable_hash({
        "spec": result["spec"],
        "status": result["status"],
        "failures": result["failures"],
        "makespan": result["makespan"],
        "recovery": result["recovery"],
        "verdict": result["verdict"],
        "fault_log": result["fault_log"],
    })


def run_episode_cell(spec: Dict) -> EpisodeResult:
    """Cell-shaped entry point for the experiments process pool.

    The fuzz loop fans episodes out through
    :func:`repro.experiments.runner.run_cells` (cache off — a fuzz run
    should actually run), so ``--jobs N`` gives the same order-stable
    results as the experiment matrix does.
    """
    return run_episode(spec)
