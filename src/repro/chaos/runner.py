"""The fuzz loop: sample -> run -> (on failure) shrink -> record.

Episodes fan out through the experiment matrix machinery
(:func:`repro.experiments.runner.run_cells`) with the cache disabled,
so ``--jobs N`` reuses the pool-worker context plumbing and keeps
results in input order — the campaign digest is identical for every
``N``.  Shrinking runs in-process afterwards: it is an adaptive search,
each candidate depends on the previous verdict, so there is nothing to
parallelize.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..experiments.runner import cell, run_cells, stable_hash
from .corpus import Reproducer, save_reproducer
from .episode import run_episode
from .generator import sample_spec
from .shrink import DEFAULT_MAX_RUNS, shrink_spec


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    episodes: int
    results: List[Dict] = field(default_factory=list)
    #: (episode index, reproducer path) for every failure recorded.
    reproducers: List = field(default_factory=list)
    shrink_trails: List = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def failures(self) -> List[Dict]:
        return [r for r in self.results if not r["ok"]]

    @property
    def digest(self) -> str:
        """Hash over every episode signature — the determinism handle:
        two campaigns with the same seed/count must agree on this."""
        return stable_hash([r["signature"] for r in self.results])


def run_campaign_job(spec: Dict) -> Dict:
    """Campaign-as-job adapter for the experiment service.

    ``spec`` is a plain JSON dict (``seed``, ``episodes``, and the
    optional knobs below); the return value is a small picklable
    summary the service stores as the job's result.  Unknown spec keys
    are ignored so schedulers can salt the dedup key (e.g. a nightly
    ``window`` counter) without touching this adapter.

    ``wall_seconds`` is real time and therefore non-deterministic; the
    deterministic replay handle is ``digest``, same as the CLI's.
    """
    report = fuzz(
        seed=int(spec["seed"]),
        episodes=int(spec["episodes"]),
        jobs=int(spec.get("jobs", 1)),
        corpus_dir=spec.get("corpus_dir"),
        shrink=bool(spec.get("shrink", True)),
        max_shrink_runs=int(spec.get("max_shrink_runs", DEFAULT_MAX_RUNS)),
        wall_budget=spec.get("wall_budget"))
    return {
        "seed": report.seed,
        "episodes_requested": report.episodes,
        "episodes_run": len(report.results),
        "failures": len(report.failures),
        "failure_signatures": [r["signature"] for r in report.failures],
        "reproducers": [path for _i, path in report.reproducers],
        "digest": report.digest,
        "wall_seconds": report.wall_seconds,
    }


def fuzz(seed: int, episodes: int, jobs: int = 1,
         corpus_dir: Optional[str] = None, shrink: bool = True,
         max_shrink_runs: int = DEFAULT_MAX_RUNS,
         wall_budget: Optional[float] = None,
         log=None) -> FuzzReport:
    """Run one campaign of ``episodes`` sampled episodes.

    ``wall_budget`` (real seconds) stops *sampling new batches* once
    exceeded — episodes already dispatched still finish, so a budgeted
    campaign ends at a batch boundary with a well-defined digest.
    """
    t0 = time.monotonic()
    report = FuzzReport(seed=seed, episodes=episodes)
    say = log if log is not None else (lambda msg: None)

    batch = max(1, jobs)
    index = 0
    while index < episodes:
        if wall_budget is not None and time.monotonic() - t0 > wall_budget:
            say(f"wall budget {wall_budget}s exhausted after "
                f"{index}/{episodes} episodes")
            break
        count = min(batch, episodes - index)
        specs = [sample_spec(seed, index + k) for k in range(count)]
        cells = [cell("repro.chaos.episode:run_episode_cell", spec=s)
                 for s in specs]
        results = run_cells(cells, jobs=jobs, cache=False).results
        for k, result in enumerate(results):
            i = index + k
            report.results.append(result)
            mark = "ok" if result["ok"] else "FAIL"
            say(f"episode {i:4d}  {mark:4s}  {result['status']:16s} "
                f"sig={result['signature'][:12]}"
                + ("" if result["ok"]
                   else "  " + ",".join(result["failures"])))
            if result["ok"]:
                continue
            spec, note = result["spec"], f"seed {seed} episode {i}"
            failures = result["failures"]
            if shrink:
                sr = shrink_spec(spec, run_episode,
                                 max_runs=max_shrink_runs,
                                 baseline=result)
                spec, failures = sr.reduced, sr.reduced_failures
                note += (f"; shrunk {sr.events_before}->"
                         f"{sr.events_after} fault events "
                         f"in {sr.runs} runs")
                report.shrink_trails.append((i, sr.trail))
                say(f"  shrunk: {sr.events_before} -> {sr.events_after} "
                    f"events ({sr.runs} runs)")
            if corpus_dir is not None:
                final = run_episode(spec) if shrink else result
                path = save_reproducer(corpus_dir, Reproducer(
                    spec=spec, expect="fail", failures=list(failures),
                    signature=final["signature"], note=note))
                report.reproducers.append((i, path))
                say(f"  reproducer: {path}")
        index += count

    report.wall_seconds = time.monotonic() - t0
    return report
