"""Entry point for ``python -m repro.chaos``."""

import sys

from .cli import main

sys.exit(main())
