"""``python -m repro.chaos`` — fuzz, or replay the reproducer corpus.

Fuzzing::

    python -m repro.chaos --seed 0 --episodes 20
    python -m repro.chaos --seed 0 --episodes 200 --jobs 4 \\
        --corpus chaos-corpus --wall-budget 300

Every episode prints one line with its verdict and signature; the
campaign ends with a digest over all signatures — run the same command
twice and the digests must match (the CI chaos-smoke job does exactly
that).  Failures are shrunk (unless ``--no-shrink``) and written to the
corpus directory as replayable JSON.

Corpus replay (regression mode)::

    python -m repro.chaos --replay chaos-corpus

re-runs every committed reproducer and checks its expectation
(``expect: pass`` entries must run clean) and recorded signature.

Exit status: 0 when every episode passed / every replay matched, 1
otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .corpus import DEFAULT_CORPUS_DIR, load_corpus, replay_reproducer
from .runner import fuzz
from .shrink import DEFAULT_MAX_RUNS


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded fault-space fuzzing with invariant oracles.")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--episodes", type=int, default=20,
                   help="episodes to sample (default 20)")
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool fan-out for episodes (default 1)")
    p.add_argument("--corpus", default=DEFAULT_CORPUS_DIR,
                   help="reproducer directory (default chaos-corpus); "
                        "'none' disables recording")
    p.add_argument("--no-shrink", action="store_true",
                   help="record failures without minimizing them")
    p.add_argument("--max-shrink-runs", type=int, default=DEFAULT_MAX_RUNS,
                   help="episode budget per shrink (default %(default)s)")
    p.add_argument("--wall-budget", type=float, default=None,
                   help="stop sampling new episodes after this many real "
                        "seconds (campaign ends at a batch boundary)")
    p.add_argument("--replay", metavar="DIR", default=None,
                   help="replay every reproducer in DIR instead of fuzzing")
    return p


def _replay(directory: str) -> int:
    entries = load_corpus(directory)
    if not entries:
        print(f"no reproducers under {directory}")
        return 0
    bad = 0
    for path, repro in entries:
        verdict = replay_reproducer(repro)
        mark = "ok" if verdict["ok"] else "FAIL"
        print(f"{mark:4s}  expect={repro.expect:4s}  {path}")
        for problem in verdict["problems"]:
            bad += 1
            print(f"      {problem}")
    print(f"replayed {len(entries)} reproducer(s), "
          f"{bad and 'MISMATCHES' or 'all matched'}")
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if args.replay is not None:
        return _replay(args.replay)

    corpus = None if args.corpus == "none" else args.corpus
    report = fuzz(seed=args.seed, episodes=args.episodes, jobs=args.jobs,
                  corpus_dir=corpus, shrink=not args.no_shrink,
                  max_shrink_runs=args.max_shrink_runs,
                  wall_budget=args.wall_budget, log=print)
    ran = len(report.results)
    failed = len(report.failures)
    print(f"campaign seed={report.seed}: {ran} episode(s), "
          f"{failed} failure(s), {report.wall_seconds:.1f}s")
    print(f"digest {report.digest}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
