"""Delta-debugging reproducer minimization for failing episodes.

Given a failing spec, :func:`shrink_spec` searches for the smallest
spec that *still fails the same way*, using three passes repeated to a
fixed point:

1. **ddmin over fault events** (Zeller's classic algorithm): try
   dropping subsets and complements of the event list at increasing
   granularity, keeping any reduction that preserves the failure.
2. **Workload/cluster parameter descent**: fewer ranks, fewer
   iterations, smaller requests, no warm pass, fewer servers — each
   candidate is accepted only if the failure survives.
3. **Event-field shrinking**: shorter windows, smaller multipliers,
   lower drop probabilities — so the committed reproducer documents the
   *minimal* severity that triggers the bug, which is the most useful
   fact for whoever debugs it.

"Fails the same way" means the candidate's failure **kinds** (the token
before ``:`` in each failure entry — ``audit``, ``watchdog``,
``restore``, ``retry-exhausted``, ...) intersect the original's.
Requiring exact equality would reject reductions that merely drop a
secondary symptom; requiring nothing would let the search wander to an
unrelated bug.

The search is budgeted by episode count (``max_runs``) and every
candidate is validated before running — a reduction that produces an
ill-formed spec (e.g. dropping servers below a fault's target) counts
as uninteresting, not as an error.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ChaosError, ReproError

#: Default episode budget for one shrink (ddmin is O(n^2) worst case
#: on the event list, but our lists are tiny; parameter descent
#: dominates in practice).
DEFAULT_MAX_RUNS = 150


def failure_kinds(failures: List[str]) -> frozenset:
    """The coarse failure categories of an episode result."""
    return frozenset(f.split(":", 1)[0] for f in failures)


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    original: Dict
    reduced: Dict
    original_failures: List[str]
    reduced_failures: List[str]
    #: Episodes executed by the search (baseline included).
    runs: int = 0
    #: Fault events before/after — the headline reduction metric.
    events_before: int = 0
    events_after: int = 0
    trail: List[str] = field(default_factory=list)


class _Search:
    """Shared state: run budget, memo of already-tried candidates."""

    def __init__(self, run_fn: Callable[[Dict], Dict], kinds: frozenset,
                 max_runs: int) -> None:
        self.run_fn = run_fn
        self.kinds = kinds
        self.max_runs = max_runs
        self.runs = 0
        self._seen: Dict[str, bool] = {}
        self.last_failures: List[str] = []

    def interesting(self, spec: Dict) -> bool:
        """Does ``spec`` still fail with an overlapping failure kind?"""
        from ..experiments.runner import stable_hash
        key = stable_hash(spec)
        if key in self._seen:
            return self._seen[key]
        if self.runs >= self.max_runs:
            return False
        self.runs += 1
        try:
            result = self.run_fn(spec)
        except ReproError:
            # A candidate the episode runner itself rejects (invalid
            # plan after a reduction, unbuildable config) is simply not
            # a reproducer.
            self._seen[key] = False
            return False
        ok = (not result["ok"]
              and bool(failure_kinds(result["failures"]) & self.kinds))
        if ok:
            self.last_failures = list(result["failures"])
        self._seen[key] = ok
        return ok


# ----------------------------------------------------------------- ddmin
def _ddmin(items: List, test: Callable[[List], bool]) -> List:
    """Classic ddmin: minimal sublist of ``items`` for which ``test``
    holds, assuming ``test(items)`` holds on entry."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            if test(subset):
                items, n, reduced = subset, 2, True
                break
            complement = [x for j, s in enumerate(subsets) if j != i
                          for x in s]
            if complement and test(complement):
                items, n, reduced = complement, max(2, n - 1), True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and test([]):
        return []
    return items


def _with_events(spec: Dict, events: List[Dict]) -> Dict:
    out = copy.deepcopy(spec)
    out["faults"] = {"name": spec["faults"].get("name", "fault-plan"),
                     "events": copy.deepcopy(events)}
    return out


# ------------------------------------------------------------ reductions
def _param_candidates(spec: Dict) -> List:
    """(description, candidate) pairs, most aggressive first."""
    out = []
    w, c = spec["workload"], spec["cluster"]

    def patch(desc, path, value):
        cand = copy.deepcopy(spec)
        node = cand
        for k in path[:-1]:
            node = node[k]
        node[path[-1]] = value
        out.append((desc, cand))

    if c.get("shards", 1) > 1:
        # Most valuable reduction first: a bug that still reproduces on
        # the serial engine is far easier to step through.
        patch("shards=1", ("cluster", "shards"), 1)
        if c["shards"] > 2:
            patch("shards=2", ("cluster", "shards"), 2)
    if w["warm_runs"]:
        patch("drop warm run", ("workload", "warm_runs"), 0)
    for nprocs in (2, w["nprocs"] // 2):
        if 1 <= nprocs < w["nprocs"]:
            patch(f"nprocs={nprocs}", ("workload", "nprocs"), nprocs)
    if w["iterations"] > 1:
        patch("iterations=1", ("workload", "iterations"), 1)
        half = w["iterations"] // 2
        if 1 < half < w["iterations"]:
            patch(f"iterations={half}", ("workload", "iterations"), half)
    if w["offset_shift"]:
        patch("offset_shift=0", ("workload", "offset_shift"), 0)
    if c["num_servers"] > 2:
        patch("num_servers=2", ("cluster", "num_servers"), 2)
    if c["disks_per_server"] > 1:
        patch("disks_per_server=1", ("cluster", "disks_per_server"), 1)
    return out


def _event_field_candidates(spec: Dict) -> List:
    out = []
    events = spec["faults"]["events"]
    for i, ev in enumerate(events):
        def patch(desc, key, value, i=i):
            cand = copy.deepcopy(spec)
            cand["faults"]["events"][i][key] = value
            out.append((f"event[{i}] {desc}", cand))

        duration = ev.get("duration")
        if duration is not None and duration > 0.02:
            patch(f"duration={round(duration / 2, 4)}", "duration",
                  round(duration / 2, 4))
        if ev.get("latency_mult", 1.0) > 2.0:
            half = round(max(2.0, ev["latency_mult"] / 2), 2)
            patch(f"latency_mult={half}", "latency_mult", half)
        if ev.get("bw_mult", 1.0) > 2.0:
            patch("bw_mult=2.0", "bw_mult", 2.0)
        if ev.get("drop_prob", 0.0) > 0.1:
            half = round(ev["drop_prob"] / 2, 2)
            patch(f"drop_prob={half}", "drop_prob", half)
        if ev.get("start", 0.0) > 0.0:
            patch("start=0.0", "start", 0.0)
    return out


# -------------------------------------------------------------- shrinking
def shrink_spec(spec: Dict, run_fn: Callable[[Dict], Dict],
                max_runs: int = DEFAULT_MAX_RUNS,
                baseline: Optional[Dict] = None) -> ShrinkResult:
    """Minimize a failing episode spec.

    ``run_fn`` maps a spec to an episode result
    (:func:`repro.chaos.episode.run_episode` in production; tests pass
    synthetic functions to exercise the search itself).  ``baseline``
    is the already-known failing result for ``spec``, if the caller has
    one — saves one episode.
    """
    result = baseline if baseline is not None else run_fn(spec)
    if result["ok"]:
        raise ChaosError("shrink_spec needs a failing episode")
    kinds = failure_kinds(result["failures"])
    search = _Search(run_fn, kinds, max_runs)
    search.runs = 0 if baseline is not None else 1
    search.last_failures = list(result["failures"])
    out = ShrinkResult(original=copy.deepcopy(spec), reduced=spec,
                       original_failures=list(result["failures"]),
                       reduced_failures=list(result["failures"]),
                       events_before=len(spec["faults"]["events"]),
                       events_after=len(spec["faults"]["events"]))
    current = copy.deepcopy(spec)

    changed = True
    while changed and search.runs < max_runs:
        changed = False
        # 1. ddmin the fault-event list.
        events = current["faults"]["events"]
        if events:
            reduced = _ddmin(
                list(events),
                lambda subset: search.interesting(
                    _with_events(current, subset)))
            if len(reduced) < len(events):
                current = _with_events(current, reduced)
                out.trail.append(f"events {len(events)} -> {len(reduced)}")
                changed = True
        # 2. Parameter descent (first improvement wins, then re-loop).
        for desc, cand in _param_candidates(current):
            if search.interesting(cand):
                current = cand
                out.trail.append(desc)
                changed = True
                break
        # 3. Event-field severity descent.
        for desc, cand in _event_field_candidates(current):
            if search.interesting(cand):
                current = cand
                out.trail.append(desc)
                changed = True
                break

    out.reduced = current
    out.reduced_failures = (search.last_failures
                            or list(result["failures"]))
    out.runs = search.runs
    out.events_after = len(current["faults"]["events"])
    return out
