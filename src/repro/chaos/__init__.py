"""repro.chaos: seeded fault-space fuzzing with invariant oracles.

The subsystem closes the loop the hand-written fault experiments leave
open: instead of replaying a handful of curated scenarios, it *samples*
the joint space of fault schedules, workload mixes, and cluster shapes,
runs each sample as a budgeted **episode** with the audit invariants,
livelock watchdog, and recovery telemetry acting as oracles, and — when
an episode fails — delta-debugs the scenario down to a smallest
still-failing **reproducer** that is written out as replayable JSON.

Three properties make this useful rather than noisy:

* **Determinism.**  An episode is a pure function of its spec (a plain
  JSON-able dict): same spec, same seed ⇒ bit-identical simulation,
  asserted through :func:`repro.chaos.episode.episode_signature`.
* **Oracles, not assertions.**  Episodes run with the auditor in
  non-strict mode and read one structured
  :meth:`~repro.audit.runtime.AuditRuntime.verdict` at the end, so a
  single episode reports *every* violation instead of dying on the
  first.
* **Budgets.**  A guard process bounds each episode in simulated time,
  engine events, and (as a backstop) real time, so a livelocked sample
  becomes a ``budget-exceeded`` verdict instead of a hung harness.

Entry points: ``python -m repro.chaos`` (see :mod:`repro.chaos.cli`),
:func:`fuzz` for programmatic use, and the corpus helpers that replay
committed reproducers as regression tests.  docs/CHAOS.md walks through
the workflow.
"""

from .corpus import (Reproducer, load_corpus, replay_reproducer,
                     save_reproducer)
from .episode import (EpisodeResult, episode_signature, run_episode,
                      run_episode_cell)
from .generator import DEFAULT_BUDGET, sample_spec
from .runner import FuzzReport, fuzz, run_campaign_job
from .shrink import ShrinkResult, shrink_spec

__all__ = [
    "sample_spec",
    "DEFAULT_BUDGET",
    "run_episode",
    "run_episode_cell",
    "episode_signature",
    "EpisodeResult",
    "shrink_spec",
    "ShrinkResult",
    "Reproducer",
    "save_reproducer",
    "load_corpus",
    "replay_reproducer",
    "fuzz",
    "FuzzReport",
    "run_campaign_job",
]
